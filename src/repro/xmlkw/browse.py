"""Hyperlinked browsing of XML documents (the Sec. 7 plan, browsing half).

The paper: *"We are currently extending the BANKS system to handle
browsing and keyword searching of XML data."*  The searching half lives
in :mod:`repro.xmlkw.search`; this module supplies the browsing half in
the same style as the relational browser (:mod:`repro.browse`):

* every element gets a page showing its tag, attributes, text, parent,
  children and — crucially — its *reference* neighbourhood: outgoing
  IDREF links and incoming referencers, each a hyperlink (the XML
  analogue of foreign-key and reverse-reference browsing);
* a document outline page renders the containment hierarchy with
  expandable depth;
* an :class:`XMLBrowseApp` routes URLs to pages and adapts to WSGI, so
  any XML corpus becomes a browsable, keyword-searchable site with zero
  programming.

All rendering is pure (``handle(path, query) -> (status, html)``) and
unit-testable without a server, matching the relational app's design.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Tuple
from urllib.parse import parse_qs, unquote

from repro.browse.html import el, link, page
from repro.errors import ReproError, XMLError
from repro.xmlkw.document import XMLElement
from repro.xmlkw.model import XMLNode
from repro.xmlkw.search import XMLBanks


def element_url(node: XMLNode) -> str:
    document_name, element_id = node
    return f"/element/{document_name}/{element_id}"


def outline_url(document_name: str, depth: int = 2) -> str:
    return f"/outline/{document_name}?depth={depth}"


class XMLBrowser:
    """Pure page renderers over one :class:`XMLBanks` corpus."""

    def __init__(self, banks: XMLBanks):
        self.banks = banks

    # -- element pages -----------------------------------------------------

    def _element_link(self, node: XMLNode) -> object:
        return link(element_url(node), self.banks.node_label(node))

    def element_page(self, node: XMLNode) -> str:
        """One element: attributes, text, structure and references."""
        element = self.banks.element(node)
        document_name = node[0]
        body: List[object] = [
            el("p", None, link(outline_url(document_name), "document outline")),
            el("h2", None, f"<{element.tag}>"),
            el("p", None, f"path: {element.path()}"),
        ]

        if element.attributes:
            rows = [
                el(
                    "tr",
                    None,
                    el("td", None, name),
                    el("td", None, value),
                )
                for name, value in element.attributes.items()
            ]
            body.append(el("h3", None, "Attributes"))
            body.append(el("table", {"border": "1"}, *rows))

        if element.text:
            body.append(el("h3", None, "Text"))
            body.append(el("p", None, element.text))

        if element.parent is not None:
            body.append(el("h3", None, "Parent"))
            body.append(
                el(
                    "p",
                    None,
                    self._element_link(
                        (document_name, element.parent.element_id)
                    ),
                )
            )

        if element.children:
            items = [
                el(
                    "li",
                    None,
                    self._element_link((document_name, child.element_id)),
                )
                for child in element.children
            ]
            body.append(el("h3", None, f"Children ({len(element.children)})"))
            body.append(el("ul", None, *items))

        outgoing, incoming = self._references(node)
        if outgoing:
            body.append(el("h3", None, "References (outgoing)"))
            body.append(
                el(
                    "ul",
                    None,
                    *[
                        el(
                            "li",
                            None,
                            f"@{attribute} -> ",
                            self._element_link(target),
                        )
                        for attribute, target in outgoing
                    ],
                )
            )
        if incoming:
            body.append(el("h3", None, "Referenced by (incoming)"))
            body.append(
                el(
                    "ul",
                    None,
                    *[
                        el("li", None, self._element_link(source))
                        for source in incoming
                    ],
                )
            )
        return page(f"{element.tag} — {document_name}", *body)

    def _references(
        self, node: XMLNode
    ) -> Tuple[List[Tuple[str, XMLNode]], List[XMLNode]]:
        """Outgoing (attribute, target) IDREF pairs and incoming sources."""
        document = next(
            d for d in self.banks.documents if d.name == node[0]
        )
        element = document.element(node[1])
        config = self.banks.graph_config
        outgoing: List[Tuple[str, XMLNode]] = []
        for attribute, value in element.attributes.items():
            lowered = attribute.lower()
            if not (
                lowered in config.idref_attributes or lowered.endswith("ref")
            ):
                continue
            referee = document.by_id(value)
            if referee is not None and referee is not element:
                outgoing.append(
                    (attribute, (document.name, referee.element_id))
                )

        incoming: List[XMLNode] = []
        own_ids = {
            element.attributes[a]
            for a in config.id_attributes
            if a in element.attributes
        }
        if own_ids:
            for other in document.elements():
                if other is element:
                    continue
                for attribute, value in other.attributes.items():
                    lowered = attribute.lower()
                    if (
                        lowered in config.idref_attributes
                        or lowered.endswith("ref")
                    ) and value in own_ids:
                        incoming.append((document.name, other.element_id))
                        break
        return outgoing, incoming

    # -- outline pages -----------------------------------------------------------

    def outline_page(self, document_name: str, depth: int = 2) -> str:
        """The containment hierarchy down to ``depth`` levels."""
        document = next(
            (d for d in self.banks.documents if d.name == document_name),
            None,
        )
        if document is None:
            raise XMLError(f"unknown document {document_name!r}")

        def render(element: XMLElement, remaining: int) -> object:
            label = self._element_link(
                (document_name, element.element_id)
            )
            if not element.children or remaining <= 0:
                suffix = (
                    f" (+{len(element.children)} children)"
                    if element.children
                    else ""
                )
                return el("li", None, label, suffix)
            return el(
                "li",
                None,
                label,
                el(
                    "ul",
                    None,
                    *[render(child, remaining - 1) for child in element.children],
                ),
            )

        deeper = el(
            "p",
            None,
            link(outline_url(document_name, depth + 1), "expand one level"),
        )
        return page(
            f"Outline — {document_name}",
            el("ul", None, render(document.root, depth)),
            deeper,
        )

    # -- search page ----------------------------------------------------------------

    def search_page(self, query: str, max_results: int = 10) -> str:
        if not query.strip():
            return page("Search", el("p", None, "Empty query."))
        try:
            answers = self.banks.search(query, max_results=max_results)
        except ReproError as error:
            return page("Search", el("p", None, f"Error: {error}"))
        blocks: List[object] = []
        for answer in answers:
            matched = {
                node for node in answer.tree.keyword_nodes if node is not None
            }
            lines: List[object] = []

            def walk(node: XMLNode, indent: int) -> None:
                attrs = {"class": "kw"} if node in matched else None
                lines.append(
                    el(
                        "div",
                        {"style": f"margin-left:{indent * 1.5}em"},
                        el("span", attrs, self._element_link(node)),
                    )
                )
                for child in sorted(answer.tree.children(node), key=repr):
                    walk(child, indent + 1)

            walk(answer.tree.root, 0)
            blocks.append(
                el(
                    "div",
                    None,
                    el(
                        "h3",
                        None,
                        f"#{answer.rank + 1} "
                        f"(relevance {answer.relevance:.3f})",
                    ),
                    *lines,
                )
            )
        if not blocks:
            blocks.append(el("p", None, "No answers."))
        return page(f"Results for {query!r}", *blocks)

    def home_page(self) -> str:
        items = [
            el(
                "li",
                None,
                link(outline_url(document.name), document.name),
                f" ({document.element_count()} elements)",
            )
            for document in self.banks.documents
        ]
        form = el(
            "form",
            {"action": "/search", "method": "get"},
            el("input", {"name": "q", "size": "40"}),
            el("input", {"type": "submit", "value": "Search"}),
        )
        return page(
            "BANKS: XML corpus",
            form,
            el("h2", None, "Documents"),
            el("ul", None, *items),
        )


class XMLBrowseApp:
    """Routing + WSGI adapter over :class:`XMLBrowser`."""

    def __init__(self, banks: XMLBanks):
        self.browser = XMLBrowser(banks)

    def handle(self, path: str, query_string: str = "") -> Tuple[str, str]:
        """Route one request; returns ``(status, html)``."""
        try:
            parts = [unquote(p) for p in path.strip("/").split("/") if p]
            if not parts:
                return "200 OK", self.browser.home_page()
            if parts[0] == "search":
                params = parse_qs(query_string)
                return "200 OK", self.browser.search_page(
                    params.get("q", [""])[0]
                )
            if parts[0] == "element" and len(parts) == 3:
                node = (parts[1], int(parts[2]))
                return "200 OK", self.browser.element_page(node)
            if parts[0] == "outline" and len(parts) == 2:
                params = parse_qs(query_string)
                depth = int(params.get("depth", ["2"])[0])
                return "200 OK", self.browser.outline_page(parts[1], depth)
        except (ReproError, ValueError) as error:
            return "404 Not Found", page(
                "Not found", el("p", None, f"{error}")
            )
        return "404 Not Found", page(
            "Not found", el("p", None, f"No route for {path!r}")
        )

    def __call__(
        self, environ: dict, start_response: Callable
    ) -> Iterable[bytes]:
        status, html = self.handle(
            environ.get("PATH_INFO", "/"), environ.get("QUERY_STRING", "")
        )
        payload = html.encode("utf-8")
        start_response(
            status,
            [
                ("Content-Type", "text/html; charset=utf-8"),
                ("Content-Length", str(len(payload))),
            ],
        )
        return [payload]
