"""The XML document model: elements, attributes, text, navigation.

A deliberately small tree model — exactly what keyword search over XML
needs: element tags and attributes (metadata terms), text content (data
terms), parent/child structure (containment edges) and ID/IDREF links
(reference edges).  Namespaces, processing-instruction semantics and DTD
validation are out of scope; documents carrying them still parse (the
constructs are tolerated and skipped).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import XMLError


class XMLElement:
    """One element: tag, attributes, text fragments and child elements.

    Attributes:
        tag: the element name.
        attributes: attribute name -> value (document order preserved,
            duplicates rejected by the parser).
        children: child elements, in document order.
        text_fragments: the text runs directly inside this element (not
            including descendant text), in document order.
        parent: the containing element (``None`` for the root).
        element_id: preorder position within the document; assigned by
            :meth:`XMLDocument.finalize` and used as the graph node id.
    """

    __slots__ = (
        "tag",
        "attributes",
        "children",
        "text_fragments",
        "parent",
        "element_id",
    )

    def __init__(self, tag: str, attributes: Optional[Dict[str, str]] = None):
        self.tag = tag
        self.attributes: Dict[str, str] = attributes or {}
        self.children: List["XMLElement"] = []
        self.text_fragments: List[str] = []
        self.parent: Optional["XMLElement"] = None
        self.element_id = -1

    # -- content ------------------------------------------------------------

    @property
    def text(self) -> str:
        """Direct text content (fragments joined, stripped)."""
        return " ".join(
            fragment.strip()
            for fragment in self.text_fragments
            if fragment.strip()
        )

    def full_text(self) -> str:
        """Text of this element and every descendant, in document order."""
        parts: List[str] = []
        if self.text:
            parts.append(self.text)
        for child in self.children:
            child_text = child.full_text()
            if child_text:
                parts.append(child_text)
        return " ".join(parts)

    def get(self, attribute: str, default: Optional[str] = None) -> Optional[str]:
        return self.attributes.get(attribute, default)

    # -- navigation -----------------------------------------------------------

    def iter(self) -> Iterator["XMLElement"]:
        """This element and all descendants, preorder."""
        yield self
        for child in self.children:
            yield from child.iter()

    def find(self, tag: str) -> Optional["XMLElement"]:
        """First descendant (or self) with the given tag, preorder."""
        for element in self.iter():
            if element.tag == tag:
                return element
        return None

    def find_all(self, tag: str) -> List["XMLElement"]:
        """Every descendant (or self) with the given tag, preorder."""
        return [element for element in self.iter() if element.tag == tag]

    def path(self) -> str:
        """Root-to-here tag path, e.g. ``bibliography/paper/title``."""
        parts: List[str] = []
        current: Optional[XMLElement] = self
        while current is not None:
            parts.append(current.tag)
            current = current.parent
        return "/".join(reversed(parts))

    def depth(self) -> int:
        """Edges between this element and the root."""
        count = 0
        current = self.parent
        while current is not None:
            count += 1
            current = current.parent
        return count

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"XMLElement(<{self.tag}> id={self.element_id})"


class XMLDocument:
    """A parsed document: the root element plus document-level indexes.

    Call :meth:`finalize` (the parser does) to assign preorder element
    ids, wire parent pointers and build the ID attribute index used for
    IDREF resolution.
    """

    def __init__(self, root: XMLElement, name: str = "doc"):
        self.root = root
        self.name = name
        self._elements: List[XMLElement] = []
        self._by_id_attribute: Dict[str, XMLElement] = {}

    def finalize(self, id_attributes: Tuple[str, ...] = ("id",)) -> None:
        """Assign element ids, parents, and index ID attributes.

        Args:
            id_attributes: attribute names treated as element IDs;
                duplicate ID values in one document raise
                :class:`XMLError` (ID attributes must be unique).
        """
        self._elements = []
        self._by_id_attribute = {}
        for element in self.root.iter():
            element.element_id = len(self._elements)
            self._elements.append(element)
            for child in element.children:
                child.parent = element
            for attribute in id_attributes:
                value = element.attributes.get(attribute)
                if value is None:
                    continue
                if value in self._by_id_attribute:
                    raise XMLError(
                        f"duplicate ID {value!r} in document {self.name!r}"
                    )
                self._by_id_attribute[value] = element

    # -- element access -----------------------------------------------------------

    def element(self, element_id: int) -> XMLElement:
        try:
            return self._elements[element_id]
        except IndexError:
            raise XMLError(
                f"unknown element id {element_id} in document {self.name!r}"
            ) from None

    def elements(self) -> List[XMLElement]:
        return list(self._elements)

    def element_count(self) -> int:
        return len(self._elements)

    def by_id(self, id_value: str) -> Optional[XMLElement]:
        """The element whose ID attribute equals ``id_value``, if any."""
        return self._by_id_attribute.get(id_value)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"XMLDocument({self.name!r}, root=<{self.root.tag}>, "
            f"{len(self._elements)} elements)"
        )
