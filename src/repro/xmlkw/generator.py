"""Deterministic synthetic XML corpora for tests, examples, benchmarks.

Generates a DBLP-like bibliography *as XML*: a ``<bibliography>`` root
containing ``<author>`` elements (with unique ``id`` attributes) and
``<paper>`` elements whose ``<authorref ref="..."/>`` children reference
authors and whose ``<cite ref="..."/>`` children reference other papers
— the XML mirror of the relational generator's schema, exercising both
containment edges (paper -> title/authorref/cite) and IDREF reference
edges (authorref -> author, cite -> paper).

As in :mod:`repro.datasets.bibliography`, the corpus plants the paper's
anecdote substructures (Soumen/Sunita/Byron co-authoring a temporal
data-mining paper) so examples and tests can assert the Fig. 1/Fig. 2
behaviour on XML too, and draws citation counts from a Zipf-like
distribution so prestige has something to rank.
"""

from __future__ import annotations

import random
from typing import List, Sequence

from repro.xmlkw.document import XMLDocument
from repro.xmlkw.parser import parse_xml

_FIRST_NAMES = (
    "alice", "bob", "carol", "dave", "erin", "frank", "grace", "heidi",
    "ivan", "judy", "mallory", "oscar", "peggy", "trent", "victor", "wendy",
)
_LAST_NAMES = (
    "anderson", "brown", "chen", "davis", "evans", "fischer", "garcia",
    "huang", "ito", "jones", "kumar", "lopez", "miller", "nakamura",
)
_TITLE_WORDS = (
    "query", "optimization", "transaction", "index", "parallel", "stream",
    "temporal", "spatial", "graph", "mining", "recovery", "concurrency",
    "distributed", "relational", "semantic", "adaptive", "incremental",
)

#: The planted anecdote authors (mirrors the relational generator).
ANECDOTE_AUTHORS = ("soumen chakrabarti", "sunita sarawagi", "byron dom")
ANECDOTE_TITLE = (
    "mining surprising patterns using temporal description length"
)


def _escape(text: str) -> str:
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )


def generate_bibliography_xml(
    papers: int = 100,
    authors: int = 60,
    seed: int = 7,
    name: str = "dblp",
    plant_anecdotes: bool = True,
) -> XMLDocument:
    """Build a bibliography document with ``papers`` papers and
    ``authors`` authors (plus the planted anecdote entities).

    The output is produced by *serialising then re-parsing* through
    :func:`repro.xmlkw.parser.parse_xml`, so every generated corpus also
    exercises the parser round trip.
    """
    rng = random.Random(seed)
    lines: List[str] = ["<bibliography>"]

    author_ids: List[str] = []
    author_names: List[str] = []

    def add_author(full_name: str) -> str:
        author_id = f"a{len(author_ids) + 1}"
        author_ids.append(author_id)
        author_names.append(full_name)
        lines.append(
            f'  <author id="{author_id}">'
            f"<name>{_escape(full_name)}</name></author>"
        )
        return author_id

    anecdote_ids: List[str] = []
    if plant_anecdotes:
        anecdote_ids = [add_author(name_) for name_ in ANECDOTE_AUTHORS]
    while len(author_ids) < authors + len(anecdote_ids):
        first = rng.choice(_FIRST_NAMES)
        last = rng.choice(_LAST_NAMES)
        add_author(f"{first} {last}-{len(author_ids)}")

    paper_ids: List[str] = []

    def add_paper(
        title: str, writer_ids: Sequence[str], cited: Sequence[str]
    ) -> str:
        paper_id = f"p{len(paper_ids) + 1}"
        paper_ids.append(paper_id)
        lines.append(f'  <paper id="{paper_id}">')
        lines.append(f"    <title>{_escape(title)}</title>")
        for writer in writer_ids:
            lines.append(f'    <authorref ref="{writer}"/>')
        for citation in cited:
            lines.append(f'    <cite ref="{citation}"/>')
        lines.append("  </paper>")
        return paper_id

    if plant_anecdotes:
        add_paper(ANECDOTE_TITLE, anecdote_ids, ())

    while len(paper_ids) < papers + (1 if plant_anecdotes else 0):
        title = " ".join(
            rng.sample(_TITLE_WORDS, rng.randint(3, 6))
        )
        team_size = rng.randint(1, 4)
        team = rng.sample(author_ids, min(team_size, len(author_ids)))
        # Zipf-ish citations: early papers accumulate more references.
        citations: List[str] = []
        if paper_ids:
            count = min(len(paper_ids), _zipf_citation_count(rng))
            weights = [1.0 / (i + 1) for i in range(len(paper_ids))]
            citations = _weighted_sample(rng, paper_ids, weights, count)
        add_paper(title, team, citations)

    lines.append("</bibliography>")
    return parse_xml("\n".join(lines), name)


def _zipf_citation_count(rng: random.Random, maximum: int = 8) -> int:
    """A heavy-tailed small count (most papers cite few, some cite many)."""
    value = 1
    while value < maximum and rng.random() < 0.55:
        value += 1
    return value


def _weighted_sample(
    rng: random.Random,
    population: Sequence[str],
    weights: Sequence[float],
    count: int,
) -> List[str]:
    """Sample ``count`` distinct items with probability ~ weights."""
    chosen: List[str] = []
    candidates = list(population)
    remaining = list(weights)
    for _ in range(min(count, len(candidates))):
        total = sum(remaining)
        point = rng.random() * total
        cumulative = 0.0
        for index, weight in enumerate(remaining):
            cumulative += weight
            if point <= cumulative:
                chosen.append(candidates.pop(index))
                remaining.pop(index)
                break
    return chosen


def generate_catalog_xml(
    categories: int = 8,
    products_per_category: int = 12,
    seed: int = 11,
    name: str = "catalog",
) -> XMLDocument:
    """A product-catalog document (the paper's "electronic catalogs"
    publishing scenario): nested category/product containment with
    ``supplier`` reference edges — deep containment, few references,
    the structural opposite of the bibliography corpus.
    """
    rng = random.Random(seed)
    adjectives = ("steel", "brass", "compact", "heavy", "precision", "economy")
    nouns = ("hammer", "valve", "bearing", "gasket", "coupler", "fitting")
    lines: List[str] = ["<catalog>"]
    supplier_ids = []
    for index in range(1 + categories // 2):
        supplier_id = f"s{index + 1}"
        supplier_ids.append(supplier_id)
        lines.append(
            f'  <supplier id="{supplier_id}">'
            f"<name>supplier {index + 1}</name></supplier>"
        )
    product_number = 0
    for category_index in range(categories):
        lines.append(
            f'  <category id="c{category_index + 1}">'
        )
        lines.append(
            f"    <label>category {category_index + 1}</label>"
        )
        for _ in range(products_per_category):
            product_number += 1
            product_name = f"{rng.choice(adjectives)} {rng.choice(nouns)}"
            supplier = rng.choice(supplier_ids)
            lines.append(
                f'    <product id="pr{product_number}" ref="{supplier}">'
                f"<name>{product_name}</name>"
                f"<price>{rng.randint(5, 500)}</price></product>"
            )
        lines.append("  </category>")
    lines.append("</catalog>")
    return parse_xml("\n".join(lines), name)
