"""A from-scratch, well-formedness-checking XML parser.

Implements the subset of XML 1.0 that real data documents use:

* elements with attributes (single- or double-quoted values);
* text content with the five predefined entities plus numeric character
  references (``&#65;`` / ``&#x41;``);
* self-closing tags, comments, CDATA sections, the XML declaration and
  processing instructions (the latter three tolerated and skipped);
* strict well-formedness: one root element, balanced and properly nested
  tags, no duplicate attributes, no stray ``<`` / ``&``.

Errors raise :class:`repro.errors.XMLError` carrying line/column.  The
parser is a single left-to-right scan with an explicit element stack —
no regex backtracking, linear in document size.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import XMLError
from repro.xmlkw.document import XMLDocument, XMLElement

_PREDEFINED_ENTITIES = {
    "amp": "&",
    "lt": "<",
    "gt": ">",
    "quot": '"',
    "apos": "'",
}

_NAME_START = set(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_:"
)
_NAME_CHARS = _NAME_START | set("0123456789.-")


class _Scanner:
    """Cursor over the document text with line/column tracking."""

    def __init__(self, text: str):
        self.text = text
        self.position = 0

    def location(self, position: Optional[int] = None) -> Tuple[int, int]:
        """1-based (line, column) of ``position`` (default: the cursor)."""
        if position is None:
            position = self.position
        line = self.text.count("\n", 0, position) + 1
        last_newline = self.text.rfind("\n", 0, position)
        return line, position - last_newline

    def error(self, message: str) -> XMLError:
        line, column = self.location()
        return XMLError(message, line, column)

    @property
    def exhausted(self) -> bool:
        return self.position >= len(self.text)

    def peek(self) -> str:
        if self.exhausted:
            return ""
        return self.text[self.position]

    def startswith(self, prefix: str) -> bool:
        return self.text.startswith(prefix, self.position)

    def advance(self, count: int = 1) -> str:
        chunk = self.text[self.position : self.position + count]
        self.position += count
        return chunk

    def skip_whitespace(self) -> None:
        while not self.exhausted and self.text[self.position].isspace():
            self.position += 1

    def read_until(self, terminator: str, construct: str) -> str:
        """Text up to (not including) ``terminator``; cursor lands after it."""
        end = self.text.find(terminator, self.position)
        if end < 0:
            raise self.error(f"unterminated {construct}")
        chunk = self.text[self.position : end]
        self.position = end + len(terminator)
        return chunk

    def read_name(self) -> str:
        if self.exhausted or self.text[self.position] not in _NAME_START:
            raise self.error("expected a name")
        start = self.position
        while (
            self.position < len(self.text)
            and self.text[self.position] in _NAME_CHARS
        ):
            self.position += 1
        return self.text[start : self.position]


def decode_entities(text: str, scanner: Optional[_Scanner] = None) -> str:
    """Expand predefined entities and character references in ``text``."""
    if "&" not in text:
        return text
    parts: List[str] = []
    position = 0
    while True:
        ampersand = text.find("&", position)
        if ampersand < 0:
            parts.append(text[position:])
            break
        parts.append(text[position:ampersand])
        semicolon = text.find(";", ampersand + 1)
        if semicolon < 0:
            raise XMLError(f"unterminated entity near {text[ampersand:ampersand + 12]!r}")
        entity = text[ampersand + 1 : semicolon]
        if entity.startswith("#x") or entity.startswith("#X"):
            try:
                parts.append(chr(int(entity[2:], 16)))
            except ValueError:
                raise XMLError(f"bad character reference &{entity};") from None
        elif entity.startswith("#"):
            try:
                parts.append(chr(int(entity[1:], 10)))
            except ValueError:
                raise XMLError(f"bad character reference &{entity};") from None
        elif entity in _PREDEFINED_ENTITIES:
            parts.append(_PREDEFINED_ENTITIES[entity])
        else:
            raise XMLError(f"unknown entity &{entity};")
        position = semicolon + 1
    return "".join(parts)


def _parse_attributes(scanner: _Scanner, tag: str) -> Dict[str, str]:
    attributes: Dict[str, str] = {}
    while True:
        scanner.skip_whitespace()
        if scanner.peek() in (">", "/", "?", ""):
            return attributes
        name = scanner.read_name()
        scanner.skip_whitespace()
        if scanner.peek() != "=":
            raise scanner.error(f"attribute {name!r} of <{tag}> missing '='")
        scanner.advance()
        scanner.skip_whitespace()
        quote = scanner.peek()
        if quote not in ("'", '"'):
            raise scanner.error(
                f"attribute {name!r} of <{tag}> must be quoted"
            )
        scanner.advance()
        value = scanner.read_until(quote, f"attribute value of {name!r}")
        if "<" in value:
            raise scanner.error(f"raw '<' in attribute {name!r}")
        if name in attributes:
            raise scanner.error(f"duplicate attribute {name!r} on <{tag}>")
        attributes[name] = decode_entities(value, scanner)


def parse_xml(text: str, name: str = "doc") -> XMLDocument:
    """Parse ``text`` into an :class:`XMLDocument` (finalized).

    Args:
        text: the document source.
        name: a document name (becomes part of graph node ids when
            multiple documents are searched together).

    Raises:
        XMLError: on any well-formedness violation, with line/column.
    """
    scanner = _Scanner(text)
    root: Optional[XMLElement] = None
    stack: List[XMLElement] = []

    def append_text(fragment: str) -> None:
        if not fragment:
            return
        if stack:
            stack[-1].text_fragments.append(fragment)
        elif fragment.strip():
            raise scanner.error("text outside the root element")

    while not scanner.exhausted:
        if scanner.peek() != "<":
            start = scanner.position
            next_tag = scanner.text.find("<", start)
            if next_tag < 0:
                next_tag = len(scanner.text)
            raw = scanner.text[start:next_tag]
            scanner.position = next_tag
            append_text(decode_entities(raw, scanner))
            continue

        if scanner.startswith("<!--"):
            scanner.advance(4)
            comment = scanner.read_until("-->", "comment")
            if "--" in comment:
                raise scanner.error("'--' inside comment")
            continue
        if scanner.startswith("<![CDATA["):
            scanner.advance(9)
            append_text(scanner.read_until("]]>", "CDATA section"))
            continue
        if scanner.startswith("<?"):
            scanner.advance(2)
            scanner.read_until("?>", "processing instruction")
            continue
        if scanner.startswith("<!"):
            # DOCTYPE or other declaration: tolerate and skip (no internal
            # subset support — a '[' would contain '>' and is rejected).
            scanner.advance(2)
            declaration = scanner.read_until(">", "declaration")
            if "[" in declaration:
                raise scanner.error("DTD internal subsets are not supported")
            continue

        if scanner.startswith("</"):
            scanner.advance(2)
            tag = scanner.read_name()
            scanner.skip_whitespace()
            if scanner.peek() != ">":
                raise scanner.error(f"malformed closing tag </{tag}>")
            scanner.advance()
            if not stack:
                raise scanner.error(f"closing tag </{tag}> with no open element")
            open_element = stack.pop()
            if open_element.tag != tag:
                raise scanner.error(
                    f"mismatched closing tag: expected </{open_element.tag}>, "
                    f"found </{tag}>"
                )
            continue

        # An opening (or self-closing) tag.
        scanner.advance()
        tag = scanner.read_name()
        attributes = _parse_attributes(scanner, tag)
        self_closing = False
        if scanner.peek() == "/":
            scanner.advance()
            self_closing = True
        if scanner.peek() != ">":
            raise scanner.error(f"malformed tag <{tag}>")
        scanner.advance()

        element = XMLElement(tag, attributes)
        if stack:
            stack[-1].children.append(element)
        elif root is None:
            root = element
        else:
            raise scanner.error(
                f"second root element <{tag}> (document already rooted "
                f"at <{root.tag}>)"
            )
        if not self_closing:
            stack.append(element)

    if stack:
        raise XMLError(
            f"unclosed element <{stack[-1].tag}> at end of document"
        )
    if root is None:
        raise XMLError("document has no root element")

    document = XMLDocument(root, name)
    document.finalize()
    return document


def parse_xml_fragmentless(text: str, name: str = "doc") -> XMLDocument:
    """Parse, then drop whitespace-only text fragments (convenience for
    pretty-printed documents where indentation is not content)."""
    document = parse_xml(text, name)
    for element in document.root.iter():
        element.text_fragments = [
            fragment
            for fragment in element.text_fragments
            if fragment.strip()
        ]
    return document
