"""Keyword search over XML corpora: the :class:`XMLBanks` facade.

Mirrors :class:`repro.BANKS` for XML documents.  The graph model and
keyword index come from :mod:`repro.xmlkw.model`; the *search machinery
is reused unchanged* — the backward expanding search, scorer and answer
trees are generic over graph nodes, which is precisely the paper's point
that XML only adds "edges of a new type" to the same framework.

Query syntax matches the relational side: plain keywords,
``tag:keyword`` (the XML reading of ``attribute:keyword`` — the keyword
must occur inside an element with that tag), and ``approx(NUMBER)``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Set, Union

from repro.core.query import ParsedQuery, QueryTerm, parse_query
from repro.core.scoring import Scorer, ScoringConfig
from repro.core.search import SearchConfig, backward_expanding_search
from repro.core.answer import AnswerTree
from repro.text.fuzzy import numbers_near
from repro.xmlkw.document import XMLDocument, XMLElement
from repro.xmlkw.model import (
    XMLGraphConfig,
    XMLIndex,
    XMLNode,
    build_xml_graph,
)


@dataclass
class XMLAnswer:
    """One ranked XML answer: a connection tree over elements."""

    tree: AnswerTree
    relevance: float
    rank: int
    _banks: "XMLBanks"

    @property
    def root(self) -> XMLNode:
        return self.tree.root

    def root_element(self) -> XMLElement:
        return self._banks.element(self.tree.root)

    def render(self) -> str:
        """Indented rendering with element labels (tag, id, text head)."""
        labels = {
            node: self._banks.node_label(node) for node in self.tree.nodes
        }
        return self.tree.render_indented(labels)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"XMLAnswer(rank={self.rank}, relevance={self.relevance:.4f}, "
            f"root={self._banks.node_label(self.root)!r})"
        )


class XMLBanks:
    """Browsing ANd Keyword Searching over XML documents.

    Args:
        documents: the corpus (one or more finalized documents with
            distinct names).
        graph_config: edge weighting (defaults follow the relational
            side's defaults).
        scoring: scoring parameters (default: the paper's best setting).
        search_config: search knobs.
        excluded_root_tags: tags whose elements may not serve as
            information nodes (the XML analogue of excluding ``writes``
            — e.g. pure wrapper elements).
    """

    def __init__(
        self,
        documents: Union[XMLDocument, Sequence[XMLDocument]],
        graph_config: Optional[XMLGraphConfig] = None,
        scoring: Optional[ScoringConfig] = None,
        search_config: Optional[SearchConfig] = None,
        excluded_root_tags: Sequence[str] = (),
    ):
        if isinstance(documents, XMLDocument):
            documents = [documents]
        self.documents = list(documents)
        self._by_name = {
            document.name: document for document in self.documents
        }
        self.graph_config = graph_config or XMLGraphConfig()
        self.scoring = scoring or ScoringConfig()
        self.search_config = search_config or SearchConfig()
        self.excluded_root_tags = frozenset(excluded_root_tags)

        self.graph, self.stats = build_xml_graph(
            self.documents, self.graph_config
        )
        self.index = XMLIndex(self.documents)
        self.scorer = Scorer(self.stats, self.scoring)

    # -- resolution --------------------------------------------------------------

    def element(self, node: XMLNode) -> XMLElement:
        document_name, element_id = node
        return self._by_name[document_name].element(element_id)

    def resolve_term(
        self, term: QueryTerm, include_metadata: bool = True
    ) -> Set[XMLNode]:
        """The node set ``S_i`` for one query term."""
        if term.kind == "approx":
            nodes: Set[XMLNode] = set()
            for token in numbers_near(
                term.number or 0, self.index.vocabulary(), window=2
            ):
                nodes.update(self.index.lookup(token))
            return nodes
        if term.kind == "attribute":
            # The XML reading of attribute:keyword — restrict to elements
            # with the qualifying tag.
            return self.index.lookup_tagged(term.term, term.attribute or "")
        return self.index.lookup_nodes(
            term.term, include_metadata=include_metadata
        )

    def resolve(self, query: Union[str, ParsedQuery]) -> List[Set[XMLNode]]:
        parsed = parse_query(query) if isinstance(query, str) else query
        return [self.resolve_term(term) for term in parsed.terms]

    # -- search ------------------------------------------------------------------

    def search(
        self,
        query: Union[str, ParsedQuery],
        max_results: Optional[int] = None,
        scoring: Optional[ScoringConfig] = None,
        **config_overrides,
    ) -> List[XMLAnswer]:
        """Answer a keyword query over the corpus.

        Returns ranked answers; each answer's root is the *information
        element* whose subtree-spanning paths connect the keywords.
        """
        keyword_node_sets = self.resolve(query)
        config = self.search_config
        if max_results is not None:
            config_overrides["max_results"] = max_results
        if self.excluded_root_tags and "excluded_root_nodes" not in config_overrides:
            config_overrides["excluded_root_nodes"] = frozenset(
                self._excluded_root_nodes()
            )
        if config_overrides:
            config = replace(config, **config_overrides)
        scorer = (
            self.scorer if scoring is None else self.scorer.with_config(scoring)
        )
        scored = list(
            backward_expanding_search(
                self.graph, keyword_node_sets, scorer, config
            )
        )
        return [
            XMLAnswer(s.tree, s.relevance, rank, self)
            for rank, s in enumerate(scored)
        ]

    def _excluded_root_nodes(self) -> Set[XMLNode]:
        nodes: Set[XMLNode] = set()
        for document in self.documents:
            for element in document.elements():
                if element.tag in self.excluded_root_tags:
                    nodes.add((document.name, element.element_id))
        return nodes

    # -- presentation --------------------------------------------------------------

    def node_label(self, node: XMLNode) -> str:
        """``tag[#id]: leading text`` — compact, Fig. 2-style labels."""
        element = self.element(node)
        label = element.tag
        for attribute in self.graph_config.id_attributes:
            if attribute in element.attributes:
                label += f"#{element.attributes[attribute]}"
                break
        text = element.text or element.full_text()
        if text:
            head = text if len(text) <= 50 else text[:47] + "..."
            label += f": {head}"
        return label

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"XMLBanks({len(self.documents)} document(s), "
            f"{self.stats.num_nodes} nodes, {self.stats.num_edges} edges)"
        )
