"""XML documents -> BANKS data graph (containment as a new edge type).

The mapping follows the paper's remark that the BANKS edge model
subsumes nested XML:

* every element becomes a node ``(document_name, element_id)``;
* **containment**: each parent-child pair contributes a forward edge
  ``parent -> child`` (weight ``containment_weight``) and a back edge
  ``child -> parent`` whose weight scales with the parent's fan-out —
  the exact hub logic of Sec. 2.1: an element with hundreds of children
  (a big ``<bibliography>``) must not make all of them mutually "near";
* **reference**: each IDREF attribute contributes a forward edge
  ``referrer -> referee`` (weight ``reference_weight``) and a back edge
  scaled by the referee's reference indegree, mirroring relational
  foreign keys;
* **prestige**: node weight = number of incoming IDREF references
  (reference indegree), the XML analogue of the paper's tuple indegree.

The keyword index treats element *text* and *attribute values* as data
terms and element *tags* / *attribute names* as metadata terms, matching
the relational side's "column or relation name" metadata matching.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.model import GraphStats
from repro.errors import XMLError
from repro.graph.digraph import DiGraph
from repro.text.tokenizer import normalize, tokenize, tokenize_identifier
from repro.xmlkw.document import XMLDocument

#: A graph node: (document name, preorder element id).
XMLNode = Tuple[str, int]


@dataclass(frozen=True)
class XMLGraphConfig:
    """Weighting choices for the XML data graph.

    Attributes:
        containment_weight: forward weight of parent->child edges.
        reference_weight: forward weight of IDREF edges.
        idref_attributes: attribute names treated as single references.
        id_attributes: attribute names that define element IDs.
        backward_fanout_scaling: scale containment back edges by the
            parent's child count and reference back edges by the
            referee's indegree (the paper's hub fix); disabling it
            reproduces the undirected model Sec. 2.1 argues against.
        dangling_idref: ``"error"`` to reject references to missing IDs,
            ``"ignore"`` to skip them (dirty corpora).
    """

    containment_weight: float = 1.0
    reference_weight: float = 1.0
    idref_attributes: Tuple[str, ...] = ("idref", "ref", "href")
    id_attributes: Tuple[str, ...] = ("id",)
    backward_fanout_scaling: bool = True
    dangling_idref: str = "error"

    def __post_init__(self) -> None:
        if self.containment_weight <= 0 or self.reference_weight <= 0:
            raise XMLError("edge weights must be positive")
        if self.dangling_idref not in ("error", "ignore"):
            raise XMLError(
                f"dangling_idref must be 'error' or 'ignore', "
                f"got {self.dangling_idref!r}"
            )


def _is_idref_attribute(name: str, config: XMLGraphConfig) -> bool:
    lowered = name.lower()
    return lowered in config.idref_attributes or lowered.endswith("ref")


def build_xml_graph(
    documents: Sequence[XMLDocument],
    config: Optional[XMLGraphConfig] = None,
) -> Tuple[DiGraph, GraphStats]:
    """Construct the data graph over one or more XML documents.

    Documents must have distinct names (node ids embed the name).
    IDREFs resolve within their own document only — cross-document
    links belong to the federation layer.

    Returns:
        ``(graph, stats)`` with the same :class:`GraphStats` contract the
        relational model produces, so the scorer and search are reused
        unchanged.
    """
    config = config or XMLGraphConfig()
    names = [document.name for document in documents]
    if len(set(names)) != len(names):
        raise XMLError(f"duplicate document names: {names!r}")

    graph = DiGraph()
    reference_indegree: Dict[XMLNode, int] = {}
    references: List[Tuple[XMLNode, XMLNode]] = []

    for document in documents:
        for element in document.elements():
            graph.add_node((document.name, element.element_id))

    # Resolve IDREF references first: back-edge weights and prestige both
    # need the full indegree counts.
    for document in documents:
        for element in document.elements():
            source: XMLNode = (document.name, element.element_id)
            for attribute, value in element.attributes.items():
                if not _is_idref_attribute(attribute, config):
                    continue
                referee = document.by_id(value)
                if referee is None:
                    if config.dangling_idref == "error":
                        raise XMLError(
                            f"dangling IDREF {value!r} on <{element.tag}> "
                            f"in document {document.name!r}"
                        )
                    continue
                if referee is element:
                    continue  # no self loops, as in the relational model
                target: XMLNode = (document.name, referee.element_id)
                references.append((source, target))
                reference_indegree[target] = (
                    reference_indegree.get(target, 0) + 1
                )

    for source, target in references:
        graph.add_edge(source, target, config.reference_weight)
        if config.backward_fanout_scaling:
            backward = config.reference_weight * max(
                1, reference_indegree.get(target, 1)
            )
        else:
            backward = config.reference_weight
        # Eq. 1: if a containment edge will also offer a weight for this
        # pair, DiGraph.add_edge replaces — offer the min explicitly.
        _offer_min(graph, target, source, backward)

    for document in documents:
        for element in document.elements():
            fanout = len(element.children)
            parent_node: XMLNode = (document.name, element.element_id)
            for child in element.children:
                child_node: XMLNode = (document.name, child.element_id)
                _offer_min(
                    graph, parent_node, child_node, config.containment_weight
                )
                if config.backward_fanout_scaling:
                    backward = config.containment_weight * max(1, fanout)
                else:
                    backward = config.containment_weight
                _offer_min(graph, child_node, parent_node, backward)

    for document in documents:
        for element in document.elements():
            node: XMLNode = (document.name, element.element_id)
            graph.set_node_weight(
                node, float(reference_indegree.get(node, 0))
            )

    min_edge = graph.min_edge_weight() if graph.num_edges else 1.0
    max_node = graph.max_node_weight() if graph.num_nodes else 1.0
    stats = GraphStats(
        min_edge_weight=min_edge,
        max_node_weight=max(max_node, 1.0e-12),
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
    )
    return graph, stats


def _offer_min(
    graph: DiGraph, source: XMLNode, target: XMLNode, weight: float
) -> None:
    """Add the edge, keeping the smaller weight if one already exists
    (Eq. 1's ``min`` merge rule for coinciding containment/reference
    pairs)."""
    if graph.has_edge(source, target):
        weight = min(weight, graph.edge_weight(source, target))
    graph.add_edge(source, target, weight)


class XMLIndex:
    """Keyword -> element-node index over a set of XML documents.

    Mirrors :class:`repro.text.inverted_index.InvertedIndex`: data terms
    come from text content and attribute values; metadata terms from
    element tags and attribute names (expanded lazily, since a tag like
    ``paper`` can match thousands of elements).
    """

    def __init__(self, documents: Sequence[XMLDocument]):
        self._documents = list(documents)
        self._postings: Dict[str, Set[XMLNode]] = {}
        # token -> (document, tag) pairs whose tag matches
        self._tag_meta: Dict[str, Set[Tuple[str, str]]] = {}
        # token -> (document, tag, attribute) triples whose attribute
        # name matches
        self._attribute_meta: Dict[str, Set[Tuple[str, str, str]]] = {}
        self._by_tag: Dict[Tuple[str, str], List[int]] = {}
        self._build()

    def _build(self) -> None:
        for document in self._documents:
            for element in document.elements():
                node: XMLNode = (document.name, element.element_id)
                self._by_tag.setdefault(
                    (document.name, element.tag), []
                ).append(element.element_id)
                for token in tokenize_identifier(element.tag):
                    self._tag_meta.setdefault(token, set()).add(
                        (document.name, element.tag)
                    )
                for token in tokenize(element.text):
                    self._postings.setdefault(token, set()).add(node)
                for attribute, value in element.attributes.items():
                    for token in tokenize_identifier(attribute):
                        self._attribute_meta.setdefault(token, set()).add(
                            (document.name, element.tag, attribute)
                        )
                    for token in tokenize(value):
                        self._postings.setdefault(token, set()).add(node)

    # -- lookup ------------------------------------------------------------

    def lookup(self, term: str) -> Set[XMLNode]:
        """Data postings only (text and attribute values)."""
        return set(self._postings.get(normalize(term), ()))

    def lookup_nodes(
        self, term: str, include_metadata: bool = True
    ) -> Set[XMLNode]:
        """All nodes relevant to ``term``; with metadata, every element
        whose tag (or an attribute name it carries) matches."""
        nodes = self.lookup(term)
        if not include_metadata:
            return nodes
        token = normalize(term)
        for document_name, tag in self._tag_meta.get(token, ()):
            nodes.update(
                (document_name, element_id)
                for element_id in self._by_tag.get((document_name, tag), ())
            )
        for document_name, tag, attribute in self._attribute_meta.get(
            token, ()
        ):
            document = next(
                d for d in self._documents if d.name == document_name
            )
            for element_id in self._by_tag.get((document_name, tag), ()):
                if attribute in document.element(element_id).attributes:
                    nodes.add((document_name, element_id))
        return nodes

    def lookup_tagged(self, term: str, tag: str) -> Set[XMLNode]:
        """Data postings restricted to elements with the given tag (and
        their attribute values) — ``tag:keyword`` query support."""
        return {
            (document_name, element_id)
            for document_name, element_id in self.lookup(term)
            for document in self._documents
            if document.name == document_name
            and document.element(element_id).tag == tag
        }

    def document_frequency(self, term: str) -> int:
        return len(self._postings.get(normalize(term), ()))

    def vocabulary(self) -> List[str]:
        return sorted(self._postings)

    def __contains__(self, term: str) -> bool:
        return normalize(term) in self._postings

    def __len__(self) -> int:
        return len(self._postings)
