"""Keyword search over XML documents (the paper's Sec. 7 extension).

The paper notes that BANKS's edge model subsumes XML: *"Since edges in
our model can have attributes such as type and weight, we can model
containment (as in DataSpot and in nested XML) simply as edges of a new
type.  (We are currently working on adding XML support to BANKS.)"*

This subpackage realises that plan end to end:

* :mod:`repro.xmlkw.parser` — a from-scratch, well-formedness-checking
  XML parser (no stdlib XML machinery);
* :mod:`repro.xmlkw.document` — the element-tree document model;
* :mod:`repro.xmlkw.model` — documents -> BANKS data graph (containment
  edges as a new edge type, ID/IDREF reference edges, prestige);
* :mod:`repro.xmlkw.search` — :class:`XMLBanks`, the facade mirroring
  :class:`repro.BANKS` for XML corpora;
* :mod:`repro.xmlkw.browse` — hyperlinked element/outline/search pages
  and a WSGI app (the browsing half of the Sec. 7 sentence);
* :mod:`repro.xmlkw.generator` — a deterministic synthetic XML corpus
  generator used by the tests, examples and benchmarks.
"""

from repro.xmlkw.browse import XMLBrowseApp, XMLBrowser
from repro.xmlkw.document import XMLDocument, XMLElement
from repro.xmlkw.model import XMLGraphConfig, build_xml_graph
from repro.xmlkw.parser import parse_xml
from repro.xmlkw.search import XMLAnswer, XMLBanks

__all__ = [
    "XMLAnswer",
    "XMLBanks",
    "XMLBrowseApp",
    "XMLBrowser",
    "XMLDocument",
    "XMLElement",
    "XMLGraphConfig",
    "build_xml_graph",
    "parse_xml",
]
