"""A minimal, safe HTML builder.

Three primitives cover everything the browsing pages need: escaping,
elements, and documents.  All text content and attribute values pass
through :func:`escape`, so injection from data values is impossible by
construction (tests feed hostile strings through the table renderer).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Union

_ESCAPES = {
    "&": "&amp;",
    "<": "&lt;",
    ">": "&gt;",
    '"': "&quot;",
    "'": "&#x27;",
}

#: Elements that never take closing tags.
_VOID_ELEMENTS = {"br", "hr", "img", "input", "link", "meta"}

Node = Union[str, "Element"]


def escape(text: str) -> str:
    """HTML-escape ``text`` for use in content or attribute values."""
    out = []
    for char in text:
        out.append(_ESCAPES.get(char, char))
    return "".join(out)


class Element:
    """One HTML element; renders recursively via :meth:`render`."""

    def __init__(
        self,
        tag_name: str,
        attrs: Optional[Dict[str, str]] = None,
        children: Sequence[Node] = (),
    ):
        self.tag_name = tag_name
        self.attrs = dict(attrs or {})
        self.children = list(children)

    def append(self, child: Node) -> "Element":
        self.children.append(child)
        return self

    def render(self) -> str:
        attr_text = "".join(
            f' {name}="{escape(str(value))}"'
            for name, value in self.attrs.items()
        )
        if self.tag_name in _VOID_ELEMENTS:
            return f"<{self.tag_name}{attr_text}/>"
        inner = "".join(
            child.render() if isinstance(child, Element) else escape(str(child))
            for child in self.children
        )
        return f"<{self.tag_name}{attr_text}>{inner}</{self.tag_name}>"


def el(
    tag_name: str,
    attrs: Optional[Dict[str, str]] = None,
    *children: Node,
) -> Element:
    """Shorthand element constructor."""
    return Element(tag_name, attrs, children)


def raw(html: str) -> Element:
    """Wrap a pre-rendered HTML fragment (used for SVG charts, which the
    chart module builds with its own escaping)."""
    fragment = Element("span")
    fragment.render = lambda: html  # type: ignore[method-assign]
    return fragment


def link(href: str, label: str) -> Element:
    return el("a", {"href": href}, label)


def page(title: str, *body: Node) -> str:
    """A complete HTML document with a minimal stylesheet."""
    style = (
        "body{font-family:sans-serif;margin:1.5em}"
        "table{border-collapse:collapse}"
        "td,th{border:1px solid #999;padding:2px 8px}"
        "th{background:#eee}"
        ".controls a{margin-right:.6em;font-size:80%}"
        ".kw{background:#ffd}"
    )
    document = el(
        "html",
        None,
        el(
            "head",
            None,
            el("title", None, title),
            el("style", None, style),
        ),
        el("body", None, el("h1", None, title), *body),
    )
    return "<!DOCTYPE html>" + document.render()
