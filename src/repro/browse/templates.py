"""Display templates (paper Sec. 4).

"BANKS templates provide several predefined ways of displaying any
data.  Template instances are customized, stored in the database, and
given a hyperlink name, which is used to access the template."  The
four kinds the paper lists are all implemented:

* **crosstab** — OLAP-style count matrix over two columns;
* **group by** — hierarchical drill-down over a column sequence
  (departments -> programs -> students in the paper's example);
* **folder** — the same hierarchy rendered as an expanded folder tree;
* **chart** — bar / line / pie over an aggregated column, with
  hyperlinked data (via :mod:`repro.browse.charts`).

Templates compose: a template's ``link_to`` field routes its drill-down
hyperlinks to another template instead of to raw tuples — "the action
associated with a hyperlink may be scripted to take the user to another
template".

Instances are stored *in the database itself* in a ``_banks_templates``
table (name, kind, JSON spec), exactly as the paper describes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.browse import charts
from repro.browse.html import Element, el, link, page, raw
from repro.browse.hyperlink import BrowseState, template_url
from repro.errors import BrowseError
from repro.relational.algebra import Relation, from_table, group_by, select
from repro.relational.database import Database
from repro.relational.schema import Column, TableSchema
from repro.relational.types import TEXT

TEMPLATE_TABLE = "_banks_templates"

_KINDS = ("crosstab", "groupby", "folder", "chart")


@dataclass(frozen=True)
class TemplateInstance:
    """A stored template: its hyperlink name, kind and specification."""

    name: str
    kind: str
    spec: Dict[str, Any]


class TemplateRegistry:
    """Stores and renders template instances for one database."""

    def __init__(self, database: Database):
        self.database = database
        if not database.schema.has_table(TEMPLATE_TABLE):
            database.create_table(
                TableSchema(
                    TEMPLATE_TABLE,
                    [
                        Column("name", TEXT, nullable=False),
                        Column("kind", TEXT, nullable=False),
                        Column("spec", TEXT, nullable=False),
                    ],
                    primary_key=("name",),
                )
            )

    # -- storage -----------------------------------------------------------

    def save(self, name: str, kind: str, spec: Dict[str, Any]) -> None:
        if kind not in _KINDS:
            raise BrowseError(f"unknown template kind {kind!r}")
        table = self.database.table(TEMPLATE_TABLE)
        existing = table.lookup_pk([name])
        if existing is not None:
            table.delete(existing.rid)
        self.database.insert(
            TEMPLATE_TABLE, [name, kind, json.dumps(spec, sort_keys=True)]
        )

    def load(self, name: str) -> TemplateInstance:
        row = self.database.table(TEMPLATE_TABLE).lookup_pk([name])
        if row is None:
            raise BrowseError(f"no template named {name!r}")
        return TemplateInstance(name, row["kind"], json.loads(row["spec"]))

    def names(self) -> List[str]:
        return sorted(
            row["name"] for row in self.database.table(TEMPLATE_TABLE).scan()
        )

    # -- rendering -----------------------------------------------------------

    def render(self, name: str, path: Sequence[str] = ()) -> str:
        """Render a stored template; ``path`` is the drill-down trail."""
        instance = self.load(name)
        if instance.kind == "crosstab":
            body = self._render_crosstab(instance)
        elif instance.kind == "groupby":
            body = self._render_hierarchy(instance, list(path), folder=False)
        elif instance.kind == "folder":
            body = self._render_hierarchy(instance, list(path), folder=True)
        else:
            body = self._render_chart(instance)
        return page(f"Template {name}", body)

    # -- crosstab ------------------------------------------------------------

    def _render_crosstab(self, instance: TemplateInstance) -> Element:
        spec = instance.spec
        relation = from_table(self.database.table(spec["table"]))
        row_position = relation.column_position(spec["row"])
        column_position = relation.column_position(spec["column"])
        counts: Dict[Tuple[Any, Any], int] = {}
        row_values: List[Any] = []
        column_values: List[Any] = []
        for row in relation.rows:
            r, c = row[row_position], row[column_position]
            if r not in row_values:
                row_values.append(r)
            if c not in column_values:
                column_values.append(c)
            counts[(r, c)] = counts.get((r, c), 0) + 1
        header = el(
            "tr",
            None,
            el("th", None, f"{spec['row']} \\ {spec['column']}"),
            *[el("th", None, str(c)) for c in column_values],
            el("th", None, "total"),
        )
        body_rows = [header]
        for r in row_values:
            cells = [el("th", None, str(r))]
            for c in column_values:
                cells.append(el("td", None, str(counts.get((r, c), 0))))
            cells.append(
                el(
                    "td",
                    None,
                    str(sum(counts.get((r, c), 0) for c in column_values)),
                )
            )
            body_rows.append(el("tr", None, *cells))
        return el("table", None, *body_rows)

    # -- hierarchical group-by / folder ---------------------------------------

    def _hierarchy_relation(
        self, instance: TemplateInstance, path: List[str]
    ) -> Tuple[Relation, List[str]]:
        spec = instance.spec
        group_columns: List[str] = list(spec["group_columns"])
        relation = from_table(self.database.table(spec["table"]))
        for column, value in zip(group_columns, path):
            relation = select(relation, column, "=", value)
        return relation, group_columns

    def _render_hierarchy(
        self, instance: TemplateInstance, path: List[str], folder: bool
    ) -> Element:
        relation, group_columns = self._hierarchy_relation(instance, path)
        depth = len(path)
        crumbs: List[Element] = [
            link(template_url(instance.name), "[top]")
        ]
        for position, value in enumerate(path):
            crumbs.append(
                link(
                    template_url(instance.name, path[: position + 1]),
                    f" / {value}",
                )
            )
        if depth >= len(group_columns):
            # Leaf level: show the matching tuples.
            header = el(
                "tr",
                None,
                *[el("th", None, c.split(".")[-1]) for c in relation.columns],
            )
            rows = [header]
            for row in relation.rows:
                rows.append(
                    el(
                        "tr",
                        None,
                        *[el("td", None, "" if v is None else str(v)) for v in row],
                    )
                )
            return el("div", None, el("p", None, *crumbs), el("table", None, *rows))

        column = group_columns[depth]
        grouping = group_by(relation, column)
        link_to: Optional[str] = instance.spec.get("link_to")
        items: List[Element] = []
        for value in grouping.distinct_values():
            text = "(null)" if value is None else str(value)
            if link_to:
                # Template composition: route to another template.
                target = template_url(link_to, [text])
            else:
                target = template_url(instance.name, path + [text])
            label = f"{text} ({grouping.count(value)})"
            if folder:
                items.append(el("li", None, "📁 ", link(target, label)))
            else:
                items.append(el("li", None, link(target, label)))
        return el("div", None, el("p", None, *crumbs), el("ul", None, *items))

    # -- charts ---------------------------------------------------------------

    def _render_chart(self, instance: TemplateInstance) -> Element:
        spec = instance.spec
        relation = from_table(self.database.table(spec["table"]))
        label_column = spec["label_column"]
        grouping = group_by(relation, label_column)
        data: List[charts.Datum] = []
        link_to: Optional[str] = spec.get("link_to")
        for value in grouping.distinct_values():
            text = "(null)" if value is None else str(value)
            if link_to:
                url: Optional[str] = template_url(link_to, [text])
            else:
                url = (
                    BrowseState(spec["table"])
                    .with_selection(label_column, "=", text)
                    .url()
                )
            data.append((text, float(grouping.count(value)), url))
        chart_kind = spec.get("chart", "bar")
        if chart_kind == "bar":
            svg = charts.bar_chart(data)
        elif chart_kind == "line":
            svg = charts.line_chart(data)
        elif chart_kind == "pie":
            svg = charts.pie_chart(data)
        else:
            raise BrowseError(f"unknown chart kind {chart_kind!r}")
        return el("div", None, raw(svg))
