"""SVG charts with drill-down hyperlinks (paper Sec. 4).

"The graphical interface template permits information to be displayed
in bar chart, line chart or pie chart format.  Hyperlinks are provided
on the graphical data via HTML image maps; clicking on a bar of a bar
chart, or a slice of a pie chart shows tuples with the associated
value."

Modern equivalent of the paper's image maps: every bar / point / slice
is wrapped in an SVG ``<a>`` element carrying the drill-down URL.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from repro.browse.html import escape
from repro.errors import BrowseError

#: (label, value, drill-down URL or None)
Datum = Tuple[str, float, Optional[str]]

_PALETTE = [
    "#4e79a7", "#f28e2b", "#e15759", "#76b7b2", "#59a14f",
    "#edc948", "#b07aa1", "#ff9da7", "#9c755f", "#bab0ac",
]


def _wrap_link(fragment: str, url: Optional[str]) -> str:
    if url is None:
        return fragment
    return f'<a href="{escape(url)}">{fragment}</a>'


def bar_chart(
    data: Sequence[Datum], width: int = 480, height: int = 240
) -> str:
    """An SVG bar chart; each bar links to its drill-down URL."""
    if not data:
        raise BrowseError("cannot chart an empty series")
    peak = max(value for _label, value, _url in data) or 1.0
    bar_space = width / len(data)
    bar_width = max(4.0, bar_space * 0.8)
    parts: List[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height + 40}" role="img">'
    ]
    for i, (label, value, url) in enumerate(data):
        bar_height = 0.0 if peak <= 0 else (max(0.0, value) / peak) * height
        x = i * bar_space + (bar_space - bar_width) / 2
        y = height - bar_height
        color = _PALETTE[i % len(_PALETTE)]
        bar = (
            f'<rect x="{x:.1f}" y="{y:.1f}" width="{bar_width:.1f}" '
            f'height="{bar_height:.1f}" fill="{color}">'
            f"<title>{escape(label)}: {value:g}</title></rect>"
        )
        parts.append(_wrap_link(bar, url))
        parts.append(
            f'<text x="{x + bar_width / 2:.1f}" y="{height + 14}" '
            f'font-size="10" text-anchor="middle">'
            f"{escape(label[:12])}</text>"
        )
    parts.append("</svg>")
    return "".join(parts)


def line_chart(
    data: Sequence[Datum], width: int = 480, height: int = 240
) -> str:
    """An SVG line chart; each point links to its drill-down URL."""
    if not data:
        raise BrowseError("cannot chart an empty series")
    peak = max(value for _label, value, _url in data) or 1.0
    step = width / max(1, len(data) - 1)
    points: List[Tuple[float, float]] = []
    for i, (_label, value, _url) in enumerate(data):
        x = i * step
        y = height - (max(0.0, value) / peak) * height
        points.append((x, y))
    path = " ".join(f"{x:.1f},{y:.1f}" for x, y in points)
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height + 40}">',
        f'<polyline points="{path}" fill="none" stroke="{_PALETTE[0]}" '
        'stroke-width="2"/>',
    ]
    for (x, y), (label, value, url) in zip(points, data):
        dot = (
            f'<circle cx="{x:.1f}" cy="{y:.1f}" r="4" fill="{_PALETTE[2]}">'
            f"<title>{escape(label)}: {value:g}</title></circle>"
        )
        parts.append(_wrap_link(dot, url))
    parts.append("</svg>")
    return "".join(parts)


def pie_chart(data: Sequence[Datum], radius: int = 120) -> str:
    """An SVG pie chart; each slice links to its drill-down URL."""
    if not data:
        raise BrowseError("cannot chart an empty series")
    total = sum(max(0.0, value) for _label, value, _url in data)
    if total <= 0:
        raise BrowseError("pie chart needs a positive total")
    size = radius * 2 + 20
    cx = cy = size / 2
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{size}" '
        f'height="{size}">'
    ]
    angle = -math.pi / 2
    for i, (label, value, url) in enumerate(data):
        fraction = max(0.0, value) / total
        sweep = fraction * 2 * math.pi
        x1 = cx + radius * math.cos(angle)
        y1 = cy + radius * math.sin(angle)
        angle_end = angle + sweep
        x2 = cx + radius * math.cos(angle_end)
        y2 = cy + radius * math.sin(angle_end)
        large = 1 if sweep > math.pi else 0
        color = _PALETTE[i % len(_PALETTE)]
        if fraction >= 0.999999:
            slice_svg = (
                f'<circle cx="{cx}" cy="{cy}" r="{radius}" fill="{color}">'
                f"<title>{escape(label)}: {value:g}</title></circle>"
            )
        else:
            slice_svg = (
                f'<path d="M{cx:.1f},{cy:.1f} L{x1:.1f},{y1:.1f} '
                f'A{radius},{radius} 0 {large} 1 {x2:.1f},{y2:.1f} Z" '
                f'fill="{color}">'
                f"<title>{escape(label)}: {value:g}</title></path>"
            )
        parts.append(_wrap_link(slice_svg, url))
        angle = angle_end
    parts.append("</svg>")
    return "".join(parts)
