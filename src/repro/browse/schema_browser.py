"""Schema browsing (paper Sec. 4: "schema browsing is supported").

One page listing every relation with its columns, types, key
annotations, and hyperlinks to browse the data or follow foreign keys.
"""

from __future__ import annotations

from typing import List

from repro.browse.html import Element, el, link, page
from repro.browse.hyperlink import table_url
from repro.relational.database import Database


def _column_annotations(schema, column_name: str) -> str:
    notes: List[str] = []
    if column_name in schema.primary_key:
        notes.append("PK")
    for fk in schema.foreign_keys:
        if column_name in fk.source_columns:
            notes.append(f"FK -> {fk.target_table}")
    return ", ".join(notes)


def render_schema(database: Database) -> str:
    """The schema overview page."""
    sections: List[Element] = [el("p", None, link("/", "home"))]
    for schema in database.schema.tables():
        rows: List[Element] = [
            el(
                "tr",
                None,
                el("th", None, "column"),
                el("th", None, "type"),
                el("th", None, "keys"),
            )
        ]
        for column in schema.columns:
            rows.append(
                el(
                    "tr",
                    None,
                    el("td", None, column.name),
                    el(
                        "td",
                        None,
                        column.datatype.name
                        + ("" if column.nullable else " NOT NULL"),
                    ),
                    el("td", None, _column_annotations(schema, column.name)),
                )
            )
        referencing = database.schema.references_to(schema.name)
        referenced_by = (
            "referenced by: "
            + ", ".join(fk.source_table for fk in referencing)
            if referencing
            else ""
        )
        sections.append(
            el(
                "div",
                None,
                el(
                    "h2",
                    None,
                    link(table_url(schema.name), schema.name),
                    f" ({len(database.table(schema.name))} rows)",
                ),
                el("table", None, *rows),
                el("p", None, referenced_by),
            )
        )
    return page(f"Schema of {database.name}", *sections)
