"""Table and tuple pages with the paper's interactive controls.

Section 4: "Every displayed foreign key attribute value becomes a
hyperlink to the referenced tuple.  In addition, primary key columns can
be browsed backwards, to find referencing tuples, organized by
referencing relations. ... Columns can be projected away; selections can
be imposed on any column; for foreign key columns, clicking on 'join'
results in the referenced table being joined in ...; results can be
grouped-by on a column; tuples ... can be sorted by a specified column.
Controls for these operations can be accessed by clicking on the column
names in the table header.  In addition, displayed data is paginated."

Every control is rendered as a plain hyperlink whose URL is the current
:class:`~repro.browse.hyperlink.BrowseState` plus one transition — the
renderer itself stays a pure function.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.browse.html import Element, el, link, page
from repro.browse.hyperlink import BrowseState, row_url
from repro.errors import BrowseError
from repro.relational.algebra import (
    Relation,
    drop_columns,
    from_table,
    group_by,
    join_fk,
    page_count,
    paginate,
    select,
    sort_by,
)
from repro.relational.database import Database, RID

PAGE_SIZE = 25

#: Comparators offered in selection controls.
_SELECT_OPS = ("=", "!=", "<", "<=", ">", ">=")


def build_relation(database: Database, state: BrowseState) -> Relation:
    """Materialise the relation a browse state describes.

    Operator order matches the UI semantics: joins first (they add
    columns selections may refer to), then selections, then projection,
    then sort.  Pagination and grouping happen at render time.
    """
    relation = from_table(database.table(state.table))
    base_schema = database.table(state.table).schema
    for fk_index, direction in state.joins:
        if fk_index >= len(base_schema.foreign_keys):
            raise BrowseError(f"no foreign key #{fk_index} on {state.table!r}")
        foreign_key = base_schema.foreign_keys[fk_index]
        relation = join_fk(
            database, relation, foreign_key, reverse=(direction == "r")
        )
    for column, op, raw_value in state.selections:
        value = _coerce_selection_value(relation, column, raw_value)
        relation = select(relation, column, op, value)
    if state.dropped:
        present = [c for c in state.dropped if _has_column(relation, c)]
        if present:
            relation = drop_columns(relation, present)
    if state.sort:
        descending = state.sort.startswith("-")
        column = state.sort.lstrip("-")
        if _has_column(relation, column):
            relation = sort_by(relation, column, descending)
    return relation


def _has_column(relation: Relation, column: str) -> bool:
    try:
        relation.column_position(column)
    except Exception:
        return False
    return True


def _coerce_selection_value(
    relation: Relation, column: str, raw_value: str
) -> Any:
    """Best-effort typing of a selection literal from the URL."""
    try:
        position = relation.column_position(column)
    except Exception:
        raise BrowseError(f"unknown selection column {column!r}") from None
    for row in relation.rows:
        cell = row[position]
        if cell is None:
            continue
        if isinstance(cell, bool):
            return raw_value == "True"
        if isinstance(cell, int):
            try:
                return int(raw_value)
            except ValueError:
                return raw_value
        if isinstance(cell, float):
            try:
                return float(raw_value)
            except ValueError:
                return raw_value
        break
    return raw_value


def _header_cell(state: BrowseState, column: str) -> Element:
    """A column header with its pop-up-menu controls as links."""
    simple = column.split(".")[-1]
    controls = el(
        "span",
        {"class": "controls"},
        link(state.with_drop(column).url(), "[drop]"),
        link(state.with_sort(column).url(), "[sort]"),
        link(state.with_group_by(column).url(), "[group]"),
    )
    return el("th", None, simple, el("br"), controls)


def _fk_links(
    database: Database, state: BrowseState
) -> List[Element]:
    """The join controls: one per foreign key, both directions."""
    schema = database.table(state.table).schema
    items: List[Element] = []
    for index, fk in enumerate(schema.foreign_keys):
        items.append(
            el(
                "li",
                None,
                f"{fk.name} ",
                link(state.with_join(index, "f").url(), "[join referenced]"),
                " ",
                link(state.with_join(index, "r").url(), "[join referencing]"),
            )
        )
    return items


def _value_cell(
    database: Database,
    relation: Relation,
    state: BrowseState,
    row_index: int,
    column_index: int,
) -> Element:
    """One data cell; FK provenance makes it a hyperlink to the tuple."""
    value = relation.rows[row_index][column_index]
    text = "" if value is None else str(value)
    provenance = relation.provenance[row_index]
    column = relation.columns[column_index]
    table_name = column.split(".")[0] if "." in column else state.table
    target: Optional[RID] = None
    for rid in provenance:
        if rid[0] == table_name:
            target = rid
            break
    if target is not None:
        return el("td", None, link(row_url(target), text or "(null)"))
    return el("td", None, text)


def render_table_page(database: Database, state: BrowseState) -> str:
    """The main table view (paper Fig. 4)."""
    relation = build_relation(database, state)

    body: List[Element] = []
    body.append(
        el(
            "p",
            None,
            link("/", "home"),
            " | ",
            link("/schema", "schema"),
            f" | {len(relation)} rows",
        )
    )
    join_items = _fk_links(database, state)
    if join_items:
        body.append(el("ul", None, *join_items))

    if state.group_by and _has_column(relation, state.group_by):
        body.append(_render_grouped(relation, state))
    else:
        body.append(_render_plain(database, relation, state))

    return page(f"Table {state.table}", *body)


def _render_plain(
    database: Database, relation: Relation, state: BrowseState
) -> Element:
    pages = page_count(relation, PAGE_SIZE)
    current = min(state.page, pages)
    view = paginate(relation, current, PAGE_SIZE)

    header = el(
        "tr", None, *[_header_cell(state, column) for column in view.columns]
    )
    rows: List[Element] = [header]
    for row_index in range(len(view.rows)):
        cells = [
            _value_cell(database, view, state, row_index, column_index)
            for column_index in range(len(view.columns))
        ]
        rows.append(el("tr", None, *cells))

    pager_links: List[Element] = []
    if current > 1:
        pager_links.append(link(state.with_page(current - 1).url(), "prev"))
    pager_links.append(el("span", None, f" page {current}/{pages} "))
    if current < pages:
        pager_links.append(link(state.with_page(current + 1).url(), "next"))

    return el("div", None, el("table", None, *rows), el("p", None, *pager_links))


def _render_grouped(relation: Relation, state: BrowseState) -> Element:
    """Group-by view: distinct values; one group optionally expanded."""
    grouping = group_by(relation, state.group_by or "")
    items: List[Element] = []
    for value in grouping.distinct_values():
        text = "(null)" if value is None else str(value)
        count = grouping.count(value)
        items.append(
            el(
                "li",
                None,
                link(state.with_expand(text).url(), text),
                f" ({count} rows)",
            )
        )
    parts: List[Element] = [
        el("p", None, link(state.with_group_by(None).url(), "[ungroup]")),
        el("ul", None, *items),
    ]
    if state.expand is not None:
        for value in grouping.distinct_values():
            text = "(null)" if value is None else str(value)
            if text == state.expand:
                expanded = grouping.expand(value)
                header = el(
                    "tr",
                    None,
                    *[el("th", None, c.split(".")[-1]) for c in expanded.columns],
                )
                rows = [header]
                for row in expanded.rows:
                    rows.append(
                        el(
                            "tr",
                            None,
                            *[
                                el("td", None, "" if v is None else str(v))
                                for v in row
                            ],
                        )
                    )
                parts.append(el("h2", None, f"{state.group_by} = {text}"))
                parts.append(el("table", None, *rows))
    return el("div", None, *parts)


def render_row_page(database: Database, node: RID) -> str:
    """Single-tuple page: values, outgoing references as hyperlinks, and
    referencing tuples organised by referencing relation."""
    table_name, rid = node
    table = database.table(table_name)
    row = table.row(rid)

    value_rows: List[Element] = []
    for column in table.schema.columns:
        value = row[column.name]
        value_rows.append(
            el(
                "tr",
                None,
                el("th", None, column.name),
                el("td", None, "" if value is None else str(value)),
            )
        )

    body: List[Element] = [
        el("p", None, link(BrowseState(table_name).url(), f"table {table_name}")),
        el("table", None, *value_rows),
    ]

    outgoing = database.references_of(node)
    if outgoing:
        items = [
            el(
                "li",
                None,
                f"{fk.name}: ",
                link(row_url(target), f"{target[0]}#{target[1]}"),
            )
            for fk, target in outgoing
        ]
        body.append(el("h2", None, "References"))
        body.append(el("ul", None, *items))

    incoming = database.referencing(node)
    if incoming:
        by_relation: Dict[str, List[RID]] = {}
        for fk, source in incoming:
            by_relation.setdefault(fk.source_table, []).append(source)
        body.append(el("h2", None, "Referenced by"))
        for relation_name, sources in sorted(by_relation.items()):
            items = [
                el("li", None, link(row_url(s), f"{s[0]}#{s[1]}"))
                for s in sources[:50]
            ]
            body.append(el("h3", None, f"{relation_name} ({len(sources)})"))
            body.append(el("ul", None, *items))

    return page(f"{table_name} #{rid}", *body)
