"""The browsing subsystem (paper Sec. 4).

"The BANKS system provides a rich interface to browse data stored in a
relational database.  The browsing system automatically generates
browsable views of database relations and query results; no content
programming or user intervention is required."

Everything here is headless and pure: functions from database +
browse-state to HTML strings, so the whole subsystem is unit-testable
without a web server.  ``examples/publish_sqlite.py`` wires it to a
stdlib ``wsgiref`` server for the paper's "near zero-effort Web
publishing" workflow.

* :mod:`repro.browse.hyperlink` — URL scheme and browse-state encoding;
* :mod:`repro.browse.html` — minimal escaped-HTML builder;
* :mod:`repro.browse.tableview` — table pages with the paper's controls
  (project, select, join through FKs in both directions, group-by,
  sort, paginate) and automatic hyperlinks on key columns;
* :mod:`repro.browse.schema_browser` — schema overview;
* :mod:`repro.browse.charts` — SVG bar/line/pie with drill-down links;
* :mod:`repro.browse.templates` — crosstab / group-by hierarchy /
  folder / chart templates, stored in the database and composable;
* :mod:`repro.browse.app` — a WSGI application tying it together.
"""

from repro.browse.app import BrowseApp
from repro.browse.hyperlink import BrowseState, row_url, table_url
from repro.browse.schema_browser import render_schema
from repro.browse.tableview import render_row_page, render_table_page
from repro.browse.templates import TemplateRegistry

__all__ = [
    "BrowseApp",
    "BrowseState",
    "TemplateRegistry",
    "render_row_page",
    "render_schema",
    "render_table_page",
    "row_url",
    "table_url",
]
