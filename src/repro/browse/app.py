"""A WSGI application exposing search + browsing over one database.

This is the reproduction of the paper's servlet front end: point it at
any :class:`~repro.relational.database.Database` (e.g. one loaded from
sqlite) and every relation becomes browsable and keyword-searchable with
zero programming — the paper's "near zero-effort Web publishing of
relational data".

The app is framework-free: :meth:`BrowseApp.handle` maps
``(path, query_string)`` to ``(status, html)`` as a pure function (unit
tested directly), and ``__call__`` adapts it to WSGI for
``wsgiref.simple_server`` (see ``examples/publish_sqlite.py``).

When constructed with a :class:`~repro.serve.engine.QueryEngine`,
searches route through the engine (worker pool, admission control,
single-flight dedup) instead of calling the facade inline, and the
engine's metrics registry is exposed as plaintext at ``/metrics``.

``/mutate`` is the write surface (the paper's live "Web publishing of
organisational data"): it applies an insert, delete or update through
whichever write path the deployment has — the shard router's delta
routing, the engine's snapshot store, or a bare
:class:`~repro.core.incremental.IncrementalBANKS` facade — and reports
the resulting epoch.  Parameters::

    /mutate?op=insert&table=paper&v=p9&v=Some+Title
    /mutate?op=delete&table=paper&rid=3
    /mutate?op=update&table=paper&rid=3&set=title%3DNew+Title
"""

from __future__ import annotations

import json
from typing import Callable, Iterable, Tuple
from urllib.parse import parse_qs, unquote

from repro.browse.html import el, link, page
from repro.browse.hyperlink import BrowseState, row_url, table_url
from repro.browse.schema_browser import render_schema
from repro.browse.tableview import render_row_page, render_table_page
from repro.browse.templates import TEMPLATE_TABLE, TemplateRegistry
from repro.core.banks import BANKS
from repro.errors import ReproError


class BrowseApp:
    """Search + browse application over one BANKS instance.

    Args:
        banks: the facade (browsing pages read its live database).
        engine: optional :class:`~repro.serve.engine.QueryEngine`;
            when given, ``/search`` dispatches through it and
            ``/metrics`` serves the engine's metrics.
        read_only: refuse ``/mutate`` even over a mutable facade.  A
            WAL follower (``banks serve --follow``) serves one: its
            state is owned by the primary's epoch log, and a local
            write would silently diverge from it.
        cluster: a :class:`~repro.cluster.api.Cluster` to serve —
            the preferred construction: the facade, engine and
            read-only flag all derive from the cluster's spec, so the
            app cannot desync from the deployment.  Mutually exclusive
            with the explicit arguments.
    """

    def __init__(
        self,
        banks: BANKS = None,
        engine=None,
        read_only: bool = False,
        cluster=None,
    ):
        if cluster is not None:
            if banks is not None or engine is not None:
                raise ReproError(
                    "pass either cluster= or banks/engine, not both"
                )
            banks = cluster.banks
            engine = cluster.backend
            read_only = cluster.read_only
        if banks is None:
            raise ReproError("BrowseApp needs a facade or a cluster")
        self.cluster = cluster
        self._banks = banks
        self.engine = engine
        self.read_only = read_only
        self.templates = TemplateRegistry(banks.database)

    @property
    def banks(self) -> BANKS:
        """The facade to read from: under an engine, the *current*
        snapshot — so browse pages and row links reflect every
        published mutation, matching what searches see."""
        if self.engine is not None:
            facade = getattr(self.engine, "facade", None)
            if facade is not None:
                return facade
        return self._banks

    @property
    def database(self):
        return self.banks.database

    @property
    def obs(self):
        """The deployment's :class:`repro.obs.Observability` bundle, or
        ``None``: the cluster's when one was passed (the surface that
        originates traces), otherwise the engine's own."""
        if self.cluster is not None:
            return getattr(self.cluster, "obs", None)
        return getattr(self.engine, "obs", None)

    # -- pages -------------------------------------------------------------

    def home_page(self) -> str:
        table_items = [
            el(
                "li",
                None,
                link(table_url(name), name),
                f" ({len(self.database.table(name))} rows)",
            )
            for name in self.database.table_names
            if name != TEMPLATE_TABLE
        ]
        template_items = [
            el("li", None, link(f"/template/{name}", name))
            for name in self.templates.names()
        ]
        form = el(
            "form",
            {"action": "/search", "method": "get"},
            el("input", {"name": "q", "size": "40"}),
            el("input", {"type": "submit", "value": "Search"}),
        )
        body = [
            el("p", None, link("/schema", "browse the schema")),
            form,
            el("h2", None, "Relations"),
            el("ul", None, *table_items),
        ]
        if template_items:
            body.append(el("h2", None, "Templates"))
            body.append(el("ul", None, *template_items))
        return page(f"BANKS: {self.database.name}", *body)

    def search_page(self, query: str, max_results: int = 10) -> str:
        if not query.strip():
            return page("Search", el("p", None, "Empty query."))
        try:
            if self.engine is not None:
                answers = self.engine.search(query, max_results=max_results)
            else:
                answers = self.banks.search(query, max_results=max_results)
        except ReproError as error:
            return page("Search", el("p", None, f"Error: {error}"))
        blocks = []
        for answer in answers:
            lines = []
            matched = {
                node for node in answer.tree.keyword_nodes if node is not None
            }
            # Label nodes against the facade that produced the answer
            # (the pinned snapshot under the engine), so labels stay
            # consistent with the result even if a newer version has
            # been published since this search was admitted.
            labeler = getattr(answer, "_banks", self.banks).node_label

            def walk(node, depth: int) -> None:
                label = labeler(node)
                attrs = {"class": "kw"} if node in matched else None
                lines.append(
                    el(
                        "div",
                        {"style": f"margin-left:{depth * 1.5}em"},
                        el("span", attrs, link(row_url(node), label)),
                    )
                )
                for child in sorted(answer.tree.children(node), key=repr):
                    walk(child, depth + 1)

            walk(answer.tree.root, 0)
            blocks.append(
                el(
                    "div",
                    None,
                    el(
                        "h3",
                        None,
                        f"#{answer.rank + 1} "
                        f"(relevance {answer.relevance:.3f})",
                    ),
                    *lines,
                )
            )
        if not blocks:
            blocks.append(el("p", None, "No answers."))
        return page(f"Results for {query!r}", *blocks)

    def shards_page(self) -> str:
        """Partition layout and per-shard counters of a shard router."""
        info = self.engine.describe()
        snapshot = self.engine.metrics.snapshot()
        facts = el(
            "ul",
            None,
            el("li", None, f"shards: {info['shards']}"),
            el("li", None, f"strategy: {info['strategy']}"),
            el("li", None, f"backend: {info['backend']}"),
            el(
                "li",
                None,
                f"epoch: {info.get('epoch', 0)} "
                f"({int(snapshot.get('mutations_total', 0))} routed "
                "mutation(s))",
            ),
            el(
                "li",
                None,
                f"cut edges: {info['cut_edges']} "
                f"({info['cut_fraction']:.1%} of directed edges)",
            ),
            el("li", None, f"balance: {info['balance']:.3f}"),
        )
        rows = [
            el(
                "tr",
                None,
                el("th", None, "shard"),
                el("th", None, "nodes"),
                el("th", None, "sub-searches"),
                el("th", None, "engine epoch"),
            )
        ]
        engines = getattr(self.engine, "engines", [])
        for shard_id, nodes in enumerate(info["shard_nodes"]):
            searches = snapshot.get(f"shard{shard_id}_searches_total", 0)
            if shard_id < len(engines):
                engine_epoch = engines[shard_id].snapshots.version
            else:  # pragma: no cover - defensive
                engine_epoch = 0
            rows.append(
                el(
                    "tr",
                    None,
                    el("td", None, str(shard_id)),
                    el("td", None, str(nodes)),
                    el("td", None, str(int(searches))),
                    el("td", None, str(engine_epoch)),
                )
            )
        return page(
            f"Shards: {self.database.name}",
            facts,
            el("table", {"border": "1"}, *rows),
        )

    def replicas_page(self) -> str:
        """Replica-set layout: balancing, per-replica state and lag."""
        info = self.engine.describe()
        snapshot = self.engine.metrics.snapshot()
        facts = el(
            "ul",
            None,
            el("li", None, f"replicas: {info['replicas']}"),
            el("li", None, f"backend: {info['backend']}"),
            el("li", None, f"balance: {info['balance']}"),
            el("li", None, f"staleness bound: {info['max_lag']} epoch(s)"),
            el(
                "li",
                None,
                f"primary epoch: {info['epoch']} "
                f"({int(snapshot.get('mutations_total', 0))} write(s), "
                f"{int(snapshot.get('primary_reads_total', 0))} primary "
                "read(s))",
            ),
            el(
                "li",
                None,
                f"failovers: {int(snapshot.get('replica_failovers_total', 0))}, "
                f"deaths: {int(snapshot.get('replica_deaths_total', 0))}, "
                "re-admissions: "
                f"{int(snapshot.get('replica_readmitted_total', 0))}",
            ),
        )
        rows = [
            el(
                "tr",
                None,
                el("th", None, "replica"),
                el("th", None, "state"),
                el("th", None, "applied epoch"),
                el("th", None, "lag"),
                el("th", None, "served"),
            )
        ]
        for status in info["replica_status"]:
            rows.append(
                el(
                    "tr",
                    None,
                    el("td", None, str(status["replica"])),
                    el("td", None, status["state"]),
                    el("td", None, str(status["applied_epoch"])),
                    el("td", None, str(status["lag_epochs"])),
                    el("td", None, str(status["served"])),
                )
            )
        return page(
            f"Replicas: {self.database.name}",
            facts,
            el("table", {"border": "1"}, *rows),
        )

    # -- tracing pages --------------------------------------------------------

    def trace_page(self) -> str:
        """Recent sampled traces, newest first, with store stats."""
        obs = self.obs
        stats = obs.store.stats()
        facts = el(
            "ul",
            None,
            el("li", None, f"sampling: {stats['sample']}"),
            el(
                "li",
                None,
                "slow-query threshold: "
                + (
                    f"{stats['slow_query_ms']:g} ms"
                    if stats["slow_query_ms"] is not None
                    else "off"
                ),
            ),
            el(
                "li",
                None,
                f"kept {stats['kept']} of {stats['offered']} offered "
                f"({stats['stored']} buffered, {stats['slow_stored']} slow, "
                f"capacity {stats['capacity']})",
            ),
        )
        rows = [
            el(
                "tr",
                None,
                el("th", None, "trace"),
                el("th", None, "query"),
                el("th", None, "topology"),
                el("th", None, "ms"),
                el("th", None, "spans"),
                el("th", None, "slow"),
            )
        ]
        for record in obs.store.recent(50):
            rows.append(
                el(
                    "tr",
                    None,
                    el(
                        "td",
                        None,
                        link(f"/trace/{record.trace_id}", record.trace_id),
                    ),
                    el("td", None, record.query),
                    el("td", None, record.topology),
                    el("td", None, f"{record.duration_ms:.2f}"),
                    el("td", None, str(len(record.spans))),
                    el("td", None, "SLOW" if record.slow else ""),
                )
            )
        return page(
            f"Traces: {self.database.name}",
            facts,
            el("table", {"border": "1"}, *rows),
            el("p", None, link("/", "home")),
        )

    def trace_detail_page(self, trace_id: str) -> str:
        """One trace, rendered as the ASCII span tree."""
        record = self.obs.store.get(trace_id)
        if record is None:
            return page(
                "Trace",
                el(
                    "p",
                    None,
                    f"No trace {trace_id!r} in the buffer (sampled away "
                    "or evicted).",
                ),
                el("p", None, link("/trace", "all traces")),
            )
        return page(
            f"Trace {trace_id}",
            el("pre", None, record.render()),
            el("p", None, link("/trace", "all traces")),
        )

    def debug_slow_json(self) -> str:
        """``GET /debug/slow`` — the slow-query ring as JSON."""
        obs = self.obs
        return json.dumps(
            {
                "stats": obs.store.stats(),
                "slow": [record.to_dict() for record in obs.store.slow(50)],
            },
            indent=2,
            sort_keys=True,
        )

    # -- the write surface ----------------------------------------------------

    def _writer(self):
        """The object carrying insert/delete/update, or ``None``.

        Preference order: the engine itself (a shard router routes
        deltas), an engine wrapping a mutable facade (snapshot-store
        write path), then a bare mutable facade.  A read-only
        deployment (a WAL replica) has no writer at all.
        """
        if self.read_only:
            return None
        engine = self.engine
        if engine is not None and callable(getattr(engine, "insert", None)):
            return engine
        if engine is not None and callable(getattr(engine, "mutate", None)):
            facade = getattr(engine, "facade", None)
            if callable(getattr(facade, "insert", None)):
                return engine  # mutate-capable engine over a live facade
        if callable(getattr(self._banks, "insert", None)):
            return self._banks
        return None

    def _current_epoch(self) -> int:
        engine = self.engine
        if engine is None:
            return 0
        epoch = getattr(engine, "epoch", None)
        if epoch is not None:
            return int(epoch)
        snapshots = getattr(engine, "snapshots", None)
        if snapshots is not None:
            return int(snapshots.epoch)
        return 0

    def mutate_page(self, query_string: str) -> str:
        """Apply one mutation and report the published epoch."""
        writer = self._writer()
        if writer is None:
            return page(
                "Mutate",
                el(
                    "p",
                    None,
                    "This deployment is read-only: serve a live facade "
                    "(banks serve --live) or a shard router to enable "
                    "mutations.  A WAL follower (banks serve --follow) "
                    "follows the primary's epochs and never writes "
                    "locally.",
                ),
            )
        params = parse_qs(query_string)
        op = params.get("op", [""])[0]
        table = params.get("table", [""])[0]
        try:
            outcome = self._apply_mutation(writer, op, table, params)
        except ReproError as error:
            return page("Mutate", el("p", None, f"Error: {error}"))
        return page(
            "Mutate",
            el("p", None, outcome),
            el("p", None, f"epoch: {self._current_epoch()}"),
            el("p", None, link("/", "home")),
        )

    def _apply_mutation(self, writer, op: str, table: str, params) -> str:
        values = params.get("v", [])
        rid_param = params.get("rid", [None])[0]
        sets = {}
        for pair in params.get("set", []):
            column, _, value = pair.partition("=")
            if not column:
                raise ReproError(f"malformed set parameter {pair!r}")
            sets[column] = value
        through_engine = writer is self.engine and not callable(
            getattr(writer, "insert", None)
        )
        if op == "insert":
            if not table or not values:
                raise ReproError("insert needs table= and one v= per column")
            if through_engine:
                rid = writer.mutate(lambda f: f.insert(table, values))
            else:
                rid = writer.insert(table, values)
            return f"inserted {rid[0]}:{rid[1]}"
        if op == "delete":
            if not table or rid_param is None:
                raise ReproError("delete needs table= and rid=")
            node = (table, int(rid_param))
            if through_engine:
                writer.mutate(lambda f: f.delete(node))
            else:
                writer.delete(node)
            return f"deleted {table}:{rid_param}"
        if op == "update":
            if not table or rid_param is None or not sets:
                raise ReproError(
                    "update needs table=, rid= and one set=column=value "
                    "per change"
                )
            node = (table, int(rid_param))
            if through_engine:
                writer.mutate(lambda f: f.update(node, sets))
            else:
                writer.update(node, sets)
            return f"updated {table}:{rid_param} ({', '.join(sorted(sets))})"
        raise ReproError(
            f"unknown mutation op {op!r} (use insert, delete or update)"
        )

    # -- routing ------------------------------------------------------------

    #: Content types emitted by the router.
    _HTML = "text/html; charset=utf-8"
    _PLAINTEXT = "text/plain; version=0.0.4; charset=utf-8"
    _JSON = "application/json; charset=utf-8"

    def handle(self, path: str, query_string: str = "") -> Tuple[str, str]:
        """Route one request; returns ``(status, body)``."""
        status, body, _content_type = self.handle_full(path, query_string)
        return status, body

    def handle_full(
        self, path: str, query_string: str = ""
    ) -> Tuple[str, str, str]:
        """Route one request; returns ``(status, body, content_type)``.

        The single place routing is decided — ``handle`` and the WSGI
        adapter both delegate here, so the body and its content type
        cannot desync.
        """
        try:
            parts = [unquote(p) for p in path.strip("/").split("/") if p]
            if not parts:
                return "200 OK", self.home_page(), self._HTML
            if parts[0] == "schema":
                return "200 OK", render_schema(self.database), self._HTML
            if parts[0] == "search":
                params = parse_qs(query_string)
                query = params.get("q", [""])[0]
                return "200 OK", self.search_page(query), self._HTML
            if parts == ["mutate"]:
                return "200 OK", self.mutate_page(query_string), self._HTML
            if parts == ["trace"] and self.obs is not None:
                return "200 OK", self.trace_page(), self._HTML
            if (
                parts[0] == "trace"
                and len(parts) == 2
                and self.obs is not None
            ):
                return "200 OK", self.trace_detail_page(parts[1]), self._HTML
            if parts == ["debug", "slow"] and self.obs is not None:
                return "200 OK", self.debug_slow_json(), self._JSON
            if parts == ["metrics"] and self.engine is not None:
                return (
                    "200 OK",
                    self.engine.metrics.render_text(),
                    self._PLAINTEXT,
                )
            if (
                parts == ["shards"]
                and self.engine is not None
                and hasattr(self.engine, "partition")
            ):
                return "200 OK", self.shards_page(), self._HTML
            if (
                parts == ["replicas"]
                and self.engine is not None
                and hasattr(self.engine, "replica_status")
            ):
                return "200 OK", self.replicas_page(), self._HTML
            if parts[0] == "table" and len(parts) == 2:
                state = BrowseState.from_query(parts[1], query_string)
                return (
                    "200 OK",
                    render_table_page(self.database, state),
                    self._HTML,
                )
            if parts[0] == "row" and len(parts) == 3:
                node = (parts[1], int(parts[2]))
                return (
                    "200 OK",
                    render_row_page(self.database, node),
                    self._HTML,
                )
            if parts[0] == "template" and len(parts) == 2:
                params = parse_qs(query_string)
                drill_path = params.get("path", [])
                return (
                    "200 OK",
                    self.templates.render(parts[1], drill_path),
                    self._HTML,
                )
        except (ReproError, ValueError) as error:
            return (
                "404 Not Found",
                page("Not found", el("p", None, f"{error}")),
                self._HTML,
            )
        return (
            "404 Not Found",
            page("Not found", el("p", None, f"No route for {path!r}")),
            self._HTML,
        )

    # -- WSGI adapter ----------------------------------------------------------

    def __call__(
        self, environ: dict, start_response: Callable
    ) -> Iterable[bytes]:
        status, body, content_type = self.handle_full(
            environ.get("PATH_INFO", "/"), environ.get("QUERY_STRING", "")
        )
        payload = body.encode("utf-8")
        start_response(
            status,
            [
                ("Content-Type", content_type),
                ("Content-Length", str(len(payload))),
            ],
        )
        return [payload]
