"""Hyperlink scheme and browse-state encoding.

Every browsing page is addressed by a URL whose query string carries the
full view state, so views are bookmarkable and the renderer is a pure
function of the URL — the property that lets the paper's system compose
views through hyperlinks alone.

URL scheme::

    /                      home page (table list)
    /schema                schema browser
    /table/<name>?...      table view; state in the query string
    /row/<table>/<rid>     single-tuple page with reference links
    /search?q=...          keyword search results
    /template/<name>?...   stored template instance

Table-view state parameters (all optional, all repeatable where noted):

* ``drop=col`` (repeatable) — projected-away columns;
* ``where=col:op:value`` (repeatable) — selections;
* ``join=fk_index:dir`` (repeatable) — foreign keys joined in
  (``dir`` is ``f`` for referencing->referenced, ``r`` for reverse);
* ``groupby=col`` — group by a column; ``expand=value`` opens a group;
* ``sort=col`` / ``sort=-col`` — ascending / descending sort;
* ``page=N`` — 1-based page number.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple
from urllib.parse import parse_qs, quote, urlencode

from repro.errors import BrowseError
from repro.relational.database import RID


@dataclass(frozen=True)
class BrowseState:
    """The full state of one table view."""

    table: str
    dropped: Tuple[str, ...] = ()
    selections: Tuple[Tuple[str, str, str], ...] = ()  # (col, op, value)
    joins: Tuple[Tuple[int, str], ...] = ()  # (fk index in schema, "f"|"r")
    group_by: Optional[str] = None
    expand: Optional[str] = None
    sort: Optional[str] = None  # column, "-column" for descending
    page: int = 1

    # -- encoding ---------------------------------------------------------

    def to_query(self) -> str:
        params: List[Tuple[str, str]] = []
        for column in self.dropped:
            params.append(("drop", column))
        for column, op, value in self.selections:
            params.append(("where", f"{column}:{op}:{value}"))
        for fk_index, direction in self.joins:
            params.append(("join", f"{fk_index}:{direction}"))
        if self.group_by:
            params.append(("groupby", self.group_by))
        if self.expand is not None:
            params.append(("expand", self.expand))
        if self.sort:
            params.append(("sort", self.sort))
        if self.page != 1:
            params.append(("page", str(self.page)))
        return urlencode(params)

    @classmethod
    def from_query(cls, table: str, query_string: str) -> "BrowseState":
        values = parse_qs(query_string, keep_blank_values=True)
        selections: List[Tuple[str, str, str]] = []
        for spec in values.get("where", []):
            parts = spec.split(":", 2)
            if len(parts) != 3:
                raise BrowseError(f"bad where parameter: {spec!r}")
            selections.append((parts[0], parts[1], parts[2]))
        joins: List[Tuple[int, str]] = []
        for spec in values.get("join", []):
            index_text, _, direction = spec.partition(":")
            if direction not in ("f", "r") or not index_text.isdigit():
                raise BrowseError(f"bad join parameter: {spec!r}")
            joins.append((int(index_text), direction))
        page_texts = values.get("page", ["1"])
        if not page_texts[-1].isdigit() or int(page_texts[-1]) < 1:
            raise BrowseError(f"bad page parameter: {page_texts[-1]!r}")
        return cls(
            table=table,
            dropped=tuple(values.get("drop", [])),
            selections=tuple(selections),
            joins=tuple(joins),
            group_by=values.get("groupby", [None])[-1],
            expand=values.get("expand", [None])[-1],
            sort=values.get("sort", [None])[-1],
            page=int(page_texts[-1]),
        )

    # -- state transitions (each returns the URL of the modified view) -----

    def url(self) -> str:
        query = self.to_query()
        base = f"/table/{quote(self.table)}"
        return f"{base}?{query}" if query else base

    def with_drop(self, column: str) -> "BrowseState":
        return replace(self, dropped=self.dropped + (column,))

    def with_selection(self, column: str, op: str, value: str) -> "BrowseState":
        return replace(
            self, selections=self.selections + ((column, op, value),), page=1
        )

    def with_join(self, fk_index: int, direction: str) -> "BrowseState":
        return replace(self, joins=self.joins + ((fk_index, direction),))

    def with_group_by(self, column: Optional[str]) -> "BrowseState":
        return replace(self, group_by=column, expand=None, page=1)

    def with_expand(self, value: str) -> "BrowseState":
        return replace(self, expand=value)

    def with_sort(self, column: str) -> "BrowseState":
        if self.sort == column:
            return replace(self, sort=f"-{column}")
        return replace(self, sort=column)

    def with_page(self, page: int) -> "BrowseState":
        return replace(self, page=page)


def table_url(table: str) -> str:
    return BrowseState(table).url()


def row_url(node: RID) -> str:
    table, rid = node
    return f"/row/{quote(table)}/{rid}"


def search_url(query: str) -> str:
    return "/search?" + urlencode({"q": query})


def template_url(name: str, path: Sequence[str] = ()) -> str:
    base = f"/template/{quote(name)}"
    if not path:
        return base
    return base + "?" + urlencode([("path", p) for p in path])
