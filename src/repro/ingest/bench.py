"""The ingest acceptance benchmark: scale, crash, resume, parity.

Three claims, exercised on the DBLP-scale synthetic bibliography
(:mod:`repro.datasets.synth`):

1. **Scale** — the stream ingests through the chunked pipeline into a
   live snapshot store at a sustained records/sec (the regression
   gate holds a floor on it), reaching the paper's ~100K-node graph
   at the default size.
2. **Crash survival** — a second ingest of the *same* stream is
   killed by fault injection at an arbitrary chunk boundary; the
   facade is rebuilt from the WAL, the job resumed from the registry
   cursor, and the resumed ingest completes.
3. **Parity** — after resume, the recovered store answers every demo
   query with *exactly* the uninterrupted store's top-k (roots and
   scores): a crash plus resume is observationally equivalent to
   never having crashed.
"""

from __future__ import annotations

import os
import tempfile
import time
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

from repro.core.incremental import IncrementalBANKS
from repro.datasets.synth import (
    DEMO_QUERIES,
    synth_bibliography_base,
    synth_bibliography_records,
)
from repro.errors import IngestError
from repro.ingest.jobs import IngestJob, JobRegistry
from repro.ingest.pipeline import IngestPipeline, StoreTarget
from repro.ops.faults import FaultInjected, FaultInjector
from repro.serve.snapshot import SnapshotStore


@dataclass
class IngestBenchReport:
    n_papers: int
    records: int
    chunks: int
    nodes: int
    edges: int
    ingest_seconds: float
    records_per_sec: float
    kill_step: str
    kill_chunk: int
    records_at_kill: int
    recover_seconds: float
    resume_records: int
    resume_seconds: float
    parity_ok: bool
    queries: int

    def render(self) -> str:
        parity = (
            "exact (top-5 roots and scores)"
            if self.parity_ok
            else "MISMATCH"
        )
        return "\n".join(
            [
                f"stream           : {self.records} records "
                f"({self.n_papers} papers) -> {self.nodes} nodes, "
                f"{self.edges} edges",
                f"ingest           : {self.chunks} chunk(s) in "
                f"{self.ingest_seconds:.2f} s = "
                f"{self.records_per_sec:.0f} records/s",
                f"kill             : {self.kill_step} at chunk "
                f"{self.kill_chunk} ({self.records_at_kill} records in)",
                f"recover + resume : {self.recover_seconds:.2f} s WAL "
                f"replay, then {self.resume_records} records in "
                f"{self.resume_seconds:.2f} s",
                f"parity           : {parity} over {self.queries} "
                "queries",
            ]
        )


def _probe(facade: Any, queries: Sequence[str], k: int) -> List[List[Tuple]]:
    """Top-k answers per query as comparable ``(root, score)`` lists."""
    result = []
    for query in queries:
        answers = facade.search(query, max_results=k)
        result.append(
            [
                (answer.tree.root, round(answer.relevance, 10))
                for answer in answers
            ]
        )
    return result


def run_ingest_benchmark(
    n_papers: int = 19500,
    seed: int = 7,
    chunk_size: int = 1000,
    kill_step: str = "ingest.chunk_commit",
    kill_fraction: float = 0.5,
    queries: Sequence[str] = DEMO_QUERIES,
    k: int = 5,
    workdir: Optional[str] = None,
) -> IngestBenchReport:
    """Run the full scale/crash/resume/parity exercise; see the module
    docstring.  ``workdir`` (default: a temp directory) receives the
    WAL and the job registries."""
    if workdir is None:
        with tempfile.TemporaryDirectory(prefix="bench-ingest-") as work:
            return run_ingest_benchmark(
                n_papers,
                seed,
                chunk_size,
                kill_step,
                kill_fraction,
                queries,
                k,
                workdir=work,
            )

    def source():
        from repro.ingest.sources import GeneratorSource

        return GeneratorSource(
            lambda: synth_bibliography_records(n_papers, seed=seed),
            name=f"synth:{n_papers}:{seed}",
        )

    # 1. The uninterrupted reference ingest (in-memory store).
    reference_store = SnapshotStore(
        IncrementalBANKS(synth_bibliography_base(), freeze=False),
        copy_mode="delta",
    )
    registry = JobRegistry(os.path.join(workdir, "jobs"))
    reference_job = registry.create(
        IngestJob(
            "reference",
            source().name,
            "synth:0",
            chunk_size=chunk_size,
        )
    )
    started = time.perf_counter()
    IngestPipeline(registry, StoreTarget(reference_store)).run(
        reference_job, source()
    )
    ingest_seconds = time.perf_counter() - started
    records = reference_job.records_committed
    chunks = reference_job.chunks_committed
    reference_facade = reference_store.current().facade
    reference_answers = _probe(reference_facade, queries, k)

    # 2. The killed ingest: same stream, WAL-backed, crash injected.
    wal_dir = os.path.join(workdir, "wal")
    kill_chunk = max(1, int(chunks * kill_fraction))
    killed_store = SnapshotStore(
        IncrementalBANKS(synth_bibliography_base(), freeze=False),
        copy_mode="delta",
        wal=wal_dir,
    )
    killed_job = registry.create(
        IngestJob(
            "killed", source().name, "synth:0", chunk_size=chunk_size
        )
    )
    faults = FaultInjector().kill_at(kill_step, occurrence=kill_chunk)
    try:
        IngestPipeline(
            registry, StoreTarget(killed_store), faults=faults
        ).run(killed_job, source())
    except FaultInjected:
        pass
    else:
        raise IngestError(
            f"fault at {kill_step} x{kill_chunk} never fired "
            f"({chunks} chunks total)"
        )
    killed_store.wal.close()
    records_at_kill = registry.load("killed").records_committed
    del killed_store  # the "crashed process": memory state is gone

    # 3. Recover from the WAL, resume from the registry cursor.
    started = time.perf_counter()
    recovered_facade = IncrementalBANKS.recover(
        synth_bibliography_base, wal_dir, freeze=False
    )
    recover_seconds = time.perf_counter() - started
    recovered_store = SnapshotStore(
        recovered_facade, copy_mode="delta", wal=wal_dir
    )
    resumed_job = registry.load("killed")
    started = time.perf_counter()
    IngestPipeline(registry, StoreTarget(recovered_store)).run(
        resumed_job, source(), resume=True
    )
    resume_seconds = time.perf_counter() - started
    final_facade = recovered_store.current().facade

    # 4. Strict parity against the uninterrupted reference.
    parity_ok = (
        resumed_job.records_committed == records
        and _probe(final_facade, queries, k) == reference_answers
    )

    return IngestBenchReport(
        n_papers=n_papers,
        records=records,
        chunks=chunks,
        nodes=reference_facade.stats.num_nodes,
        edges=reference_facade.stats.num_edges,
        ingest_seconds=ingest_seconds,
        records_per_sec=records / max(ingest_seconds, 1e-9),
        kill_step=kill_step,
        kill_chunk=kill_chunk,
        records_at_kill=records_at_kill,
        recover_seconds=recover_seconds,
        resume_records=resumed_job.records_committed - records_at_kill,
        resume_seconds=resume_seconds,
        parity_ok=parity_ok,
        queries=len(queries),
    )
