"""Pluggable record sources: where an ingest stream comes from.

A source yields ``(table, values)`` records.  The one contract that
matters is **deterministic restartability**: ``records(skip=N)`` must
yield exactly the records a previous iteration would have yielded
after its first ``N`` — that replayed prefix is the resume cursor.
Files are naturally restartable; generator sources get a *factory*
(not an iterator) for the same reason.

Skip is implemented by reading and discarding — O(skip) on resume.
That is deliberate: the sources are line/row streams with no random
access, a resume happens once per crash, and re-parsing even a
million-record prefix is cheap next to re-*ingesting* it (parsing a
record costs microseconds; deriving and publishing its graph delta
costs a thousand times that).
"""

from __future__ import annotations

import csv
import json
import os
from typing import Any, Callable, Iterable, Iterator, List, Tuple

from repro.errors import IngestError

Record = Tuple[str, List[Any]]


class Source:
    """Base class: subclasses implement :meth:`_iter_records`."""

    #: Human-readable identity, recorded in the job file.
    name = "source"

    def _iter_records(self) -> Iterator[Record]:
        raise NotImplementedError

    def records(self, skip: int = 0) -> Iterator[Record]:
        """A fresh iteration of the stream, minus the first ``skip``
        records (the resume cursor)."""
        if skip < 0:
            raise IngestError(f"skip must be >= 0, got {skip}")
        iterator = self._iter_records()
        for _ in range(skip):
            try:
                next(iterator)
            except StopIteration:
                raise IngestError(
                    f"{self.name}: cannot skip {skip} records, the "
                    "stream is shorter — the source changed since the "
                    "job was started"
                ) from None
        return iterator

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.name!r})"


class JsonLinesSource(Source):
    """One JSON array ``["table", [values...]]`` per line; blank lines
    are skipped.  This is also the format :func:`dump_jsonl` writes."""

    def __init__(self, path: str):
        self.path = str(path)
        self.name = f"jsonl:{self.path}"

    def _iter_records(self) -> Iterator[Record]:
        with open(self.path, "r", encoding="utf-8") as handle:
            for number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except ValueError as error:
                    raise IngestError(
                        f"{self.path}:{number}: bad JSON: {error}"
                    ) from None
                if (
                    not isinstance(entry, list)
                    or len(entry) != 2
                    or not isinstance(entry[0], str)
                    or not isinstance(entry[1], list)
                ):
                    raise IngestError(
                        f"{self.path}:{number}: expected "
                        f'["table", [values...]], got {entry!r}'
                    )
                yield (entry[0], entry[1])


class CsvSource(Source):
    """CSV rows of ``table, value, value, ...``.  Values arrive as
    strings; the relational layer's column types coerce or reject them
    on insert (all bibliography columns are TEXT, so round-trips are
    exact there)."""

    def __init__(self, path: str):
        self.path = str(path)
        self.name = f"csv:{self.path}"

    def _iter_records(self) -> Iterator[Record]:
        with open(self.path, "r", encoding="utf-8", newline="") as handle:
            for number, row in enumerate(csv.reader(handle), start=1):
                if not row:
                    continue
                if len(row) < 2:
                    raise IngestError(
                        f"{self.path}:{number}: expected "
                        f"table,value[,value...], got {row!r}"
                    )
                yield (row[0], row[1:])


class GeneratorSource(Source):
    """Wrap a deterministic generator *factory* — called once per
    iteration, so resume-by-skip replays the same sequence."""

    def __init__(
        self,
        factory: Callable[[], Iterable[Record]],
        name: str = "generator",
    ):
        self._factory = factory
        self.name = name

    def _iter_records(self) -> Iterator[Record]:
        return iter(self._factory())


def open_source(spec: str) -> Source:
    """Resolve a ``SOURCE`` specifier::

        jsonl:/path/to/records.jsonl
        csv:/path/to/records.csv
        synth:N_PAPERS[:SEED]    the deterministic synthetic
                                 bibliography stream (repro.datasets)
    """
    scheme, _, rest = spec.partition(":")
    if scheme == "jsonl" and rest:
        return JsonLinesSource(rest)
    if scheme == "csv" and rest:
        return CsvSource(rest)
    if scheme == "synth" and rest:
        papers, _, seed_text = rest.partition(":")
        try:
            n_papers = int(papers)
            seed = int(seed_text) if seed_text else 7
        except ValueError:
            raise IngestError(
                f"bad synth source {spec!r} (use synth:N_PAPERS[:SEED])"
            ) from None
        from repro.datasets.synth import synth_bibliography_records

        return GeneratorSource(
            lambda: synth_bibliography_records(n_papers, seed=seed),
            name=f"synth:{n_papers}:{seed}",
        )
    raise IngestError(
        f"unknown source specifier {spec!r} "
        "(use jsonl:PATH, csv:PATH or synth:N[:SEED])"
    )


def dump_jsonl(records: Iterable[Record], path: str) -> int:
    """Materialise a record stream to :class:`JsonLinesSource` format
    (tmp-then-rename, so a partial dump is never mistaken for a
    source).  Returns the record count."""
    tmp = str(path) + ".tmp"
    count = 0
    with open(tmp, "w", encoding="utf-8") as handle:
        for table, values in records:
            handle.write(json.dumps([table, list(values)]) + "\n")
            count += 1
    os.replace(tmp, str(path))
    return count
