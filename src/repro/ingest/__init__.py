"""Resumable bulk ingestion: stream, chunk, publish, survive crashes.

The serving stack already had everything a bulk load needs *except*
the loader: the snapshot store batches mutations into atomic epochs,
the WAL makes epochs durable, checkpoints bound replay.  This package
adds the missing driver loop and its crash contract:

* :mod:`~repro.ingest.sources` — where records come from (JSON-lines,
  CSV, deterministic generators), restartable by construction;
* :mod:`~repro.ingest.jobs` — the durable per-job cursor
  (:class:`JobRegistry`), written atomically next to the WAL;
* :mod:`~repro.ingest.pipeline` — the chunked commit protocol
  (:class:`IngestPipeline`): one epoch per chunk, cursor saved after
  the commit, resume reconciled by epoch arithmetic, transient
  failures retried with backoff, crashes provable at every named
  step in :data:`INGEST_STEPS`;
* :mod:`~repro.ingest.bench` — the acceptance benchmark: DBLP-scale
  ingest throughput, kill-at-a-chunk-boundary, resume, and strict
  top-k parity against an uninterrupted run.

CLI: ``banks ingest DB SOURCE`` and ``banks jobs``.
"""

from repro.ingest.bench import IngestBenchReport, run_ingest_benchmark
from repro.ingest.jobs import JOB_STATES, IngestJob, JobRegistry
from repro.ingest.pipeline import (
    INGEST_STEPS,
    IngestPipeline,
    RouterTarget,
    StoreTarget,
)
from repro.ingest.sources import (
    CsvSource,
    GeneratorSource,
    JsonLinesSource,
    Source,
    dump_jsonl,
    open_source,
)

__all__ = [
    "CsvSource",
    "GeneratorSource",
    "INGEST_STEPS",
    "IngestBenchReport",
    "IngestJob",
    "IngestPipeline",
    "JOB_STATES",
    "JobRegistry",
    "JsonLinesSource",
    "RouterTarget",
    "Source",
    "StoreTarget",
    "dump_jsonl",
    "open_source",
    "run_ingest_benchmark",
]
