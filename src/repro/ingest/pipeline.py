"""The resumable chunked ingest pipeline.

The protocol per chunk is *commit first, save the cursor second*:

1. assemble the next ``chunk_size`` records from the source
   (``ingest.chunk_begin``);
2. commit them to the target — one :meth:`~repro.serve.snapshot.
   SnapshotStore.mutate_batch` call, hence **one published epoch**
   per chunk, durable in the WAL before it is visible
   (``ingest.chunk_commit``);
3. save the job cursor in the :class:`~repro.ingest.jobs.JobRegistry`
   (``ingest.cursor_save``).

A crash can therefore leave exactly two states: cursor and target
agree (crash outside the window), or the target is **one chunk
ahead** of the cursor (crash between 2 and 3).  Resume reconciles by
arithmetic, not by trust: the target's epoch spine counts committed
chunks (``target.epoch - job.base_epoch``), the job file holds the
stream cursor, and when the spine is one ahead, the first chunk
re-read from the source is *skipped past* — it is already durable —
and only the cursor is advanced.  This is why sources must be
deterministic and chunk size immutable per job: the re-read chunk
must cover exactly the records the pre-crash commit published.

Transient chunk failures (anything but an injected crash) are retried
with exponential backoff; when the budget is exhausted the job file
records ``state="failed"`` plus the error before the failure
propagates, so ``banks ingest --resume`` can pick the job up after
the operator fixes the cause.  :class:`~repro.ops.faults.
FaultInjected` is *not* retried — it simulates the process dying at a
protocol step, and the fault tests assert resume-after-kill parity at
every named step in :data:`INGEST_STEPS`.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Iterator, List, Tuple

from repro.errors import IngestError
from repro.ingest.jobs import JOB_STATES, RESUMABLE_STATES, IngestJob, JobRegistry
from repro.ingest.sources import Source
from repro.ops.faults import FaultInjected

#: The pipeline's named protocol steps, in order, for fault-injection
#: tests (the injector fires immediately *after* the named action).
INGEST_STEPS = (
    "ingest.chunk_begin",
    "ingest.chunk_commit",
    "ingest.cursor_save",
    "ingest.finish",
)

Record = Tuple[str, List[Any]]


class StoreTarget:
    """Commit chunks through a :class:`~repro.serve.snapshot.
    SnapshotStore` — one ``mutate_batch`` (one epoch) per chunk.

    The store's epoch is the resume spine: with a WAL attached it
    survives crashes, and ``epoch - base_epoch`` counts exactly the
    chunks whose records are durable.
    """

    def __init__(self, store: Any):
        self.store = store

    @property
    def epoch(self) -> int:
        return self.store.epoch

    def commit(self, chunk: List[Record]) -> None:
        self.store.mutate_batch(
            [
                (lambda facade, t=table, v=values: facade.insert(t, v))
                for table, values in chunk
            ]
        )


class RouterTarget(StoreTarget):
    """Commit chunks through a store *and* scatter each published
    epoch's deltas into a :class:`~repro.shard.router.ShardRouter`.

    The store (over its own derivation facade) stays the durable
    epoch spine — WAL, resume arithmetic, checkpoint cadence all
    unchanged — while the router absorbs every delta via
    :meth:`~repro.shard.router.ShardRouter.apply` so a sharded
    deployment ingests in lockstep.  On resume, rebuild the router
    from the recovered store state first; this target only forwards
    epochs published *through it*.
    """

    def __init__(self, router: Any, store: Any):
        super().__init__(store)
        self.router = router

    def commit(self, chunk: List[Record]) -> None:
        before = self.store.epoch
        super().commit(chunk)
        self.router.apply_epochs(self.store.log.entries_since(before))


class IngestPipeline:
    """Drive a job: stream, chunk, commit, checkpoint the cursor.

    Args:
        registry: the durable job registry.
        target: a :class:`StoreTarget` or :class:`RouterTarget`.
        metrics: optional :class:`~repro.serve.metrics.MetricsRegistry`;
            publishes ``ingest_records_total``, ``ingest_chunks_total``,
            ``ingest_retries_total`` and a per-job ``ingest_job_state``
            gauge (the state's index in :data:`~repro.ingest.jobs.
            JOB_STATES`).
        trace: optional :class:`~repro.obs.Trace`; every chunk becomes
            a span under one ``ingest.run`` root.
        faults: optional :class:`~repro.ops.faults.FaultInjector`
            (anything with ``step(name)``) announcing
            :data:`INGEST_STEPS`.
        max_retries: transient-failure retries per chunk before the
            job is marked failed.
        backoff_base: first retry delay; doubles per attempt.
        sleeper: injectable sleep (tests count backoffs without
            waiting).
    """

    def __init__(
        self,
        registry: JobRegistry,
        target: StoreTarget,
        *,
        metrics: Any = None,
        trace: Any = None,
        faults: Any = None,
        max_retries: int = 3,
        backoff_base: float = 0.05,
        sleeper: Callable[[float], None] = time.sleep,
    ):
        self.registry = registry
        self.target = target
        self.trace = trace
        self.faults = faults
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.sleeper = sleeper
        self._metrics = metrics
        if metrics is not None:
            self._records_total = metrics.counter(
                "ingest_records_total", "records committed by ingest"
            )
            self._chunks_total = metrics.counter(
                "ingest_chunks_total", "chunks committed by ingest"
            )
            self._retries_total = metrics.counter(
                "ingest_retries_total", "transient chunk failures retried"
            )

    # -- the protocol ---------------------------------------------------------

    def run(
        self, job: IngestJob, source: Source, *, resume: bool = False
    ) -> IngestJob:
        """Execute ``job`` over ``source`` to completion.

        Fresh runs take a job whose file :meth:`~repro.ingest.jobs.
        JobRegistry.create` just wrote (state ``pending``); resume
        runs take the loaded job of a crashed, failed or paused
        attempt.  Returns the job in state ``done``; raises
        :class:`~repro.errors.IngestError` after the retry budget is
        spent (job saved as ``failed`` first).
        """
        ahead = self._begin(job, resume)
        span_root = None
        if self.trace is not None:
            span_root = self.trace.begin(
                "ingest.run", job=job.job_id, source=source.name
            )
        try:
            stream = source.records(skip=job.records_committed)
            for chunk in _chunked(stream, job.chunk_size):
                self._step("ingest.chunk_begin")
                ahead = self._commit_chunk(job, chunk, ahead, span_root)
            job.state = "done"
            self.registry.save(job)
            self._set_state_gauge(job)
            self._step("ingest.finish")
            return job
        finally:
            if span_root is not None:
                self.trace.end(span_root)

    def _begin(self, job: IngestJob, resume: bool) -> int:
        """Validate the starting state; return how many chunks the
        target's epoch spine is ahead of the job cursor (0 normally,
        1 after a crash between commit and cursor save)."""
        if resume:
            if job.state == "done":
                return 0
            if job.state not in RESUMABLE_STATES:
                raise IngestError(
                    f"job {job.job_id!r} is {job.state!r}, not resumable "
                    f"(resumable: {', '.join(RESUMABLE_STATES)})"
                )
            ahead = (self.target.epoch - job.base_epoch) - job.chunks_committed
            if ahead not in (0, 1):
                raise IngestError(
                    f"job {job.job_id!r} cursor ({job.chunks_committed} "
                    f"chunks from epoch {job.base_epoch}) does not "
                    f"reconcile with the target epoch {self.target.epoch}: "
                    f"{ahead} chunks ahead — wrong WAL, wrong job, or "
                    "the target was mutated outside this job"
                )
        else:
            if job.state != "pending":
                raise IngestError(
                    f"job {job.job_id!r} is {job.state!r}; a fresh run "
                    "needs a pending job (use resume)"
                )
            job.base_epoch = self.target.epoch
            ahead = 0
        job.state = "running"
        job.error = None
        self.registry.save(job)
        self._set_state_gauge(job)
        return ahead

    def _commit_chunk(
        self,
        job: IngestJob,
        chunk: List[Record],
        ahead: int,
        span_root: Any,
    ) -> int:
        span = None
        if self.trace is not None:
            span = self.trace.begin(
                "ingest.chunk",
                parent_id=span_root.span_id,
                chunk=job.chunks_committed,
                records=len(chunk),
                already_committed=bool(ahead),
            )
        try:
            if ahead:
                # The pre-crash commit published this chunk (the epoch
                # spine proves it); only the cursor needs advancing.
                ahead -= 1
            else:
                self._commit_with_retry(job, chunk)
            self._step("ingest.chunk_commit")
            job.chunks_committed += 1
            job.records_committed += len(chunk)
            self.registry.save(job)
            self._step("ingest.cursor_save")
            if self._metrics is not None:
                self._records_total.inc(len(chunk))
                self._chunks_total.inc()
            return ahead
        finally:
            if span is not None:
                self.trace.end(span)

    def _commit_with_retry(self, job: IngestJob, chunk: List[Record]) -> None:
        attempt = 0
        while True:
            try:
                self.target.commit(chunk)
                return
            except FaultInjected:
                # A simulated crash, not a transient failure: the
                # "process" dies here, leaving the job file claiming
                # "running" — exactly what resume reconciles.
                raise
            except Exception as error:  # noqa: BLE001 - retry boundary
                attempt += 1
                job.retries += 1
                if self._metrics is not None:
                    self._retries_total.inc()
                if attempt > self.max_retries:
                    job.state = "failed"
                    job.error = (
                        f"chunk {job.chunks_committed} failed after "
                        f"{self.max_retries} retries: {error}"
                    )
                    self.registry.save(job)
                    self._set_state_gauge(job)
                    raise IngestError(
                        f"job {job.job_id!r}: {job.error}"
                    ) from error
                self.sleeper(self.backoff_base * (2 ** (attempt - 1)))

    # -- plumbing -------------------------------------------------------------

    def _step(self, name: str) -> None:
        if self.faults is not None:
            self.faults.step(name)

    def _set_state_gauge(self, job: IngestJob) -> None:
        if self._metrics is not None:
            self._metrics.gauge(
                "ingest_job_state",
                "job state as its index in JOB_STATES",
                labels={"job": job.job_id},
            ).set(JOB_STATES.index(job.state))


def _chunked(
    stream: Iterator[Record], size: int
) -> Iterator[List[Record]]:
    chunk: List[Record] = []
    for record in stream:
        chunk.append(record)
        if len(chunk) >= size:
            yield chunk
            chunk = []
    if chunk:
        yield chunk
