"""Durable per-job ingest state: the resume cursor on disk.

A bulk ingest that dies 80K records in must not start over — the
whole point of chunked commits is that everything up to the last
published chunk is already durable (in the WAL) and already visible
(in the snapshot store).  What a crash *does* lose is the in-memory
cursor: which chunk was last committed.  The :class:`JobRegistry`
keeps that cursor on disk, one small JSON file per job, written with
the same tmp-then-rename discipline as the WAL's segments and the
checkpoint manager's files — a torn write can only ever leave a
``*.tmp`` orphan behind, never a half-readable job file.

The cursor is deliberately allowed to trail reality by **at most one
chunk**: the pipeline commits a chunk to the target first and saves
the cursor second, so a crash between the two leaves a job file one
chunk behind the target's epoch.  Resume reconciles the two by
arithmetic (see :class:`~repro.ingest.pipeline.IngestPipeline`)
instead of trusting either side alone — the epoch spine is
authoritative for *what is committed*, the job file for *where the
stream cursor was*.
"""

from __future__ import annotations

import dataclasses
import json
import os
import re
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.errors import IngestError

#: Legal job states.  pending -> running -> done is the happy path;
#: running -> failed when a chunk exhausts its retries (resumable);
#: paused is an operator-set parking state (also resumable).
JOB_STATES = ("pending", "running", "paused", "failed", "done")

#: States a job may be resumed from.  ``running`` is included because
#: a crashed process leaves its job file saying "running" — that
#: stale claim *is* the crash marker resume exists for.
RESUMABLE_STATES = ("running", "paused", "failed")

_JOB_ID = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


@dataclass
class IngestJob:
    """One ingest job's durable state (what a resume needs to know).

    Attributes:
        job_id: filesystem-safe identifier; names the registry file.
        source: the source specifier (``jsonl:...``, ``synth:...``),
            recorded so ``banks jobs`` can say what was being loaded
            and resume can refuse a mismatched source.
        database: the base-database specifier, same purpose.
        chunk_size: records per committed chunk.  Fixed for the job's
            lifetime — the resume arithmetic (records skipped =
            cursor) depends on chunk boundaries being reproducible.
        state: one of :data:`JOB_STATES`.
        chunks_committed: chunks known (by this file) to be committed.
        records_committed: records covered by those chunks.
        base_epoch: the target's epoch when the job started; the
            epoch spine ``target.epoch - base_epoch`` counts committed
            chunks independently of this file.
        retries: transient chunk failures retried so far (cumulative).
        error: the failure text when ``state == "failed"``.
    """

    job_id: str
    source: str
    database: str
    chunk_size: int = 1000
    state: str = "pending"
    chunks_committed: int = 0
    records_committed: int = 0
    base_epoch: int = 0
    retries: int = 0
    error: Optional[str] = None
    created_at: float = 0.0
    updated_at: float = 0.0

    def __post_init__(self) -> None:
        if not _JOB_ID.match(self.job_id):
            raise IngestError(
                f"job id {self.job_id!r} is not filesystem-safe "
                "(letters, digits, dot, dash, underscore)"
            )
        if self.chunk_size < 1:
            raise IngestError(
                f"chunk size must be >= 1, got {self.chunk_size}"
            )
        if self.state not in JOB_STATES:
            raise IngestError(
                f"unknown job state {self.state!r} "
                f"(choose from {', '.join(JOB_STATES)})"
            )

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "IngestJob":
        fields = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - fields
        if unknown:
            raise IngestError(
                f"job file holds unknown fields {sorted(unknown)}"
            )
        try:
            return cls(**data)
        except TypeError as error:
            raise IngestError(f"job file is incomplete: {error}") from None


class JobRegistry:
    """One JSON file per job under ``path``, written atomically.

    Writes go to ``<job_id>.json.tmp`` first, are fsynced, then
    renamed over ``<job_id>.json`` — the same crash discipline as the
    WAL segments this registry typically lives next to (``<wal>/jobs``
    is the conventional location, so the cursor and the epochs it
    reconciles against share a filesystem).

    Args:
        path: the registry directory (created on first use).
        clock: timestamp source for ``created_at``/``updated_at``
            (injectable for deterministic tests).
    """

    def __init__(self, path: str, clock: Callable[[], float] = time.time):
        self.path = str(path)
        self._clock = clock
        os.makedirs(self.path, exist_ok=True)

    def path_of(self, job_id: str) -> str:
        return os.path.join(self.path, f"{job_id}.json")

    # -- writes ---------------------------------------------------------------

    def create(self, job: IngestJob) -> IngestJob:
        """Register a new job; refuses an id that already exists (a
        resume must go through :meth:`load`, not re-create)."""
        if os.path.exists(self.path_of(job.job_id)):
            raise IngestError(
                f"job {job.job_id!r} already exists in {self.path} "
                "(resume it, or pick a new id)"
            )
        job.created_at = self._clock()
        self.save(job)
        return job

    def save(self, job: IngestJob) -> None:
        """Persist ``job`` atomically (tmp write + fsync + rename)."""
        job.updated_at = self._clock()
        final = self.path_of(job.job_id)
        tmp = final + ".tmp"
        data = json.dumps(job.to_dict(), indent=2, sort_keys=True) + "\n"
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, final)

    # -- reads ----------------------------------------------------------------

    def load(self, job_id: str) -> IngestJob:
        path = self.path_of(job_id)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except FileNotFoundError:
            raise IngestError(
                f"no job {job_id!r} in {self.path}"
            ) from None
        except (OSError, ValueError) as error:
            raise IngestError(
                f"job file {path} is unreadable: {error}"
            ) from None
        return IngestJob.from_dict(data)

    def try_load(self, job_id: str) -> Optional[IngestJob]:
        try:
            return self.load(job_id)
        except IngestError:
            return None

    def jobs(self) -> List[IngestJob]:
        """Every registered job, sorted by id.  ``*.tmp`` orphans from
        a crash mid-save are ignored (the rename never happened, so
        the previous job file — if any — is still the truth)."""
        result = []
        for name in sorted(os.listdir(self.path)):
            if not name.endswith(".json"):
                continue
            result.append(self.load(name[: -len(".json")]))
        return result

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"JobRegistry({self.path!r})"
