"""The ``banks`` command-line interface.

Point it at any database and get keyword search, statistics, the
Figure 5 parameter sweep, or the Web front end — the CLI packaging of
the paper's "can be run on any schema without any programming".

Database specifiers (the ``DB`` argument)::

    demo:bibliography      the DBLP-like generated dataset (default sizes)
    demo:thesis            the IITB-thesis-like dataset
    demo:tpcd              the mini TPC-D dataset
    demo:university        the department-hub example
    sqlite:/path/to/db     any sqlite3 database file
    csv:/path/to/dir       a directory of CSV files (one per table)

Commands::

    banks stats DB                     graph/index statistics
    banks search DB QUERY... [-k N]    ranked connection trees
    banks sweep DB                     the Figure 5 lambda x EdgeLog grid
    banks serve DB [--port P]          the browsing/search Web app

Exit status: 0 on success, 1 on a usage or data error (message on
stderr).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.core.banks import BANKS
from repro.errors import ReproError
from repro.relational.database import Database

_DEMOS = ("bibliography", "thesis", "tpcd", "university")


def load_database(spec: str) -> Database:
    """Resolve a ``DB`` specifier to a loaded database."""
    scheme, _, rest = spec.partition(":")
    if scheme == "demo":
        if rest == "bibliography":
            from repro.datasets import generate_bibliography

            return generate_bibliography()[0]
        if rest == "thesis":
            from repro.datasets import generate_thesis_db

            return generate_thesis_db()[0]
        if rest == "tpcd":
            from repro.datasets import generate_tpcd

            return generate_tpcd()[0]
        if rest == "university":
            from repro.datasets import generate_university

            return generate_university()[0]
        raise ReproError(
            f"unknown demo dataset {rest!r} (choose from {', '.join(_DEMOS)})"
        )
    if scheme == "sqlite":
        from repro.relational.sqlite_adapter import load_sqlite

        return load_sqlite(rest)
    if scheme == "csv":
        from repro.relational.csvio import load_from_csv_dir

        return load_from_csv_dir(rest)
    raise ReproError(
        f"unknown database specifier {spec!r} "
        "(use demo:NAME, sqlite:PATH or csv:DIR)"
    )


def _command_stats(args: argparse.Namespace, out) -> int:
    database = load_database(args.db)
    start = time.perf_counter()
    banks = BANKS(database)
    elapsed = time.perf_counter() - start
    print(f"database     : {database.name}", file=out)
    for table in database.tables():
        print(
            f"  table {table.schema.name:<20} {len(table):>8} rows", file=out
        )
    print(f"graph nodes  : {banks.stats.num_nodes}", file=out)
    print(f"graph edges  : {banks.stats.num_edges}", file=out)
    print(f"index terms  : {len(banks.index)}", file=out)
    print(f"build time   : {elapsed:.2f} s", file=out)
    return 0


def _command_search(args: argparse.Namespace, out) -> int:
    database = load_database(args.db)
    banks = BANKS(database)
    query = " ".join(args.query)
    start = time.perf_counter()
    answers = banks.search(query, max_results=args.max_results)
    elapsed = time.perf_counter() - start
    if not answers:
        print("no answers", file=out)
        return 0
    for answer in answers:
        print(f"#{answer.rank + 1} relevance={answer.relevance:.4f}", file=out)
        print(answer.render(), file=out)
        print(file=out)
    print(
        f"{len(answers)} answer(s) in {1000 * elapsed:.0f} ms", file=out
    )
    return 0


def _command_sweep(args: argparse.Namespace, out) -> int:
    if not args.db.startswith("demo:bibliography"):
        raise ReproError(
            "sweep needs the ground-truth workload: use demo:bibliography"
        )
    from repro.datasets import generate_bibliography
    from repro.eval.sweep import figure5_sweep, format_figure5
    from repro.eval.workload import bibliography_workload

    database, anecdotes = generate_bibliography()
    banks = BANKS(database)
    workload = bibliography_workload(anecdotes)
    points = figure5_sweep(banks, workload)
    print(format_figure5(points), file=out)
    best = min(points, key=lambda p: p.scaled_error)
    print(f"best setting: {best.label()} (error {best.scaled_error:.1f})", file=out)
    return 0


def _command_serve(args: argparse.Namespace, out) -> int:
    from repro.browse.app import BrowseApp

    database = load_database(args.db)
    app = BrowseApp(BANKS(database))
    if args.check:
        status, _html = app.handle("/", "")
        print(f"self-check: GET / -> {status}", file=out)
        return 0 if status.startswith("200") else 1
    from wsgiref.simple_server import make_server

    with make_server(args.host, args.port, app) as server:
        print(
            f"serving {database.name} on http://{args.host}:{args.port}/",
            file=out,
        )
        server.serve_forever()
    return 0  # pragma: no cover - serve_forever does not return


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="banks",
        description="BANKS: keyword searching and browsing in databases",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    stats = commands.add_parser("stats", help="graph and index statistics")
    stats.add_argument("db", help="database specifier (see module docs)")
    stats.set_defaults(run=_command_stats)

    search = commands.add_parser("search", help="keyword search")
    search.add_argument("db")
    search.add_argument("query", nargs="+", help="search keywords")
    search.add_argument(
        "-k", "--max-results", type=int, default=10, dest="max_results"
    )
    search.set_defaults(run=_command_search)

    sweep = commands.add_parser("sweep", help="Figure 5 parameter sweep")
    sweep.add_argument("db")
    sweep.set_defaults(run=_command_sweep)

    serve = commands.add_parser("serve", help="run the Web front end")
    serve.add_argument("db")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8000)
    serve.add_argument(
        "--check",
        action="store_true",
        help="render the home page and exit (no server)",
    )
    serve.set_defaults(run=_command_serve)
    return parser


def main(argv: Optional[List[str]] = None, out=None) -> int:
    """CLI entry point; returns the process exit status."""
    out = out or sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.run(args, out)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
