"""The ``banks`` command-line interface.

Point it at any database and get keyword search, statistics, the
Figure 5 parameter sweep, or the Web front end — the CLI packaging of
the paper's "can be run on any schema without any programming".

Database specifiers (the ``DB`` argument)::

    demo:bibliography      the DBLP-like generated dataset (default sizes)
    demo:thesis            the IITB-thesis-like dataset
    demo:tpcd              the mini TPC-D dataset
    demo:university        the department-hub example
    synth:N[:SEED]         the DBLP-scale synthetic bibliography with N
                           papers (synth:0 = the empty schema, the base
                           an ingest job streams into)
    sqlite:/path/to/db     any sqlite3 database file
    csv:/path/to/dir       a directory of CSV files (one per table)

Commands::

    banks stats DB                     graph/index statistics
    banks search DB QUERY... [-k N]    ranked connection trees
    banks trace DB QUERY... [-k N]     one traced query: the span tree
                                       across every serving layer plus
                                       the kernel's SearchProfile
    banks sweep DB                     the Figure 5 lambda x EdgeLog grid
    banks serve DB [--port P]          the browsing/search Web app
    banks serve DB --http              the versioned JSON API with SSE
                                       streaming (/v1/query,
                                       /v1/query/stream, /v1/health)
    banks client URL QUERY...          query a --http server; --stream
                                       prints each answer as the remote
                                       kernel finds it
    banks recover DB --wal PATH        replay a durable epoch log onto DB
                                       (--checkpoints DIR starts from the
                                       newest checkpoint, tail-only replay)
    banks checkpoint DB --wal PATH     persist a checkpoint of the WAL's
                                       recovered state and re-base the log
    banks ingest DB SOURCE             bulk-load a record stream into DB
                                       through the chunked, resumable
                                       pipeline (--wal makes the load
                                       durable; --resume picks a killed
                                       or failed job back up from its
                                       registry cursor)
    banks jobs --jobs-dir DIR          list ingest jobs and their states
    banks bench-serve DB               serving-engine throughput benchmark
    banks bench-shard DB               sharded scatter-gather benchmark
    banks bench-mutate DB              write-path benchmark (delta vs deep)
    banks bench-wal DB                 durable-log benchmark (WAL overhead,
                                       recovery + replica parity)
    banks bench-replicaset DB          replica-set benchmark (read QPS
                                       scaling, parity, read-your-writes,
                                       lag exclusion)
    banks bench-net DB                 HTTP-tier benchmark (wire parity,
                                       time-to-first-answer over SSE,
                                       end-to-end QPS)
    banks bench-kernel DB              CSR search-kernel benchmark (median
                                       latency vs the reference kernel,
                                       strict top-k parity)
    banks bench-ops DB                 checkpointing + rebalancing benchmark
                                       (recovery speedup over full replay,
                                       live-drain search parity)
    banks bench-ingest synth:N         ingest benchmark (sustained
                                       records/sec, kill + resume, strict
                                       top-k parity vs an uninterrupted
                                       load)

``banks serve`` stands the deployment up through the cluster layer
(:mod:`repro.cluster`): the flags translate into one declarative
:class:`~repro.cluster.spec.ClusterSpec`, every conflicting
combination fails through its single validation path, and the
:class:`~repro.cluster.api.Cluster` facade owns composition and
lifecycle.  Searches dispatch through the concurrent serving engine
(:mod:`repro.serve`): a worker pool with admission control,
single-flight deduplication and a result cache, with metrics exposed
at ``/metrics``.  Tuning knobs:

    --workers N        worker threads executing searches (default 4)
    --queue-bound N    admitted-but-not-running requests before load
                       shedding kicks in (default 64; 0 = unbounded)
    --deadline SECS    fail requests that wait longer than this in the
                       queue (default: no deadline)
    --inline           call the facade inline (the pre-engine behaviour)
    --live             serve an IncrementalBANKS facade so ``/mutate``
                       can apply inserts/deletes/updates; snapshots
                       publish through the delta-log write path
                       (:mod:`repro.store`)
    --copy-mode M      snapshot capture mode for mutations: auto
                       (default), delta (O(delta) copy-on-write fork +
                       delta log) or deep (the O(data) deepcopy path)
    --shards N         partition the data graph into N shards and serve
                       searches through the scatter-gather ShardRouter
                       (:mod:`repro.shard`); shard stats at ``/shards``;
                       ``/mutate`` routes deltas to the owning shard
    --shard-backend B  thread (default) or process (forked workers, one
                       per shard — CPU scaling) or auto
    --dispatch P       gather (exact scatter-gather, default) or route
                       (whole queries to one worker each — the
                       throughput policy; see repro.shard.router)
    --wal PATH         with --live: append every published mutation
                       epoch to a durable segmented log at PATH
                       (repro.store.wal); on startup, any epochs
                       already there are replayed first, so restarting
                       after a crash recovers the pre-crash state
    --wal-fsync M      WAL durability: always (default; fsync each
                       epoch), rotate (fsync on segment close), never
    --checkpoint-every N  with --live --wal (or --replicas): persist a
                       facade checkpoint every N epochs
                       (repro.ops.checkpoint), so restart recovery and
                       replica heal replay only the WAL tail
    --checkpoint-path  checkpoint directory (default:
                       ``<wal>/checkpoints``)
    --follow           with --wal: serve a *read-only follower* that
                       tails another process's WAL and stays caught up
                       by epoch (replica_lag_epochs on /metrics);
                       /mutate is refused — the primary owns the state
    --replicas N       run a replica set in one process: a WAL-writing
                       primary plus N WAL-following replicas behind a
                       load-balancing front end (status at /replicas;
                       combine with --shards N for replicated shard
                       routers)
    --balance P        replica balancing: round_robin (default) or
                       least_inflight
    --max-lag N        staleness bound in epochs before a replica is
                       excluded from balancing (default 8)
    --replica-backend  thread, process (forked workers — read QPS
                       scales with cores) or auto
    --trace-sample S   trace sampling: always (default), off, slow
                       (keep only slow queries), or a rate in (0, 1]
                       (0.1 = one trace in ten); sampled traces are
                       browsable at /trace and /trace/<id>
    --slow-query-ms T  slow-query threshold in milliseconds (default
                       500); slow queries are always kept, logged, and
                       served as JSON at /debug/slow
    --trace-buffer N   traces retained in the ring buffer (default 256)
    --http             serve the versioned JSON/SSE API (repro.net)
                       instead of the browse app
    --token T          with --http: accepted bearer token (repeatable;
                       none = open server)
    --rate-limit QPS   with --http: per-client token-bucket admission
                       in front of the engine's own load shedding
    --spec FILE        load the whole deployment from a ClusterSpec
                       JSON file (ClusterSpec.to_json) instead of flags
    --remote-replica U balance reads over a remote ``--http`` replica
                       at URL U (repeatable; the front end reads each
                       replica's applied epoch from /v1/health)
    --remote-token T   bearer token presented to --remote-replica
                       servers

A primary/follower pair on one database::

    banks serve demo:bibliography --live --wal /tmp/banks-wal
    banks serve demo:bibliography --follow --wal /tmp/banks-wal --port 8001

A three-replica set in one process::

    banks serve demo:bibliography --replicas 3

Two networked followers behind one replicated front end::

    banks serve demo:bibliography --follow --wal /wal --http --port 8001
    banks serve demo:bibliography --follow --wal /wal --http --port 8002
    banks serve demo:bibliography --wal /wal \\
        --remote-replica http://127.0.0.1:8001 \\
        --remote-replica http://127.0.0.1:8002

``banks recover DB --wal PATH`` rebuilds the pre-crash facade by
replaying the WAL onto the base database DB (the runbook lives in
``docs/OPERATIONS.md``); ``--checkpoints DIR`` starts from the newest
valid checkpoint instead of the base snapshot (O(tail) recovery), and
``--query`` options search the recovered facade as a spot check.

``banks checkpoint DB --wal PATH`` recovers the WAL's current state
(checkpoint-aware) and persists it as a new checkpoint, re-basing the
log: once the manifest records the checkpoint epoch, WAL retention may
prune segments below it and recovery starts from the checkpoint.

``banks bench-ops`` measures checkpointed recovery against full-history
replay on a long mutation log (the gated claim: >= 3x faster at 500
epochs) and proves a live shard drain keeps exact top-k parity while
the ownership sets remain a disjoint cover.

``banks bench-mutate`` measures write throughput of the delta-log
write path against the deep-copy baseline on the same mutation
workload, verifies both end states match each other and a full
rebuild, and reports epoch publish latency.

``banks bench-serve`` measures the engine against serialized
single-thread dispatch on a Zipf-skewed workload; ``--concurrency``,
``--requests``, ``--workers`` and ``--queue-bound`` shape the load.

``banks bench-shard`` measures ``--shards N`` scatter-gather against
``--shards 1`` dispatch at a given client concurrency and verifies the
gathered global top-k matches single-engine search; it needs a demo
dataset with a benchmark query set (bibliography, tpcd) or explicit
``--query`` options.

``banks bench-wal`` measures the durable write path (delta snapshots +
WAL append + fsync) against the in-memory delta path on the same
mutation workload, then proves the log back: recovery from the base
snapshot must reproduce the live facade's top-5 answers exactly, and a
replica follower in a second process must catch up to zero lag with
identical answers.

``banks bench-replicaset`` measures the replica-set front end: N
process-backed replicas must answer a concurrent read workload faster
than one (QPS scales with cores), every replica must reproduce the
primary's top-k exactly, a read issued with read-your-writes
consistency must observe the preceding mutation, and a replica
suspended past the staleness bound must be routed around (then
re-admitted once caught up).

Exit status: 0 on success, 1 on a usage or data error (message on
stderr).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.core.banks import BANKS
from repro.errors import ReproError
from repro.relational.database import Database

_DEMOS = ("bibliography", "thesis", "tpcd", "university")


def load_database(spec: str) -> Database:
    """Resolve a ``DB`` specifier to a loaded database."""
    scheme, _, rest = spec.partition(":")
    if scheme == "demo":
        if rest == "bibliography":
            from repro.datasets import generate_bibliography

            return generate_bibliography()[0]
        if rest == "thesis":
            from repro.datasets import generate_thesis_db

            return generate_thesis_db()[0]
        if rest == "tpcd":
            from repro.datasets import generate_tpcd

            return generate_tpcd()[0]
        if rest == "university":
            from repro.datasets import generate_university

            return generate_university()[0]
        raise ReproError(
            f"unknown demo dataset {rest!r} (choose from {', '.join(_DEMOS)})"
        )
    if scheme == "synth":
        from repro.datasets import synth_bibliography

        papers, _, seed_text = rest.partition(":")
        try:
            n_papers = int(papers)
            seed = int(seed_text) if seed_text else 7
        except ValueError:
            raise ReproError(
                f"bad synthetic specifier {spec!r} (use synth:N[:SEED])"
            ) from None
        return synth_bibliography(n_papers, seed=seed)[0]
    if scheme == "sqlite":
        from repro.relational.sqlite_adapter import load_sqlite

        return load_sqlite(rest)
    if scheme == "csv":
        from repro.relational.csvio import load_from_csv_dir

        return load_from_csv_dir(rest)
    raise ReproError(
        f"unknown database specifier {spec!r} "
        "(use demo:NAME, synth:N, sqlite:PATH or csv:DIR)"
    )


def _command_stats(args: argparse.Namespace, out) -> int:
    database = load_database(args.db)
    start = time.perf_counter()
    banks = BANKS(database)
    elapsed = time.perf_counter() - start
    print(f"database     : {database.name}", file=out)
    for table in database.tables():
        print(
            f"  table {table.schema.name:<20} {len(table):>8} rows", file=out
        )
    print(f"graph nodes  : {banks.stats.num_nodes}", file=out)
    print(f"graph edges  : {banks.stats.num_edges}", file=out)
    print(f"index terms  : {len(banks.index)}", file=out)
    print(f"build time   : {elapsed:.2f} s", file=out)
    return 0


def _command_search(args: argparse.Namespace, out) -> int:
    database = load_database(args.db)
    banks = BANKS(database)
    query = " ".join(args.query)
    start = time.perf_counter()
    answers = banks.search(query, max_results=args.max_results)
    elapsed = time.perf_counter() - start
    if not answers:
        print("no answers", file=out)
        return 0
    for answer in answers:
        print(f"#{answer.rank + 1} relevance={answer.relevance:.4f}", file=out)
        print(answer.render(), file=out)
        print(file=out)
    print(
        f"{len(answers)} answer(s) in {1000 * elapsed:.0f} ms", file=out
    )
    return 0


def _command_trace(args: argparse.Namespace, out) -> int:
    """Run one query with tracing forced on and print the span tree.

    The deployment shape mirrors ``banks serve``: bare engine by
    default, ``--shards`` / ``--replicas`` stand up the same router /
    replica-set topologies — so the trace shows exactly the layers a
    server with those flags would cross.
    """
    from repro.cluster import Cluster, ClusterSpec, QueryRequest

    if args.shards and args.replicas:
        topology = "sharded_replicated"
    elif args.shards:
        topology = "sharded"
    elif args.replicas:
        topology = "replicated"
    else:
        topology = "single"
    spec = ClusterSpec(
        topology=topology,
        shards=args.shards,
        replicas=args.replicas,
        shard_backend="thread",
        replica_backend="thread",
        trace_sample="always",
        slow_query_ms=args.slow_ms,
    )
    database = load_database(args.db)
    query = " ".join(args.query)
    with Cluster(spec, database=database) as cluster:
        result = cluster.query(QueryRequest(query, k=args.max_results))
    record = result.trace
    if record is None:  # pragma: no cover - defensive; sample="always"
        print("no trace recorded", file=out)
        return 1
    print(record.render(), file=out)
    print(
        f"{len(result.answers)} answer(s) via {result.served_by} "
        f"({len(record.spans)} spans)",
        file=out,
    )
    return 0


def _command_sweep(args: argparse.Namespace, out) -> int:
    if not args.db.startswith("demo:bibliography"):
        raise ReproError(
            "sweep needs the ground-truth workload: use demo:bibliography"
        )
    from repro.datasets import generate_bibliography
    from repro.eval.sweep import figure5_sweep, format_figure5
    from repro.eval.workload import bibliography_workload

    database, anecdotes = generate_bibliography()
    banks = BANKS(database)
    workload = bibliography_workload(anecdotes)
    points = figure5_sweep(banks, workload)
    print(format_figure5(points), file=out)
    best = min(points, key=lambda p: p.scaled_error)
    print(f"best setting: {best.label()} (error {best.scaled_error:.1f})", file=out)
    return 0


def _serve_mode(cluster) -> str:
    """One human line describing the deployment, from the spec."""
    spec = cluster.spec
    if spec.topology == "sharded":
        return (
            f"{spec.shards} shards, {cluster.backend.backend} backend, "
            f"{spec.dispatch} dispatch"
        )
    if spec.replicated:
        mode = (
            f"{spec.replicas}-replica set "
            f"({cluster.backend.backend} backend, {spec.balance})"
        )
        if spec.topology == "sharded_replicated":
            mode = f"{spec.shards} shards per replica, " + mode
        return mode
    if spec.follow:
        return f"read-only follower tailing {spec.wal_path}"
    if not spec.engine:
        return "inline facade"
    mode = f"{spec.workers} workers, queue bound {spec.queue_bound}"
    if spec.wal_path:
        mode += f", WAL at {spec.wal_path} ({spec.wal_fsync} fsync)"
    return mode


def _serve_http(args: argparse.Namespace, cluster, database, out) -> int:
    """``banks serve --http``: the v1 JSON/SSE API instead of the
    browse app.  ``--check`` binds an ephemeral port, probes
    ``/v1/health`` and ``/metrics`` through a real socket, and exits."""
    from repro.net import BanksClient, HttpServer, NetConfig

    tokens = tuple(getattr(args, "tokens", None) or ())
    config = NetConfig(
        host=args.host,
        port=0 if args.check else args.port,
        tokens=tokens,
        rate=float(getattr(args, "rate_limit", 0.0) or 0.0),
    )
    server = HttpServer(cluster, config)
    if args.check:
        server.start_background()
        try:
            client = BanksClient(
                server.url, token=tokens[0] if tokens else None
            )
            health = client.health()
            print(
                f"self-check: GET /v1/health -> {health['status']} "
                f"(topology {health['topology']}, epoch {health['epoch']}, "
                f"auth {health['auth']})",
                file=out,
            )
            lines = len(client.metrics().splitlines())
            print(f"self-check: GET /metrics -> {lines} lines", file=out)
        finally:
            server.stop()
        return 0
    cluster.start()
    admission = "token auth" if tokens else "open"
    if config.rate:
        admission += f", {config.rate:g} req/s per client"
    print(
        f"serving {database.name} v1 HTTP API on "
        f"http://{args.host}:{args.port}/v1/query "
        f"({_serve_mode(cluster)}; {admission})",
        file=out,
    )
    server.serve_forever()
    return 0


def _command_serve(args: argparse.Namespace, out) -> int:
    from repro.browse.app import BrowseApp
    from repro.cluster import Cluster, ClusterSpec

    # One validation path: every conflicting flag combination fails
    # here, with the same message a programmatic caller would get.
    if getattr(args, "spec", None):
        spec = ClusterSpec.from_json_file(args.spec)
        db_spec = args.db or spec.db
        if not db_spec:
            raise ReproError(
                f"spec file {args.spec!r} names no database; give the DB "
                "argument or put a 'db' specifier in the spec"
            )
    else:
        if not args.db:
            raise ReproError(
                "the DB argument is required without --spec FILE"
            )
        db_spec = args.db
        spec = ClusterSpec.from_serve_args(args)
    database = load_database(db_spec)
    cluster = Cluster(spec, database=database)
    try:
        if cluster.recovered_epochs:
            print(
                f"recovered {cluster.recovered_epochs} epoch(s) from "
                f"{spec.wal_path}",
                file=out,
            )
        if cluster.follower is not None:
            print(
                f"replica caught up: {cluster.follower.epochs_applied} "
                f"epoch(s) applied, lag {cluster.follower.lag_epochs()}",
                file=out,
            )
        if getattr(args, "http", False):
            return _serve_http(args, cluster, database, out)
        app = BrowseApp(cluster=cluster)
        if args.check:
            status, _html = app.handle("/", "")
            print(f"self-check: GET / -> {status}", file=out)
            if cluster.backend is not None:
                probes = ["/metrics", "/trace", "/debug/slow"]
                if spec.topology == "sharded":
                    probes.append("/shards")
                if spec.replicated:
                    probes.append("/replicas")
                if spec.live or spec.shards or spec.replicated:
                    probes.append("/mutate")
                for probe in probes:
                    probe_status, _body = app.handle(probe, "")
                    print(
                        f"self-check: GET {probe} -> {probe_status}", file=out
                    )
                    if not probe_status.startswith("200"):
                        return 1
            return 0 if status.startswith("200") else 1
        from socketserver import ThreadingMixIn
        from wsgiref.simple_server import WSGIServer, make_server

        class ThreadingWSGIServer(ThreadingMixIn, WSGIServer):
            """One thread per HTTP request, so concurrent clients
            actually reach the engine's admission queue concurrently
            (the stock WSGIServer serialises at the socket)."""

            daemon_threads = True

        with make_server(
            args.host, args.port, app, server_class=ThreadingWSGIServer
        ) as server:
            print(
                f"serving {database.name} on http://{args.host}:{args.port}/ "
                f"({_serve_mode(cluster)})",
                file=out,
            )
            cluster.start()
            try:
                server.serve_forever()
            except KeyboardInterrupt:  # pragma: no cover - interactive
                print("shutting down", file=out)
        return 0
    finally:
        cluster.close()


def _command_recover(args: argparse.Namespace, out) -> int:
    from repro.core.incremental import IncrementalBANKS

    database = load_database(args.db)
    start = time.perf_counter()
    facade = IncrementalBANKS.recover(
        database, args.wal, checkpoints=args.checkpoints
    )
    elapsed = time.perf_counter() - start
    facade._refresh_stats()
    print(f"base database : {database.name} ({args.db})", file=out)
    print(f"wal           : {args.wal}", file=out)
    if args.checkpoints:
        from repro.store.wal import checkpoint_floor

        print(
            f"checkpoints   : {args.checkpoints} "
            f"(manifest epoch {checkpoint_floor(args.checkpoints)})",
            file=out,
        )
    print(f"recovered to  : epoch {facade.applied_epoch}", file=out)
    print(
        f"graph         : {facade.stats.num_nodes} nodes, "
        f"{facade.stats.num_edges} edges",
        file=out,
    )
    print(f"replay time   : {elapsed:.2f} s", file=out)
    for query in args.queries or ():
        answers = facade.search(query, max_results=args.max_results)
        if answers:
            best = answers[0]
            print(
                f"query {query!r}: {len(answers)} answer(s), best "
                f"{facade.node_label(best.tree.root)} "
                f"(relevance {best.relevance:.4f})",
                file=out,
            )
        else:
            print(f"query {query!r}: no answers", file=out)
    return 0


def _command_checkpoint(args: argparse.Namespace, out) -> int:
    import os

    from repro.core.incremental import IncrementalBANKS
    from repro.ops.checkpoint import CheckpointManager

    database = load_database(args.db)
    checkpoint_dir = args.checkpoints or os.path.join(
        args.wal, "checkpoints"
    )
    manager = CheckpointManager(checkpoint_dir, keep=args.keep)
    start = time.perf_counter()
    facade = IncrementalBANKS.recover(
        database, args.wal, checkpoints=manager
    )
    recovered = time.perf_counter() - start
    if not facade.applied_epoch:
        print(f"wal {args.wal} holds no epochs; nothing to checkpoint",
              file=out)
        return 0
    previous = manager.manifest_epoch()
    if previous == facade.applied_epoch:
        print(
            f"checkpoint at epoch {previous} is already current "
            f"({manager.path})",
            file=out,
        )
        return 0
    record = manager.checkpoint(facade, epoch=facade.applied_epoch)
    print(f"wal           : {args.wal}", file=out)
    print(
        f"recovered to  : epoch {facade.applied_epoch} "
        f"({recovered:.2f} s)",
        file=out,
    )
    print(
        f"checkpoint    : {record.path} ({record.size_bytes} bytes, "
        f"{record.seconds * 1000.0:.1f} ms)",
        file=out,
    )
    print(
        f"log re-based  : retention may prune below epoch "
        f"{record.epoch}; kept epochs {manager.checkpoint_epochs()}",
        file=out,
    )
    return 0


def _command_ingest(args: argparse.Namespace, out) -> int:
    import os

    from repro.core.incremental import IncrementalBANKS
    from repro.ingest import (
        IngestJob,
        IngestPipeline,
        JobRegistry,
        StoreTarget,
        open_source,
    )
    from repro.serve.snapshot import SnapshotStore

    if args.resume and not args.wal:
        raise ReproError(
            "--resume rebuilds the pre-crash state from the WAL the "
            "original run wrote: pass the same --wal"
        )
    source = open_source(args.source)
    jobs_dir = args.jobs_dir or (
        os.path.join(args.wal, "jobs") if args.wal else "ingest-jobs"
    )
    registry = JobRegistry(jobs_dir)
    if args.resume:
        job = registry.load(args.job_id)
        if job.source != source.name:
            raise ReproError(
                f"job {job.job_id!r} was started over {job.source!r}, "
                f"not {source.name!r}; resume must replay the same stream"
            )
        facade = IncrementalBANKS.recover(
            lambda: load_database(args.db), args.wal, freeze=False
        )
    else:
        job = registry.create(
            IngestJob(
                args.job_id, source.name, args.db, chunk_size=args.chunk
            )
        )
        facade = IncrementalBANKS(load_database(args.db), freeze=False)
    store = SnapshotStore(facade, copy_mode="delta", wal=args.wal)
    pipeline = IngestPipeline(registry, StoreTarget(store))
    start = time.perf_counter()
    job = pipeline.run(job, source, resume=args.resume)
    elapsed = time.perf_counter() - start
    current = store.current().facade
    current._refresh_stats()
    print(f"job           : {job.job_id} ({job.state})", file=out)
    print(f"source        : {job.source}", file=out)
    print(
        f"committed     : {job.records_committed} records in "
        f"{job.chunks_committed} chunk(s) of {job.chunk_size}",
        file=out,
    )
    print(
        f"this run      : {elapsed:.2f} s "
        f"({job.records_committed / max(elapsed, 1e-9):.0f} records/s "
        "cumulative)",
        file=out,
    )
    print(f"store epoch   : {store.epoch}", file=out)
    print(
        f"graph         : {current.stats.num_nodes} nodes, "
        f"{current.stats.num_edges} edges",
        file=out,
    )
    if args.wal:
        print(f"wal           : {args.wal}", file=out)
    print(f"job registry  : {jobs_dir}", file=out)
    return 0


def _command_jobs(args: argparse.Namespace, out) -> int:
    from repro.ingest import JobRegistry

    registry = JobRegistry(args.jobs_dir)
    jobs = registry.jobs()
    if not jobs:
        print(f"no jobs in {registry.path}", file=out)
        return 0
    for job in jobs:
        line = (
            f"{job.job_id:<24} {job.state:<8} "
            f"{job.records_committed:>10} records "
            f"{job.chunks_committed:>7} chunks  "
            f"base_epoch={job.base_epoch}"
        )
        if job.error:
            line += f"  error: {job.error}"
        print(line, file=out)
    return 0


def _command_bench_ingest(args: argparse.Namespace, out) -> int:
    from repro.ingest import run_ingest_benchmark

    scheme, _, rest = args.db.partition(":")
    if scheme != "synth" or not rest:
        raise ReproError(
            "bench-ingest generates its own stream: use synth:N[:SEED]"
        )
    papers, _, seed_text = rest.partition(":")
    try:
        n_papers = int(papers)
        seed = int(seed_text) if seed_text else 7
    except ValueError:
        raise ReproError(
            f"bad synthetic specifier {args.db!r} (use synth:N[:SEED])"
        ) from None
    report = run_ingest_benchmark(
        n_papers=n_papers,
        seed=seed,
        chunk_size=args.chunk,
        kill_step=args.kill_step,
        kill_fraction=args.kill_fraction,
    )
    print(report.render(), file=out)
    if not report.parity_ok:
        raise ReproError(
            "resumed ingest did not reproduce the uninterrupted top-k"
        )
    return 0


def _command_bench_wal(args: argparse.Namespace, out) -> int:
    from repro.datasets import DEMO_QUERY_SETS
    from repro.store.bench import run_wal_benchmark

    database = load_database(args.db)
    queries = args.queries or DEMO_QUERY_SETS.get(database.name)
    if not queries:
        raise ReproError(
            f"no benchmark query set for database {database.name!r}; "
            "pass one or more --query options"
        )
    report = run_wal_benchmark(
        database,
        dataset=args.db,
        mutations=args.mutations,
        batch_size=args.batch_size,
        fsync=args.fsync,
        queries=queries,
    )
    print(report.render(), file=out)
    return 0 if report.ok else 1


def _command_bench_replicaset(args: argparse.Namespace, out) -> int:
    from repro.cluster.bench import run_replicaset_benchmark
    from repro.datasets import DEMO_QUERY_SETS

    database = load_database(args.db)
    queries = args.queries or DEMO_QUERY_SETS.get(database.name)
    if not queries:
        raise ReproError(
            f"no benchmark query set for database {database.name!r}; "
            "pass one or more --query options"
        )
    report = run_replicaset_benchmark(
        database,
        queries,
        dataset=args.db,
        requests=args.requests,
        concurrency=args.concurrency,
        replicas=args.replicas,
        balance=args.balance,
        replica_backend=args.replica_backend,
        k=args.max_results,
    )
    print(report.render(), file=out)
    return 0 if report.ok else 1


def _command_bench_shard(args: argparse.Namespace, out) -> int:
    from repro.datasets import DEMO_QUERY_SETS
    from repro.shard.bench import run_shard_benchmark

    database = load_database(args.db)
    queries = args.queries or DEMO_QUERY_SETS.get(database.name)
    if not queries:
        raise ReproError(
            f"no benchmark query set for database {database.name!r}; "
            "pass one or more --query options"
        )
    report = run_shard_benchmark(
        database,
        queries,
        dataset=args.db,
        requests=args.requests,
        concurrency=args.concurrency,
        shards=args.shards,
        backend=args.backend,
        k=args.max_results,
        strategy=args.strategy,
    )
    print(report.render(), file=out)
    return 0 if report.parity_ok else 1


def _command_bench_mutate(args: argparse.Namespace, out) -> int:
    from repro.store.bench import run_mutation_benchmark

    database = load_database(args.db)
    report = run_mutation_benchmark(
        database,
        dataset=args.db,
        mutations=args.mutations,
        batch_size=args.batch_size,
    )
    print(report.render(), file=out)
    return 0 if report.equivalence_ok else 1


def _command_bench_serve(args: argparse.Namespace, out) -> int:
    from repro.serve.bench import run_serving_benchmark

    database = load_database(args.db)
    report = run_serving_benchmark(
        database,
        requests=args.requests,
        concurrency=args.concurrency,
        workers=args.workers,
        queue_bound=args.queue_bound,
        max_results=args.max_results,
    )
    print(report.render(), file=out)
    return 0 if report.results_match else 1


def _command_client(args: argparse.Namespace, out) -> int:
    from repro.net import BanksClient

    client = BanksClient(args.url, token=args.token)
    query = " ".join(args.query)
    if args.stream:
        started = time.perf_counter()
        count = 0
        for event, data in client.query_stream(
            query,
            k=args.max_results,
            offset=args.offset,
            consistency=args.consistency,
            staleness_bound=args.staleness_bound,
            trace_id=args.trace_id,
        ):
            elapsed_ms = 1000 * (time.perf_counter() - started)
            if event == "answer":
                count += 1
                table, row = data["root"]
                print(
                    f"[{elapsed_ms:7.1f} ms] #{data['rank'] + 1} "
                    f"{table}:{row}  relevance {data['relevance']:.6f}",
                    file=out,
                )
            elif event == "error":
                print(f"error: {data['error']}", file=sys.stderr)
                return 1
            else:
                print(
                    f"[{elapsed_ms:7.1f} ms] done: {count} of "
                    f"{data['total']} answers via {data['served_by']} "
                    f"(epoch {data['epoch']}, "
                    f"server {data['latency_ms']:.1f} ms)",
                    file=out,
                )
        return 0
    document = client.query(
        query,
        k=args.max_results,
        offset=args.offset,
        consistency=args.consistency,
        staleness_bound=args.staleness_bound,
        trace_id=args.trace_id,
    )
    for answer in document["answers"]:
        table, row = answer["root"]
        print(
            f"#{answer['rank'] + 1} {table}:{row}  "
            f"relevance {answer['relevance']:.6f}",
            file=out,
        )
    print(
        f"{len(document['answers'])} of {document['total']} answers via "
        f"{document['served_by']} (epoch {document['epoch']}, "
        f"{document['latency_ms']:.1f} ms)",
        file=out,
    )
    return 0


def _command_bench_net(args: argparse.Namespace, out) -> int:
    from repro.datasets import DEMO_QUERY_SETS
    from repro.net.bench import run_net_benchmark

    database = load_database(args.db)
    queries = args.queries or DEMO_QUERY_SETS.get(database.name)
    if not queries:
        raise ReproError(
            f"no benchmark query set for database {database.name!r}; "
            "pass one or more --query options"
        )
    report = run_net_benchmark(
        database,
        queries,
        dataset=args.db,
        k=args.max_results,
        requests=args.requests,
    )
    print(report.render(), file=out)
    return 0 if report.ok else 1


def _command_bench_kernel(args: argparse.Namespace, out) -> int:
    from repro.core.kernelbench import run_kernel_benchmark
    from repro.datasets import DEMO_QUERY_SETS

    database = load_database(args.db)
    queries = args.queries or DEMO_QUERY_SETS.get(database.name)
    if not queries:
        raise ReproError(
            f"no benchmark query set for database {database.name!r}; "
            "pass one or more --query options"
        )
    report = run_kernel_benchmark(
        database,
        queries,
        dataset=args.db,
        k=args.max_results,
        repeats=args.repeats,
    )
    print(report.render(), file=out)
    return 0 if report.parity == 1.0 else 1


def _command_bench_ops(args: argparse.Namespace, out) -> int:
    from repro.ops.bench import run_ops_benchmark

    database = load_database(args.db)
    # Default to the store benchmark's probe battery (strict-parity
    # safe through a drain at the default shard count) rather than the
    # demo query set, whose deep ranks straddle per-shard top-k
    # boundaries.
    kwargs = {"queries": tuple(args.queries)} if args.queries else {}
    report = run_ops_benchmark(
        database,
        dataset=args.db,
        epochs=args.epochs,
        checkpoint_every=args.checkpoint_every,
        shards=args.shards,
        **kwargs,
    )
    print(report.render(), file=out)
    return 0 if report.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="banks",
        description="BANKS: keyword searching and browsing in databases",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    stats = commands.add_parser("stats", help="graph and index statistics")
    stats.add_argument("db", help="database specifier (see module docs)")
    stats.set_defaults(run=_command_stats)

    search = commands.add_parser("search", help="keyword search")
    search.add_argument("db")
    search.add_argument("query", nargs="+", help="search keywords")
    search.add_argument(
        "-k", "--max-results", type=int, default=10, dest="max_results"
    )
    search.set_defaults(run=_command_search)

    trace = commands.add_parser(
        "trace",
        help="run one traced query and print its span tree + profile",
    )
    trace.add_argument("db")
    trace.add_argument("query", nargs="+", help="search keywords")
    trace.add_argument(
        "-k", "--max-results", type=int, default=10, dest="max_results"
    )
    trace.add_argument(
        "--shards",
        type=int,
        default=0,
        help="trace through a shard router (0 = unsharded)",
    )
    trace.add_argument(
        "--replicas",
        type=int,
        default=0,
        help="trace through a replica set (0 = unreplicated)",
    )
    trace.add_argument(
        "--slow-ms",
        type=float,
        default=500.0,
        dest="slow_ms",
        help="slow-query threshold for the SLOW marker",
    )
    trace.set_defaults(run=_command_trace)

    sweep = commands.add_parser("sweep", help="Figure 5 parameter sweep")
    sweep.add_argument("db")
    sweep.set_defaults(run=_command_sweep)

    serve = commands.add_parser("serve", help="run the Web front end")
    serve.add_argument(
        "db", nargs="?", default=None, help="database specifier (optional "
        "with --spec FILE naming one)"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8000)
    serve.add_argument(
        "--check",
        action="store_true",
        help="render the home page and exit (no server); with --http, "
        "probe /v1/health over a real socket and exit",
    )
    serve.add_argument(
        "--http",
        action="store_true",
        help="serve the versioned JSON/SSE API (/v1/query, "
        "/v1/query/stream, /v1/health, /metrics) instead of the "
        "browse app",
    )
    serve.add_argument(
        "--token",
        action="append",
        dest="tokens",
        metavar="TOKEN",
        help="with --http: accepted bearer token (repeatable; none = "
        "open server)",
    )
    serve.add_argument(
        "--rate-limit",
        type=float,
        default=0.0,
        dest="rate_limit",
        metavar="QPS",
        help="with --http: per-client sustained requests/second "
        "(0 = unlimited); engine admission control still applies",
    )
    serve.add_argument(
        "--spec",
        default=None,
        metavar="FILE",
        help="load the whole deployment from a ClusterSpec JSON file "
        "(written by ClusterSpec.to_json) instead of flags",
    )
    serve.add_argument(
        "--remote-replica",
        action="append",
        dest="remote_replicas",
        metavar="URL",
        help="balance reads over this remote 'banks serve --http' "
        "replica (repeatable; conflicts with --replicas)",
    )
    serve.add_argument(
        "--remote-token",
        default=None,
        dest="remote_token",
        metavar="TOKEN",
        help="bearer token the front end presents to --remote-replica "
        "servers",
    )
    serve.add_argument(
        "--workers", type=int, default=4, help="engine worker threads"
    )
    serve.add_argument(
        "--queue-bound",
        type=int,
        default=64,
        dest="queue_bound",
        help="request queue bound before shedding (0 = unbounded)",
    )
    serve.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="per-request queueing deadline in seconds",
    )
    serve.add_argument(
        "--inline",
        action="store_true",
        help="dispatch searches inline instead of through the engine",
    )
    serve.add_argument(
        "--live",
        action="store_true",
        help="serve a mutable facade: /mutate applies inserts, deletes "
        "and updates through the snapshot store",
    )
    serve.add_argument(
        "--copy-mode",
        choices=("auto", "delta", "deep"),
        default="auto",
        dest="copy_mode",
        help="snapshot capture mode for mutations (delta = O(delta) "
        "copy-on-write fork + delta log; deep = O(data) deepcopy)",
    )
    serve.add_argument(
        "--shards",
        type=int,
        default=0,
        help="partition the data graph and serve through the shard "
        "router (0 = unsharded)",
    )
    serve.add_argument(
        "--shard-backend",
        choices=("thread", "process", "auto"),
        default="thread",
        dest="shard_backend",
        help="shard worker backend (process = one forked worker per "
        "shard; needs fork)",
    )
    serve.add_argument(
        "--dispatch",
        choices=("gather", "route"),
        default="gather",
        help="shard dispatch policy: exact scatter-gather, or whole "
        "queries routed to one worker each (throughput)",
    )
    serve.add_argument(
        "--wal",
        default=None,
        metavar="PATH",
        help="with --live: durable epoch-log directory (recovers any "
        "epochs already there on startup); with --replica: the "
        "primary's log to tail",
    )
    serve.add_argument(
        "--wal-fsync",
        choices=("always", "rotate", "never"),
        default="always",
        dest="wal_fsync",
        help="WAL durability policy (always = fsync each epoch)",
    )
    serve.add_argument(
        "--checkpoint-every",
        type=int,
        default=0,
        dest="checkpoint_every",
        metavar="N",
        help="with --live --wal (or --replicas): persist a facade "
        "checkpoint every N epochs so restart recovery and replica "
        "heal replay only the WAL tail (0 = off)",
    )
    serve.add_argument(
        "--checkpoint-path",
        default=None,
        dest="checkpoint_path",
        metavar="PATH",
        help="checkpoint directory (default: <wal>/checkpoints)",
    )
    serve.add_argument(
        "--follow",
        action="store_true",
        help="serve a read-only follower that tails --wal PATH (an "
        "external primary's log) and stays caught up by epoch",
    )
    serve.add_argument(
        "--replicas",
        type=int,
        default=0,
        help="run a replica set: one WAL-writing primary plus N "
        "WAL-following replicas behind a load-balancing front end "
        "(status at /replicas; 0 = unreplicated)",
    )
    serve.add_argument(
        "--balance",
        choices=("round_robin", "least_inflight"),
        default="round_robin",
        help="replica-set load-balancing policy",
    )
    serve.add_argument(
        "--max-lag",
        type=int,
        default=8,
        dest="max_lag",
        help="staleness bound in epochs: a replica lagging the WAL by "
        "more is excluded from balancing until it catches up",
    )
    serve.add_argument(
        "--replica-backend",
        choices=("thread", "process", "auto"),
        default="auto",
        dest="replica_backend",
        help="replica worker backend (process = one forked worker per "
        "replica — read QPS scales with cores; needs fork)",
    )
    serve.add_argument(
        "--trace-sample",
        default=None,
        dest="trace_sample",
        metavar="S",
        help="trace sampling: always (default), off, slow, or a rate "
        "in (0, 1]; traces are browsable at /trace",
    )
    serve.add_argument(
        "--slow-query-ms",
        type=float,
        default=None,
        dest="slow_query_ms",
        metavar="T",
        help="slow-query threshold in ms (default 500); slow queries "
        "are always traced, logged, and served at /debug/slow",
    )
    serve.add_argument(
        "--trace-buffer",
        type=int,
        default=None,
        dest="trace_buffer",
        metavar="N",
        help="traces retained in the ring buffer (default 256)",
    )
    serve.set_defaults(run=_command_serve)

    recover = commands.add_parser(
        "recover",
        help="replay a durable epoch log onto the base database",
    )
    recover.add_argument("db", help="the base snapshot (pre-WAL state)")
    recover.add_argument(
        "--wal", required=True, metavar="PATH", help="epoch-log directory"
    )
    recover.add_argument(
        "--checkpoints",
        default=None,
        metavar="PATH",
        help="checkpoint directory: recovery starts from the newest "
        "valid checkpoint there and replays only the WAL tail",
    )
    recover.add_argument(
        "--query",
        action="append",
        dest="queries",
        metavar="QUERY",
        help="spot-check query against the recovered facade (repeatable)",
    )
    recover.add_argument(
        "-k", "--max-results", type=int, default=5, dest="max_results"
    )
    recover.set_defaults(run=_command_recover)

    checkpoint = commands.add_parser(
        "checkpoint",
        help="persist a checkpoint of a WAL's recovered state and "
        "re-base the log",
    )
    checkpoint.add_argument("db", help="the base snapshot (pre-WAL state)")
    checkpoint.add_argument(
        "--wal", required=True, metavar="PATH", help="epoch-log directory"
    )
    checkpoint.add_argument(
        "--checkpoints",
        default=None,
        metavar="PATH",
        help="checkpoint directory (default: <wal>/checkpoints)",
    )
    checkpoint.add_argument(
        "--keep",
        type=int,
        default=2,
        help="checkpoints retained on disk (older ones are pruned)",
    )
    checkpoint.set_defaults(run=_command_checkpoint)

    ingest = commands.add_parser(
        "ingest",
        help="bulk-load a record stream through the resumable pipeline",
    )
    ingest.add_argument("db", help="base database specifier (e.g. synth:0)")
    ingest.add_argument(
        "source",
        help="record source: jsonl:PATH, csv:PATH or synth:N[:SEED]",
    )
    ingest.add_argument(
        "--chunk", type=int, default=1000,
        help="records per committed chunk (default 1000; fixed per job)",
    )
    ingest.add_argument(
        "--job-id", default="ingest",
        help="job identifier in the registry (default: ingest)",
    )
    ingest.add_argument(
        "--jobs-dir", default=None,
        help="job registry directory (default: <wal>/jobs with --wal, "
        "else ./ingest-jobs)",
    )
    ingest.add_argument(
        "--wal", default=None,
        help="append every published chunk epoch to a durable WAL at "
        "this path (required for --resume)",
    )
    ingest.add_argument(
        "--resume", action="store_true",
        help="recover the pre-crash state from --wal and continue the "
        "job from its registry cursor",
    )
    ingest.set_defaults(run=_command_ingest)

    jobs = commands.add_parser(
        "jobs", help="list ingest jobs and their states"
    )
    jobs.add_argument(
        "--jobs-dir", default="ingest-jobs",
        help="job registry directory (default: ./ingest-jobs)",
    )
    jobs.set_defaults(run=_command_jobs)

    bench_serve = commands.add_parser(
        "bench-serve", help="serving-engine throughput benchmark"
    )
    bench_serve.add_argument("db")
    bench_serve.add_argument("--requests", type=int, default=200)
    bench_serve.add_argument("--concurrency", type=int, default=8)
    bench_serve.add_argument("--workers", type=int, default=8)
    bench_serve.add_argument(
        "--queue-bound", type=int, default=64, dest="queue_bound"
    )
    bench_serve.add_argument(
        "-k", "--max-results", type=int, default=10, dest="max_results"
    )
    bench_serve.set_defaults(run=_command_bench_serve)

    bench_shard = commands.add_parser(
        "bench-shard", help="sharded scatter-gather throughput benchmark"
    )
    bench_shard.add_argument("db")
    bench_shard.add_argument("--shards", type=int, default=4)
    bench_shard.add_argument("--requests", type=int, default=48)
    bench_shard.add_argument("--concurrency", type=int, default=8)
    bench_shard.add_argument(
        "--backend", choices=("thread", "process", "auto"), default="auto"
    )
    bench_shard.add_argument(
        "--strategy",
        choices=("hash", "table", "round_robin"),
        default="hash",
    )
    bench_shard.add_argument(
        "--query",
        action="append",
        dest="queries",
        metavar="QUERY",
        help="benchmark query (repeatable; default: the dataset's "
        "demo query set)",
    )
    bench_shard.add_argument(
        "-k", "--max-results", type=int, default=5, dest="max_results"
    )
    bench_shard.set_defaults(run=_command_bench_shard)

    bench_mutate = commands.add_parser(
        "bench-mutate",
        help="write-path benchmark: delta-log vs deep-copy snapshots",
    )
    bench_mutate.add_argument("db")
    bench_mutate.add_argument("--mutations", type=int, default=32)
    bench_mutate.add_argument(
        "--batch-size", type=int, default=1, dest="batch_size"
    )
    bench_mutate.set_defaults(run=_command_bench_mutate)

    bench_wal = commands.add_parser(
        "bench-wal",
        help="durable-log benchmark: WAL overhead, recovery and "
        "replica parity",
    )
    bench_wal.add_argument("db")
    bench_wal.add_argument("--mutations", type=int, default=52)
    bench_wal.add_argument(
        "--batch-size", type=int, default=1, dest="batch_size"
    )
    bench_wal.add_argument(
        "--fsync", choices=("always", "rotate", "never"), default="always"
    )
    bench_wal.add_argument(
        "--query",
        action="append",
        dest="queries",
        metavar="QUERY",
        help="parity query (repeatable; default: the dataset's demo "
        "query set)",
    )
    bench_wal.set_defaults(run=_command_bench_wal)

    bench_replicaset = commands.add_parser(
        "bench-replicaset",
        help="replica-set benchmark: read QPS scaling, replica parity, "
        "read-your-writes, lag exclusion",
    )
    bench_replicaset.add_argument("db")
    bench_replicaset.add_argument("--replicas", type=int, default=3)
    bench_replicaset.add_argument("--requests", type=int, default=64)
    bench_replicaset.add_argument("--concurrency", type=int, default=8)
    bench_replicaset.add_argument(
        "--balance",
        choices=("round_robin", "least_inflight"),
        default="round_robin",
    )
    bench_replicaset.add_argument(
        "--replica-backend",
        choices=("thread", "process", "auto"),
        default="auto",
        dest="replica_backend",
    )
    bench_replicaset.add_argument(
        "--query",
        action="append",
        dest="queries",
        metavar="QUERY",
        help="benchmark query (repeatable; default: the dataset's "
        "demo query set)",
    )
    bench_replicaset.add_argument(
        "-k", "--max-results", type=int, default=5, dest="max_results"
    )
    bench_replicaset.set_defaults(run=_command_bench_replicaset)

    client = commands.add_parser(
        "client",
        help="query a 'banks serve --http' server (add --stream to "
        "watch answers arrive)",
    )
    client.add_argument("url", help="server base URL, e.g. http://127.0.0.1:8000")
    client.add_argument("query", nargs="+", help="keyword query")
    client.add_argument(
        "-k", "--max-results", type=int, default=5, dest="max_results"
    )
    client.add_argument("--offset", type=int, default=0)
    client.add_argument("--token", default=None, help="bearer token")
    client.add_argument(
        "--consistency",
        default="eventual",
        help="consistency level (eventual, read_your_writes, "
        "bounded_staleness, monotonic_reads, primary)",
    )
    client.add_argument(
        "--staleness-bound",
        type=int,
        default=None,
        dest="staleness_bound",
        metavar="EPOCHS",
        help="with --consistency bounded_staleness: per-request lag "
        "ceiling in epochs",
    )
    client.add_argument(
        "--stream",
        action="store_true",
        help="use /v1/query/stream: print each answer as the remote "
        "kernel finds it",
    )
    client.add_argument(
        "--trace-id",
        default=None,
        dest="trace_id",
        metavar="ID",
        help="correlation id to send as X-Trace-Id",
    )
    client.set_defaults(run=_command_client)

    bench_net = commands.add_parser(
        "bench-net",
        help="HTTP-tier benchmark: wire parity vs in-process search, "
        "time-to-first-answer over SSE, end-to-end QPS",
    )
    bench_net.add_argument("db")
    bench_net.add_argument("--requests", type=int, default=32)
    bench_net.add_argument(
        "--query",
        action="append",
        dest="queries",
        metavar="QUERY",
        help="benchmark query (repeatable; default: the dataset's "
        "demo query set)",
    )
    bench_net.add_argument(
        "-k", "--max-results", type=int, default=5, dest="max_results"
    )
    bench_net.set_defaults(run=_command_bench_net)

    bench_kernel = commands.add_parser(
        "bench-kernel",
        help="CSR search-kernel benchmark: median latency vs the "
        "dict-of-dicts reference kernel, strict top-k parity",
    )
    bench_kernel.add_argument("db")
    bench_kernel.add_argument("--repeats", type=int, default=3)
    bench_kernel.add_argument(
        "--query",
        action="append",
        dest="queries",
        metavar="QUERY",
        help="benchmark query (repeatable; default: the dataset's "
        "demo query set)",
    )
    bench_kernel.add_argument(
        "-k", "--max-results", type=int, default=5, dest="max_results"
    )
    bench_kernel.set_defaults(run=_command_bench_kernel)

    bench_ops = commands.add_parser(
        "bench-ops",
        help="checkpointing + rebalancing benchmark: checkpointed "
        "recovery speedup over full replay, live-drain search parity",
    )
    bench_ops.add_argument("db")
    bench_ops.add_argument(
        "--epochs",
        type=int,
        default=500,
        help="mutation epochs to drive through the WAL",
    )
    bench_ops.add_argument(
        "--checkpoint-every",
        type=int,
        default=100,
        dest="checkpoint_every",
        help="checkpoint cadence in epochs",
    )
    bench_ops.add_argument(
        "--shards",
        type=int,
        default=3,
        help="shards for the live-drain parity probe",
    )
    bench_ops.add_argument(
        "--query",
        action="append",
        dest="queries",
        metavar="QUERY",
        help="parity probe query (repeatable; default: the dataset's "
        "demo query set)",
    )
    bench_ops.set_defaults(run=_command_bench_ops)

    bench_ingest = commands.add_parser(
        "bench-ingest",
        help="ingest benchmark: throughput, kill + resume, top-k parity",
    )
    bench_ingest.add_argument(
        "db", help="stream size as synth:N[:SEED] (the bench generates "
        "its own records)",
    )
    bench_ingest.add_argument(
        "--chunk", type=int, default=1000,
        help="records per committed chunk (default 1000)",
    )
    bench_ingest.add_argument(
        "--kill-step", default="ingest.chunk_commit",
        help="protocol step the injected crash fires at "
        "(default ingest.chunk_commit)",
    )
    bench_ingest.add_argument(
        "--kill-fraction", type=float, default=0.5,
        help="where in the stream to crash, as a fraction of chunks "
        "(default 0.5)",
    )
    bench_ingest.set_defaults(run=_command_bench_ingest)
    return parser


def main(argv: Optional[List[str]] = None, out=None) -> int:
    """CLI entry point; returns the process exit status."""
    out = out or sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.run(args, out)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
