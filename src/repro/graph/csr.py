"""Frozen CSR snapshot of the data graph, plus COW overlay forks.

The dict-of-dicts :class:`~repro.graph.digraph.DiGraph` is the right
shape for *building* the data graph — idempotent edge merges, tombstoned
removals — but the search kernel only ever reads it, and pays dict-probe
and tuple-churn costs on every relaxation.  This module provides the
read-optimised twin:

* :class:`CSRGraph` — an immutable compressed-sparse-row snapshot.
  :meth:`CSRGraph.freeze` densely renumbers the live nodes (tombstone
  slots are skipped, insertion order is preserved — adjacency order
  feeds Dijkstra tie-breaking, so freeze/thaw must not reshuffle it)
  and lays successor *and* predecessor adjacency out as contiguous
  ``array`` triples ``(offsets, targets, weights)``.  Node weights,
  the scoring normalisers and the normalised log-scaled edge scores
  (``log2(1 + w/w_min)``, the paper's *EdgeLog* form) are precomputed
  at freeze time.

* :class:`CSROverlayGraph` — a mutable copy-on-write view over a
  frozen base.  Delta-touched adjacency rows live in per-node overlay
  dicts consulted *before* the arrays; untouched rows are read straight
  from the shared base.  Forking an overlay is O(n) pointer copies
  (the same contract as :class:`~repro.store.versioned.VersionedGraph`),
  and mutating a fork copies only the rows it touches — so the O(delta)
  write path, WAL replay and shard delta routing run unchanged on top
  of a frozen graph.

* :class:`CSRDijkstra` — the lazy Dijkstra iterator rewritten for the
  arrays: per-origin distance/parent/edge-weight *arrays* instead of
  dict probes, a flat two-tuple heap (``(distance, counter*N + node)``
  packs the tie-break counter and node into one machine int, halving
  per-pop allocation), and a settled bytearray.  It reproduces
  :class:`~repro.graph.dijkstra.DijkstraIterator` exactly — same
  relaxation order, same tie-breaks, same float arithmetic — which is
  what the kernel parity gate (``BENCH_kernel.json``) checks
  end-to-end.
"""

from __future__ import annotations

import math
from array import array
from heapq import heappop as _heappop, heappush as _heappush
from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Tuple

from repro.errors import GraphError as _GraphError
from repro.errors import UnknownNodeError as _UnknownNodeError

Node = Hashable

__all__ = [
    "CSRDijkstra",
    "CSRGraph",
    "CSROverlayGraph",
    "dijkstra_for",
    "freeze_graph",
]


def _node_table(node: Node) -> Optional[str]:
    if isinstance(node, tuple) and len(node) == 2 and isinstance(node[0], str):
        return node[0]
    return None


class CSRGraph:
    """An immutable CSR snapshot of a :class:`DiGraph`-shaped graph.

    Exposes the full read API of :class:`~repro.graph.digraph.DiGraph`
    (``index_of``/``successors``/``edges``/...), so scorers, stitch
    parity checks and browse pages work unchanged.  Mutators raise:
    call :meth:`overlay` (or :func:`repro.store.versioned.fork_graph`)
    to get a writable copy-on-write view.
    """

    __slots__ = (
        "_index",
        "_ids",
        "_reprs",
        "_tables",
        "_node_weights",
        "_succ_off",
        "_succ_to",
        "_succ_w",
        "_pred_off",
        "_pred_to",
        "_pred_w",
        "_edge_count",
        "_min_edge",
        "_max_node",
        "_edge_norms",
        "_over_succ",
        "_over_pred",
        "_over_nw",
    )

    def __init__(self) -> None:
        raise _GraphError(
            "CSRGraph is built by CSRGraph.freeze(graph), not constructed"
        )

    # -- construction -------------------------------------------------------

    @classmethod
    def freeze(cls, graph) -> "CSRGraph":
        """Snapshot any DiGraph-shaped graph into CSR arrays.

        Tombstone slots (``None`` entries a ``remove_node`` left behind)
        are skipped; live nodes keep their relative insertion order, and
        each adjacency row is laid out in the source dict's iteration
        order — both feed heap tie-breaking, so preserving them keeps
        rankings bit-identical across freeze/thaw.
        """
        snapshot = cls.__new__(cls)
        ids: List[Node] = list(graph.nodes())
        index: Dict[Node, int] = {node: i for i, node in enumerate(ids)}
        snapshot._ids = ids
        snapshot._index = index
        snapshot._reprs = [repr(node) for node in ids]
        snapshot._tables = [_node_table(node) for node in ids]
        snapshot._node_weights = array(
            "d", (graph.node_weight(node) for node in ids)
        )

        succ_off = array("q", [0])
        succ_to = array("q")
        succ_w = array("d")
        for node in ids:
            for neighbor, weight in graph.successors(node):
                succ_to.append(index[neighbor])
                succ_w.append(weight)
            succ_off.append(len(succ_to))
        pred_off = array("q", [0])
        pred_to = array("q")
        pred_w = array("d")
        for node in ids:
            for neighbor, weight in graph.predecessors(node):
                pred_to.append(index[neighbor])
                pred_w.append(weight)
            pred_off.append(len(pred_to))
        snapshot._succ_off, snapshot._succ_to, snapshot._succ_w = (
            succ_off,
            succ_to,
            succ_w,
        )
        snapshot._pred_off, snapshot._pred_to, snapshot._pred_w = (
            pred_off,
            pred_to,
            pred_w,
        )
        snapshot._edge_count = len(succ_to)

        # Delegate the normalisers to the source graph: its max scans
        # tombstone slots as 0.0, and scoring parity demands the exact
        # same float the dict representation would have produced.
        snapshot._min_edge = (
            graph.min_edge_weight() if snapshot._edge_count else None
        )
        snapshot._max_node = graph.max_node_weight() if ids else None
        edge_norms: Dict[float, float] = {}
        if snapshot._min_edge is not None and snapshot._min_edge > 0:
            for weight in succ_w:
                if weight not in edge_norms:
                    edge_norms[weight] = math.log2(
                        1.0 + weight / snapshot._min_edge
                    )
        snapshot._edge_norms = edge_norms

        # Empty on the frozen base; CSROverlayGraph populates them.
        # Present here so the kernels read one shape for both classes.
        snapshot._over_succ = {}
        snapshot._over_pred = {}
        snapshot._over_nw = {}
        return snapshot

    def overlay(self) -> "CSROverlayGraph":
        """A mutable copy-on-write view over this snapshot."""
        return CSROverlayGraph._over(self)

    @property
    def frozen_min_edge_weight(self) -> Optional[float]:
        """The ``w_min`` normaliser captured at freeze time (``None``
        for an edgeless graph)."""
        return self._min_edge

    @property
    def frozen_edge_norms(self) -> Dict[float, float]:
        """Distinct edge weight -> ``log2(1 + w/w_min)``, precomputed at
        freeze time; the kernel seeds its per-query score memo from this
        when the live normaliser still equals the frozen one."""
        return self._edge_norms

    # -- mutators (refused) -------------------------------------------------

    def _refuse_mutation(self, *_args, **_kwargs):
        raise _GraphError(
            "CSRGraph is frozen; call .overlay() for a mutable view"
        )

    add_node = _refuse_mutation
    add_edge = _refuse_mutation
    remove_node = _refuse_mutation
    remove_edge = _refuse_mutation
    set_node_weight = _refuse_mutation

    # -- node access --------------------------------------------------------

    def index_of(self, node: Node) -> int:
        try:
            return self._index[node]
        except KeyError:
            raise _UnknownNodeError(node) from None

    def id_of(self, index: int) -> Node:
        return self._ids[index]

    def has_node(self, node: Node) -> bool:
        return node in self._index

    def node_weight(self, node: Node) -> float:
        index = self.index_of(node)
        weight = self._over_nw.get(index)
        if weight is not None:
            return weight
        return self._node_weights[index]

    def nodes(self) -> Iterator[Node]:
        return (node for node in self._ids if node is not None)

    @property
    def num_nodes(self) -> int:
        return len(self._index)

    @property
    def tombstone_count(self) -> int:
        return len(self._ids) - len(self._index)

    @property
    def num_edges(self) -> int:
        return self._edge_count

    # -- index-level adjacency ---------------------------------------------

    def _succ_row(self, index: int) -> Dict[int, float]:
        row = self._over_succ.get(index)
        if row is not None:
            return row
        lo, hi = self._succ_off[index], self._succ_off[index + 1]
        return dict(zip(self._succ_to[lo:hi], self._succ_w[lo:hi]))

    def _pred_row(self, index: int) -> Dict[int, float]:
        row = self._over_pred.get(index)
        if row is not None:
            return row
        lo, hi = self._pred_off[index], self._pred_off[index + 1]
        return dict(zip(self._pred_to[lo:hi], self._pred_w[lo:hi]))

    def raw_successors(self, index: int) -> Dict[int, float]:
        return self._succ_row(index)

    def raw_predecessors(self, index: int) -> Dict[int, float]:
        return self._pred_row(index)

    # -- edge access --------------------------------------------------------

    def has_edge(self, source: Node, target: Node) -> bool:
        source_index = self._index.get(source)
        target_index = self._index.get(target)
        if source_index is None or target_index is None:
            return False
        return target_index in self._succ_row(source_index)

    def edge_weight(self, source: Node, target: Node) -> float:
        source_index = self.index_of(source)
        target_index = self.index_of(target)
        try:
            return self._succ_row(source_index)[target_index]
        except KeyError:
            raise _GraphError(f"no edge {source!r} -> {target!r}") from None

    def successors(self, node: Node) -> List[Tuple[Node, float]]:
        ids = self._ids
        return [
            (ids[t], w) for t, w in self._succ_row(self.index_of(node)).items()
        ]

    def predecessors(self, node: Node) -> List[Tuple[Node, float]]:
        ids = self._ids
        return [
            (ids[s], w) for s, w in self._pred_row(self.index_of(node)).items()
        ]

    def out_degree(self, node: Node) -> int:
        return len(self._succ_row(self.index_of(node)))

    def in_degree(self, node: Node) -> int:
        return len(self._pred_row(self.index_of(node)))

    def edges(self) -> Iterator[Tuple[Node, Node, float]]:
        ids = self._ids
        for source_index in range(len(ids)):
            source = ids[source_index]
            for target_index, weight in self._succ_row(source_index).items():
                yield (source, ids[target_index], weight)

    # -- aggregates ---------------------------------------------------------

    def min_edge_weight(self) -> float:
        over = self._over_succ
        if not over and self.tombstone_count == 0:
            if self._min_edge is None:
                raise _GraphError("graph has no edges")
            return self._min_edge
        # Mutated overlay: this runs on every stats refresh of the
        # write path, so scan overlay rows as dicts and untouched rows
        # straight off the weight array — never materialise a row.
        best: Optional[float] = None
        base_n = len(self._succ_off) - 1
        offsets, weights = self._succ_off, self._succ_w
        for index in range(len(self._ids)):
            row = over.get(index)
            if row is not None:
                if not row:
                    continue
                candidate = min(row.values())
            elif index < base_n:
                lo, hi = offsets[index], offsets[index + 1]
                if lo == hi:
                    continue
                candidate = min(weights[lo:hi])
            else:
                continue  # overlay-born node whose row was never written
            if best is None or candidate < best:
                best = candidate
        if best is None:
            raise _GraphError("graph has no edges")
        return best

    def max_node_weight(self) -> float:
        if not self._ids:
            raise _GraphError("graph has no nodes")
        if not self._over_nw and self.tombstone_count == 0:
            return self._max_node
        # Tombstone slots count as 0.0, exactly as DiGraph's weight
        # list does after remove_node zeroes the slot.
        best = 0.0 if self.tombstone_count else None
        over = self._over_nw
        base = self._node_weights
        for index, node in enumerate(self._ids):
            if node is None:
                continue
            weight = over.get(index)
            if weight is None:
                weight = base[index]
            if best is None or weight > best:
                best = weight
        return best

    # -- utilities ----------------------------------------------------------

    def subgraph(self, nodes: Iterable[Node]):
        from repro.graph.digraph import DiGraph

        wanted = set(nodes)
        result = DiGraph()
        for node in self.nodes():
            if node in wanted:
                result.add_node(node, self.node_weight(node))
        for node in result.nodes():
            for neighbor, weight in self.successors(node):
                if neighbor in wanted:
                    result.add_edge(node, neighbor, weight)
        return result

    def reversed(self):
        from repro.graph.digraph import DiGraph

        result = DiGraph()
        for node in self.nodes():
            result.add_node(node, self.node_weight(node))
        for source, target, weight in self.edges():
            result.add_edge(target, source, weight)
        return result

    def __contains__(self, node: Node) -> bool:
        return node in self._index

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CSRGraph({self.num_nodes} nodes, {self.num_edges} edges)"


class CSROverlayGraph(CSRGraph):
    """A mutable copy-on-write view over a frozen :class:`CSRGraph`.

    Reads consult the per-node overlay dicts first and fall back to the
    shared base arrays; the full :class:`DiGraph` mutator surface
    (including tombstoned ``remove_node``) is implemented by *owning* a
    row — materialising the array slice into a dict — before touching
    it.  :meth:`fork` is O(n) pointer copies and fork children share
    overlay rows structurally until they write, mirroring
    :class:`~repro.store.versioned.VersionedGraph` semantics exactly.
    """

    __slots__ = (
        "_base",
        "_owned_succ",
        "_owned_pred",
        "_live_min",
        "_min_dirty",
        "_live_max",
        "_max_dirty",
    )

    @classmethod
    def _over(cls, base: CSRGraph) -> "CSROverlayGraph":
        view = cls.__new__(cls)
        view._base = base
        view._index = dict(base._index)
        view._ids = list(base._ids)
        view._reprs = list(base._reprs)
        view._tables = list(base._tables)
        view._node_weights = base._node_weights
        view._succ_off = base._succ_off
        view._succ_to = base._succ_to
        view._succ_w = base._succ_w
        view._pred_off = base._pred_off
        view._pred_to = base._pred_to
        view._pred_w = base._pred_w
        view._edge_count = base._edge_count
        view._min_edge = base._min_edge
        view._max_node = base._max_node
        view._edge_norms = base._edge_norms
        view._over_succ = dict(base._over_succ)
        view._over_pred = dict(base._over_pred)
        view._over_nw = dict(base._over_nw)
        view._owned_succ = set()
        view._owned_pred = set()
        # Live normaliser aggregates, maintained incrementally by the
        # mutators: a full rescan happens only when the standing
        # extremum itself is invalidated (its edge removed, its node
        # reweighed downward), so the per-write stats refresh on the
        # delta path stays O(1) instead of O(V + E).
        if isinstance(base, CSROverlayGraph):
            view._live_min = base._live_min
            view._min_dirty = base._min_dirty
            view._live_max = base._live_max
            view._max_dirty = base._max_dirty
        else:
            view._live_min = base._min_edge
            view._min_dirty = False
            view._live_max = base._max_node
            view._max_dirty = False
        return view

    def fork(self) -> "CSROverlayGraph":
        """A child sharing the base arrays and all overlay rows; the
        parent must not be mutated afterwards (snapshot contract)."""
        return CSROverlayGraph._over(self)

    @property
    def base(self) -> CSRGraph:
        """The frozen snapshot underneath (its own base for forks)."""
        base = self._base
        while isinstance(base, CSROverlayGraph):
            base = base._base
        return base

    @property
    def overlay_nodes(self) -> int:
        """Adjacency rows living in overlay dicts rather than the
        frozen arrays — the re-freeze signal (see docs/OPERATIONS.md)."""
        touched = set(self._over_succ)
        touched.update(self._over_pred)
        return len(touched)

    @property
    def shared_nodes(self) -> int:
        """Adjacency slots still read from shared storage (base arrays
        or the parent's overlay rows) — mirrors
        :attr:`VersionedGraph.shared_nodes` for tests and benchmarks."""
        return len(self._ids) - len(self._owned_succ)

    def refreeze(self) -> CSRGraph:
        """Collapse the overlay into a fresh frozen snapshot."""
        return CSRGraph.freeze(self)

    # -- aggregates (incremental) -------------------------------------------

    def min_edge_weight(self) -> float:
        if self._min_dirty:
            self._live_min = self._scan_min_edge()
            self._min_dirty = False
        if self._live_min is None:
            raise _GraphError("graph has no edges")
        return self._live_min

    def max_node_weight(self) -> float:
        if not self._ids:
            raise _GraphError("graph has no nodes")
        if self._max_dirty:
            self._live_max = self._scan_max_node()
            self._max_dirty = False
        return self._live_max

    def _scan_min_edge(self) -> Optional[float]:
        over = self._over_succ
        best: Optional[float] = None
        base_n = self._base_n()
        offsets, weights = self._succ_off, self._succ_w
        for index in range(len(self._ids)):
            row = over.get(index)
            if row is not None:
                if not row:
                    continue
                candidate = min(row.values())
            elif index < base_n:
                lo, hi = offsets[index], offsets[index + 1]
                if lo == hi:
                    continue
                candidate = min(weights[lo:hi])
            else:
                continue
            if best is None or candidate < best:
                best = candidate
        return best

    def _scan_max_node(self) -> Optional[float]:
        # Tombstone slots count as 0.0, exactly as DiGraph's weight
        # list does after remove_node zeroes the slot.
        best: Optional[float] = 0.0 if self.tombstone_count else None
        over = self._over_nw
        base = self._node_weights
        for index, node in enumerate(self._ids):
            if node is None:
                continue
            weight = over.get(index)
            if weight is None:
                weight = base[index]
            if best is None or weight > best:
                best = weight
        return best

    # -- ownership ----------------------------------------------------------

    def _base_n(self) -> int:
        return len(self._succ_off) - 1

    def _own_succ(self, index: int) -> Dict[int, float]:
        owned = self._owned_succ
        row = self._over_succ.get(index)
        if index in owned:
            return row
        if row is None:
            if index < self._base_n():
                lo, hi = self._succ_off[index], self._succ_off[index + 1]
                row = dict(zip(self._succ_to[lo:hi], self._succ_w[lo:hi]))
            else:
                row = {}
        else:
            row = dict(row)
        self._over_succ[index] = row
        owned.add(index)
        return row

    def _own_pred(self, index: int) -> Dict[int, float]:
        owned = self._owned_pred
        row = self._over_pred.get(index)
        if index in owned:
            return row
        if row is None:
            if index < self._base_n():
                lo, hi = self._pred_off[index], self._pred_off[index + 1]
                row = dict(zip(self._pred_to[lo:hi], self._pred_w[lo:hi]))
            else:
                row = {}
        else:
            row = dict(row)
        self._over_pred[index] = row
        owned.add(index)
        return row

    # -- mutators -----------------------------------------------------------

    def add_node(self, node: Node, weight: float = 0.0) -> int:
        existing = self._index.get(node)
        if existing is not None:
            return existing
        index = len(self._ids)
        self._index[node] = index
        self._ids.append(node)
        self._reprs.append(repr(node))
        self._tables.append(_node_table(node))
        value = float(weight)
        self._over_nw[index] = value
        self._over_succ[index] = {}
        self._over_pred[index] = {}
        self._owned_succ.add(index)
        self._owned_pred.add(index)
        if not self._max_dirty and (
            self._live_max is None or value > self._live_max
        ):
            self._live_max = value
        return index

    def add_edge(self, source: Node, target: Node, weight: float) -> None:
        if source == target:
            raise _GraphError(f"self loop rejected: {source!r}")
        if weight < 0:
            raise _GraphError(f"negative edge weight rejected: {weight!r}")
        source_index = self.add_node(source)
        target_index = self.add_node(target)
        succ = self._own_succ(source_index)
        pred = self._own_pred(target_index)
        previous = succ.get(target_index)
        if previous is None:
            self._edge_count += 1
        value = float(weight)
        succ[target_index] = value
        pred[source_index] = value
        if not self._min_dirty:
            live = self._live_min
            if (
                previous is not None
                and previous == live
                and value > previous
            ):
                # Overwrote (possibly the only) minimum-weight edge
                # with something heavier: the floor must be rescanned.
                self._min_dirty = True
            elif live is None or value < live:
                self._live_min = value

    def remove_edge(self, source: Node, target: Node) -> None:
        source_index = self.index_of(source)
        target_index = self.index_of(target)
        succ = self._own_succ(source_index)
        if target_index not in succ:
            raise _GraphError(f"no edge {source!r} -> {target!r}")
        pred = self._own_pred(target_index)
        removed = succ[target_index]
        del succ[target_index]
        del pred[source_index]
        self._edge_count -= 1
        if not self._min_dirty and removed == self._live_min:
            self._min_dirty = True

    def remove_node(self, node: Node) -> None:
        index = self.index_of(node)
        succ = self._own_succ(index)
        pred = self._own_pred(index)
        live = self._live_min
        if (
            not self._min_dirty
            and live is not None
            and live in succ.values()
        ):
            self._min_dirty = True
        for target_index in list(succ):
            del self._own_pred(target_index)[index]
            self._edge_count -= 1
        succ.clear()
        for source_index in list(pred):
            row = self._own_succ(source_index)
            if not self._min_dirty and row[index] == live:
                self._min_dirty = True
            del row[index]
            self._edge_count -= 1
        pred.clear()
        previous = self._current_node_weight(index)
        self._ids[index] = None
        self._tables[index] = None
        self._over_nw[index] = 0.0
        del self._index[node]
        if not self._max_dirty:
            if previous == self._live_max:
                self._max_dirty = True
            elif self._live_max is None or self._live_max < 0.0:
                self._live_max = 0.0  # the tombstone slot counts as 0.0

    def set_node_weight(self, node: Node, weight: float) -> None:
        index = self.index_of(node)
        previous = self._current_node_weight(index)
        value = float(weight)
        self._over_nw[index] = value
        if not self._max_dirty:
            live = self._live_max
            if live is None or value > live:
                self._live_max = value
            elif previous == live and value < live:
                self._max_dirty = True

    def _current_node_weight(self, index: int) -> float:
        weight = self._over_nw.get(index)
        if weight is None:
            weight = self._node_weights[index]
        return weight

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CSROverlayGraph({self.num_nodes} nodes, {self.num_edges} "
            f"edges, {self.overlay_nodes} overlaid)"
        )


def freeze_graph(graph) -> CSROverlayGraph:
    """Freeze ``graph`` and return a mutable overlay view over it —
    the facade-facing idiom (search reads the arrays, feedback and
    delta replay write the overlay)."""
    if isinstance(graph, CSROverlayGraph):
        return graph.refreeze().overlay()
    if isinstance(graph, CSRGraph):
        return graph.overlay()
    return CSRGraph.freeze(graph).overlay()


class CSRDijkstra:
    """Array-backed lazy Dijkstra over a :class:`CSRGraph` (or overlay).

    Drop-in behavioural twin of
    :class:`~repro.graph.dijkstra.DijkstraIterator`: one settlement per
    :meth:`next`, :meth:`peek` exposes the next distance, parents spell
    the path back to the source.  State lives in flat arrays — distance
    and parent per node, a settled bytearray — and the heap holds
    ``(distance, counter * N + node)`` two-tuples whose packed second
    element reproduces the reference ``(distance, counter, node)``
    ordering exactly (counters are unique, so the node never decides).
    ``parent_weight`` additionally caches the weight of each node's
    parent edge at relaxation time, which lets tree construction skip
    the edge-weight lookup entirely.
    """

    __slots__ = (
        "_graph",
        "source",
        "_reverse",
        "_max_distance",
        "_n",
        "_source_index",
        "_dist",
        "_parent",
        "_parw",
        "_settled",
        "_heap",
        "_counter",
        "relaxations",
    )

    def __init__(
        self,
        graph: CSRGraph,
        source: Node,
        reverse: bool = False,
        initial_distance: float = 0.0,
        max_distance: Optional[float] = None,
    ):
        self._graph = graph
        self.source = source
        self._reverse = reverse
        self._max_distance = max_distance
        n = len(graph._ids)
        self._n = n
        source_index = graph.index_of(source)
        self._source_index = source_index
        self._dist = array("d", [math.inf]) * n
        self._parent = array("q", [-1]) * n
        self._parw = array("d", bytes(8 * n))
        self._settled = bytearray(n)
        self._dist[source_index] = initial_distance
        self._heap: List[Tuple[float, int]] = [
            (initial_distance, source_index)
        ]
        self._counter = 1
        self.relaxations = 0

    # -- iteration ----------------------------------------------------------

    def _skim(self) -> None:
        heap = self._heap
        settled = self._settled
        n = self._n
        max_distance = self._max_distance
        while heap:
            distance, packed = heap[0]
            if settled[packed % n]:
                _heappop(heap)
                continue
            if max_distance is not None and distance > max_distance:
                heap.clear()
                continue
            return

    def peek(self) -> Optional[float]:
        self._skim()
        if not self._heap:
            return None
        return self._heap[0][0]

    def next_index(self) -> int:
        """Settle and return the nearest unsettled node's dense index,
        or ``-1`` when exhausted — the kernel-facing fast path (no
        :class:`Visit` allocation, no id translation)."""
        self._skim()
        heap = self._heap
        if not heap:
            return -1
        n = self._n
        distance, packed = _heappop(heap)
        index = packed % n
        settled = self._settled
        settled[index] = 1
        graph = self._graph
        over = graph._over_pred if self._reverse else graph._over_succ
        row = over.get(index)
        dist = self._dist
        parent = self._parent
        parw = self._parw
        counter = self._counter
        if row is None and index < len(graph._succ_off) - 1:
            if self._reverse:
                offsets, to, weights = (
                    graph._pred_off,
                    graph._pred_to,
                    graph._pred_w,
                )
            else:
                offsets, to, weights = (
                    graph._succ_off,
                    graph._succ_to,
                    graph._succ_w,
                )
            lo, hi = offsets[index], offsets[index + 1]
            self.relaxations += hi - lo
            for position in range(lo, hi):
                neighbor = to[position]
                if settled[neighbor]:
                    continue
                candidate = distance + weights[position]
                if candidate < dist[neighbor]:
                    dist[neighbor] = candidate
                    parent[neighbor] = index
                    parw[neighbor] = weights[position]
                    _heappush(heap, (candidate, counter * n + neighbor))
                    counter += 1
        elif row:
            self.relaxations += len(row)
            for neighbor, weight in row.items():
                if settled[neighbor]:
                    continue
                candidate = distance + weight
                if candidate < dist[neighbor]:
                    dist[neighbor] = candidate
                    parent[neighbor] = index
                    parw[neighbor] = weight
                    _heappush(heap, (candidate, counter * n + neighbor))
                    counter += 1
        self._counter = counter
        return index

    def next(self):
        """Settle and return the nearest unsettled node as a
        :class:`~repro.graph.dijkstra.Visit`, or ``None``."""
        from repro.graph.dijkstra import Visit

        index = self.next_index()
        if index < 0:
            return None
        ids = self._graph._ids
        parent_index = self._parent[index]
        parent = None if parent_index < 0 else ids[parent_index]
        return Visit(ids[index], self._dist[index], parent)

    def __iter__(self):
        while True:
            visit = self.next()
            if visit is None:
                return
            yield visit

    # -- queries over settled state -----------------------------------------

    def settled_distance(self, node: Node) -> Optional[float]:
        index = self._graph.index_of(node)
        if not self._settled[index]:
            return None
        return self._dist[index]

    def path_indexes(self, index: int) -> List[int]:
        """Dense-index path ``index -> ... -> source`` along parents."""
        if not self._settled[index]:
            raise KeyError(f"node index {index} not settled yet")
        parent = self._parent
        path = [index]
        current = parent[index]
        while current >= 0:
            path.append(current)
            current = parent[current]
        return path

    def path_to_source(self, node: Node) -> List[Node]:
        graph = self._graph
        index = graph.index_of(node)
        if not self._settled[index]:
            raise KeyError(f"node {node!r} not settled yet")
        ids = graph._ids
        return [ids[i] for i in self.path_indexes(index)]

    def parent_weight(self, index: int) -> float:
        """Weight of the edge to ``index``'s parent, captured when the
        winning relaxation happened."""
        return self._parw[index]

    @property
    def exhausted(self) -> bool:
        return self.peek() is None


def dijkstra_for(
    graph,
    source: Node,
    reverse: bool = False,
    initial_distance: float = 0.0,
    max_distance: Optional[float] = None,
):
    """The right Dijkstra for the representation: array-backed on a
    frozen/overlay graph, the reference dict iterator otherwise."""
    if isinstance(graph, CSRGraph):
        return CSRDijkstra(
            graph,
            source,
            reverse=reverse,
            initial_distance=initial_distance,
            max_distance=max_distance,
        )
    from repro.graph.dijkstra import DijkstraIterator

    return DijkstraIterator(
        graph,
        source,
        reverse=reverse,
        initial_distance=initial_distance,
        max_distance=max_distance,
    )
