"""A compact directed graph with node weights and edge weights.

Nodes are arbitrary hashable identifiers (BANKS uses ``(table, rid)``
pairs); internally they are densely renumbered so that the hot loops in
Dijkstra run over integer indexes and small tuples rather than hash
lookups on composite keys.  The paper stresses that *"the graphs of even
large databases with millions of nodes and edges can fit in modest
amounts of memory"* — this representation stores, per node, only its id,
weight and adjacency, and per edge a single ``(neighbor, weight)`` pair
in each direction.
"""

from __future__ import annotations

import warnings
from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Tuple

from repro.errors import GraphError, UnknownNodeError

# Warn-once latch for the raw_node_weight deprecation (list, not bool,
# so the method can flip it without a global statement).
_warned_raw_node_weight: List[bool] = []


class DiGraph:
    """Weighted directed graph.

    Parallel edges are not supported: adding an edge that already exists
    replaces its weight (BANKS merges parallel FK references into a
    single weighted edge).  Self loops are rejected — a tuple never
    joins to itself in the BANKS model.
    """

    def __init__(self) -> None:
        self._index: Dict[Hashable, int] = {}
        self._ids: List[Optional[Hashable]] = []
        self._node_weights: List[float] = []
        self._succ: List[Dict[int, float]] = []
        self._pred: List[Dict[int, float]] = []
        self._edge_count = 0
        # Cached global minimum edge weight plus how many edges carry
        # exactly that weight (None = recompute on demand).  The count
        # matters: Eq. 1 re-weighing constantly *replaces* one
        # minimum-weight edge with a heavier one (a backward edge whose
        # indegree grew), and only when the last minimum-carrying edge
        # disappears is a rescan needed.  Keeps min_edge_weight — read
        # per snapshot publish for the paper's e_min normaliser — from
        # scanning all edges each time.
        self._min_edge_cache: Optional[float] = None
        self._min_edge_count = 0

    # -- construction -------------------------------------------------------

    def add_node(self, node: Hashable, weight: float = 0.0) -> int:
        """Add ``node`` (idempotent); return its internal index."""
        existing = self._index.get(node)
        if existing is not None:
            return existing
        index = len(self._ids)
        self._index[node] = index
        self._ids.append(node)
        self._node_weights.append(float(weight))
        self._succ.append({})
        self._pred.append({})
        return index

    def add_edge(self, source: Hashable, target: Hashable, weight: float) -> None:
        """Add or replace the directed edge ``source -> target``."""
        if source == target:
            raise GraphError(f"self loop rejected: {source!r}")
        if weight < 0:
            raise GraphError(f"negative edge weight rejected: {weight!r}")
        self._add_edge_at(self.add_node(source), self.add_node(target), weight)

    def _add_edge_at(
        self, source_index: int, target_index: int, weight: float
    ) -> None:
        """:meth:`add_edge` past validation and node resolution — for
        subclasses that already resolved (and took ownership of) the
        endpoint indices."""
        new_weight = float(weight)
        old_weight = self._succ[source_index].get(target_index)
        if old_weight is None:
            self._edge_count += 1
        self._succ[source_index][target_index] = new_weight
        self._pred[target_index][source_index] = new_weight
        cached = self._min_edge_cache
        if cached is not None:
            if old_weight == cached:
                self._min_edge_count -= 1
            if new_weight < cached:
                self._min_edge_cache = new_weight
                self._min_edge_count = 1
            elif new_weight == cached:
                self._min_edge_count += 1
            elif self._min_edge_count == 0:
                # Replaced the last edge carrying the minimum with a
                # heavier weight: the true minimum is unknown now.
                self._min_edge_cache = None

    # -- removal (incremental maintenance) -----------------------------------

    def remove_edge(self, source: Hashable, target: Hashable) -> None:
        """Remove the directed edge ``source -> target`` (must exist)."""
        source_index = self.index_of(source)
        target_index = self.index_of(target)
        if target_index not in self._succ[source_index]:
            raise GraphError(f"no edge {source!r} -> {target!r}")
        removed = self._succ[source_index].pop(target_index)
        del self._pred[target_index][source_index]
        self._edge_count -= 1
        if self._min_edge_cache is not None and removed == self._min_edge_cache:
            self._min_edge_count -= 1
            if self._min_edge_count == 0:
                self._min_edge_cache = None

    def remove_node(self, node: Hashable) -> None:
        """Remove ``node`` and every incident edge.

        The freed slot becomes a tombstone — other nodes keep their
        internal indexes, so live Dijkstra iterators over *other*
        regions of the graph are not invalidated.
        """
        index = self.index_of(node)
        for target_index, weight in list(self._succ[index].items()):
            del self._pred[target_index][index]
            self._edge_count -= 1
            self._note_min_edge_removed(weight)
        self._succ[index].clear()
        for source_index, weight in list(self._pred[index].items()):
            del self._succ[source_index][index]
            self._edge_count -= 1
            self._note_min_edge_removed(weight)
        self._pred[index].clear()
        self._ids[index] = None
        self._node_weights[index] = 0.0
        del self._index[node]

    def _note_min_edge_removed(self, weight: float) -> None:
        if self._min_edge_cache is not None and weight == self._min_edge_cache:
            self._min_edge_count -= 1
            if self._min_edge_count == 0:
                self._min_edge_cache = None

    # -- node access ----------------------------------------------------------

    def index_of(self, node: Hashable) -> int:
        try:
            return self._index[node]
        except KeyError:
            raise UnknownNodeError(node) from None

    def id_of(self, index: int) -> Hashable:
        return self._ids[index]

    def has_node(self, node: Hashable) -> bool:
        return node in self._index

    def node_weight(self, node: Hashable) -> float:
        return self._node_weights[self.index_of(node)]

    def set_node_weight(self, node: Hashable, weight: float) -> None:
        self._node_weights[self.index_of(node)] = float(weight)

    def nodes(self) -> Iterator[Hashable]:
        return (node for node in self._ids if node is not None)

    @property
    def num_nodes(self) -> int:
        """Live node count.

        Derived from the id-to-index map, which holds exactly the live
        nodes — the *single* source of truth.  (An earlier revision
        kept a separate ``_tombstones`` counter next to the ``None``
        slots in ``_ids``; two bookkeeping sites meant every new
        mutator — and every copy-on-write fork — had to keep them in
        sync by hand.)
        """
        return len(self._index)

    @property
    def tombstone_count(self) -> int:
        """Freed node slots kept so surviving indexes stay stable —
        the audited accessor: ``len(self._ids)`` minus the live count."""
        return len(self._ids) - len(self._index)

    @property
    def num_edges(self) -> int:
        return self._edge_count

    # -- edge access ----------------------------------------------------------

    def has_edge(self, source: Hashable, target: Hashable) -> bool:
        if source not in self._index or target not in self._index:
            return False
        return self._index[target] in self._succ[self._index[source]]

    def edge_weight(self, source: Hashable, target: Hashable) -> float:
        source_index = self.index_of(source)
        target_index = self.index_of(target)
        try:
            return self._succ[source_index][target_index]
        except KeyError:
            raise GraphError(f"no edge {source!r} -> {target!r}") from None

    def successors(self, node: Hashable) -> List[Tuple[Hashable, float]]:
        """Outgoing ``(neighbor, weight)`` pairs of ``node``."""
        return [
            (self._ids[t], w)
            for t, w in self._succ[self.index_of(node)].items()
        ]

    def predecessors(self, node: Hashable) -> List[Tuple[Hashable, float]]:
        """Incoming ``(neighbor, weight)`` pairs of ``node``."""
        return [
            (self._ids[s], w)
            for s, w in self._pred[self.index_of(node)].items()
        ]

    def out_degree(self, node: Hashable) -> int:
        return len(self._succ[self.index_of(node)])

    def in_degree(self, node: Hashable) -> int:
        return len(self._pred[self.index_of(node)])

    def edges(self) -> Iterator[Tuple[Hashable, Hashable, float]]:
        """All edges as ``(source, target, weight)`` triples."""
        for source_index, adjacency in enumerate(self._succ):
            source = self._ids[source_index]
            for target_index, weight in adjacency.items():
                yield (source, self._ids[target_index], weight)

    # -- aggregates -------------------------------------------------------------

    def min_edge_weight(self) -> float:
        """Smallest edge weight in the graph (the paper's ``e_min``
        normaliser).  Raises on an edgeless graph.

        O(1) while the maintained cache is valid; a removal of the
        minimum-carrying edge falls back to one full scan here.
        """
        cached = self._min_edge_cache
        if cached is not None:
            return cached
        best: Optional[float] = None
        carriers = 0
        for adjacency in self._succ:
            for weight in adjacency.values():
                if best is None or weight < best:
                    best = weight
                    carriers = 1
                elif weight == best:
                    carriers += 1
        if best is None:
            raise GraphError("graph has no edges")
        self._min_edge_cache = best
        self._min_edge_count = carriers
        return best

    def max_node_weight(self) -> float:
        """Largest node weight (the paper's ``n_max`` normaliser)."""
        if not self._node_weights:
            raise GraphError("graph has no nodes")
        return max(self._node_weights)

    # -- raw (index-level) views used by hot algorithm loops ----------------------

    def raw_successors(self, index: int) -> Dict[int, float]:
        return self._succ[index]

    def raw_predecessors(self, index: int) -> Dict[int, float]:
        return self._pred[index]

    def raw_node_weight(self, index: int) -> float:
        """Deprecated: the array kernel reads weights through its own
        frozen arrays, and no in-tree caller reads this anymore.  Use
        :meth:`node_weight` (id-level) instead."""
        if not _warned_raw_node_weight:
            _warned_raw_node_weight.append(True)
            warnings.warn(
                "DiGraph.raw_node_weight is deprecated: the search "
                "kernels no longer read it; use node_weight(node)",
                DeprecationWarning,
                stacklevel=2,
            )
        return self._node_weights[index]

    # -- utilities --------------------------------------------------------------

    def subgraph(self, nodes: Iterable[Hashable]) -> "DiGraph":
        """The induced subgraph on ``nodes`` (copies weights).

        Nodes and edges are inserted in *this* graph's insertion order
        (not the hash order of ``nodes``), so a subgraph — and anything
        reassembled from subgraphs, like the shard stitcher — iterates
        deterministically across processes and hash seeds.  Adjacency
        order feeds Dijkstra tie-breaking; hash-ordered insertion would
        make equal-weight path choices differ run to run.
        """
        wanted = set(nodes)
        result = DiGraph()
        for node in self.nodes():
            if node in wanted:
                result.add_node(node, self.node_weight(node))
        for node in result.nodes():
            for neighbor, weight in self.successors(node):
                if neighbor in wanted:
                    result.add_edge(node, neighbor, weight)
        return result

    def reversed(self) -> "DiGraph":
        """A copy with every edge direction flipped."""
        result = DiGraph()
        for node in self.nodes():
            result.add_node(node, self.node_weight(node))
        for source, target, weight in self.edges():
            result.add_edge(target, source, weight)
        return result

    def __contains__(self, node: Hashable) -> bool:
        return node in self._index

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DiGraph({self.num_nodes} nodes, {self.num_edges} edges)"
