"""Lazy single-source shortest-path iteration (Dijkstra).

The backward expanding search (paper Sec. 3) runs one shortest-path
computation *per keyword node*, all concurrently, multiplexed on "the
distance of the next node [each] will output".  That requires an
iterator-shaped Dijkstra: settle one node per :meth:`DijkstraIterator.next`
call, expose the tentative distance of the next settlement through
:meth:`DijkstraIterator.peek`, and remember parent pointers so the path
back to the source can be reconstructed for answer trees.

Iterators can traverse edges forward or in reverse.  The reverse mode is
the one BANKS uses: starting from a keyword node and walking *incoming*
edges finds all nodes that can reach the keyword, and the parent chain of
a settled node spells out the forward path from that node to the keyword.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Tuple

from repro.graph.digraph import DiGraph


@dataclass(frozen=True)
class Visit:
    """One settled node: its id, distance from the source, and parent.

    ``parent`` is ``None`` for the source itself.  In reverse mode the
    parent is the *next hop on the forward path toward the source*.
    """

    node: Hashable
    distance: float
    parent: Optional[Hashable]


class DijkstraIterator:
    """Incremental Dijkstra over a :class:`DiGraph`.

    Args:
        graph: the graph to traverse.
        source: starting node (a keyword node in BANKS).
        reverse: traverse incoming rather than outgoing edges.
        initial_distance: starting distance for the source; BANKS's
            "distance measure can be extended to include node weights of
            nodes matching keywords" hook — pass a per-keyword-node
            offset here.
        max_distance: stop expanding past this distance (search frontier
            budget); ``None`` means unbounded.
    """

    def __init__(
        self,
        graph: DiGraph,
        source: Hashable,
        reverse: bool = False,
        initial_distance: float = 0.0,
        max_distance: Optional[float] = None,
    ):
        self._graph = graph
        self.source = source
        self._reverse = reverse
        self._max_distance = max_distance
        source_index = graph.index_of(source)
        self._distances: Dict[int, float] = {source_index: initial_distance}
        self._parents: Dict[int, Optional[int]] = {source_index: None}
        self._settled: Dict[int, float] = {}
        # (distance, tiebreak, index); the monotone tiebreak keeps heap
        # behaviour deterministic across runs for equal distances.
        self._counter = itertools.count()
        self._heap: List[Tuple[float, int, int]] = [
            (initial_distance, next(self._counter), source_index)
        ]
        #: Edges examined across every settlement so far — read by the
        #: search kernels' profiling hooks (one O(1) addition per
        #: settlement; the inner relaxation loop stays untouched).
        self.relaxations = 0

    # -- iteration ------------------------------------------------------------

    def _neighbors(self, index: int) -> Dict[int, float]:
        if self._reverse:
            return self._graph.raw_predecessors(index)
        return self._graph.raw_successors(index)

    def _skim(self) -> None:
        """Drop stale heap entries so the top is the true next output."""
        heap = self._heap
        while heap:
            distance, _tiebreak, index = heap[0]
            if index in self._settled:
                heapq.heappop(heap)
                continue
            if self._max_distance is not None and distance > self._max_distance:
                heap.clear()
                continue
            return

    def peek(self) -> Optional[float]:
        """Distance of the node :meth:`next` would output, or ``None``."""
        self._skim()
        if not self._heap:
            return None
        return self._heap[0][0]

    def next(self) -> Optional[Visit]:
        """Settle and return the nearest unsettled node, or ``None``."""
        self._skim()
        if not self._heap:
            return None
        distance, _tiebreak, index = heapq.heappop(self._heap)
        self._settled[index] = distance
        neighbors = self._neighbors(index)
        self.relaxations += len(neighbors)
        for neighbor, weight in neighbors.items():
            if neighbor in self._settled:
                continue
            candidate = distance + weight
            known = self._distances.get(neighbor)
            if known is None or candidate < known:
                self._distances[neighbor] = candidate
                self._parents[neighbor] = index
                heapq.heappush(
                    self._heap, (candidate, next(self._counter), neighbor)
                )
        parent_index = self._parents[index]
        parent = (
            None if parent_index is None else self._graph.id_of(parent_index)
        )
        return Visit(self._graph.id_of(index), distance, parent)

    def __iter__(self):
        while True:
            visit = self.next()
            if visit is None:
                return
            yield visit

    # -- queries over settled state ----------------------------------------------

    def settled_distance(self, node: Hashable) -> Optional[float]:
        """Final distance of ``node`` if already settled, else ``None``."""
        return self._settled.get(self._graph.index_of(node))

    def path_to_source(self, node: Hashable) -> List[Hashable]:
        """The node sequence from ``node`` to the source along parents.

        In reverse mode this is the *forward* path ``node -> ... ->
        source`` in the original graph — exactly the root-to-keyword path
        an answer tree needs.
        """
        index = self._graph.index_of(node)
        if index not in self._settled:
            raise KeyError(f"node {node!r} not settled yet")
        path: List[Hashable] = []
        current: Optional[int] = index
        while current is not None:
            path.append(self._graph.id_of(current))
            current = self._parents[current]
        return path

    @property
    def exhausted(self) -> bool:
        return self.peek() is None


def shortest_path_lengths(
    graph: DiGraph,
    source: Hashable,
    reverse: bool = False,
    max_distance: Optional[float] = None,
) -> Dict[Hashable, float]:
    """Run an iterator to exhaustion; return ``{node: distance}``."""
    iterator = DijkstraIterator(
        graph, source, reverse=reverse, max_distance=max_distance
    )
    return {visit.node: visit.distance for visit in iterator}
