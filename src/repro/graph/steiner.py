"""Exact minimum-weight rooted connection trees (group Steiner oracle).

BANKS answers are rooted directed trees containing at least one node from
each keyword group — a *group Steiner tree*.  Computing the minimum one
is NP-complete (the paper says so and settles for a heuristic), but the
classic Dreyfus–Wagner style dynamic program is exact and perfectly
feasible on the small graphs used in tests and ablation benchmarks:

    DP[mask][v] = weight of the cheapest tree rooted at v that contains
                  at least one node from every group in ``mask``

with two transitions — merging two subtrees at the same root, and
prepending an edge ``v -> u`` to a tree rooted at ``u`` (relaxed with a
multi-source Dijkstra per mask).  Complexity O(3^k·n + 2^k·m log n) for
``k`` groups.

This module is the *oracle* against which the heuristic backward
expanding search is property-tested, and the baseline for the
output-heap-quality ablation.  It is not used on large graphs.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Hashable, List, Optional, Sequence, Set, Tuple

from repro.errors import GraphError
from repro.graph.digraph import DiGraph

_INF = float("inf")


@dataclass(frozen=True)
class SteinerResult:
    """An exact minimum connection tree.

    Attributes:
        weight: total weight of the tree's edges.
        root: the root (information node).
        edges: directed edges of the tree as ``(source, target)`` pairs.
        nodes: every node in the tree.
    """

    weight: float
    root: Hashable
    edges: Tuple[Tuple[Hashable, Hashable], ...]
    nodes: Tuple[Hashable, ...]


def steiner_tree(
    graph: DiGraph,
    groups: Sequence[Set[Hashable]],
    root: Optional[Hashable] = None,
) -> Optional[SteinerResult]:
    """Exact minimum-weight rooted tree covering one node per group.

    Args:
        graph: the (directed, weighted) data graph.
        groups: non-empty keyword node groups; the tree must contain at
            least one member of each.
        root: if given, the tree must be rooted there; otherwise the best
            root overall is chosen.

    Returns:
        The optimal tree, or ``None`` when no connecting tree exists.
    """
    if not groups:
        raise GraphError("at least one group is required")
    for group in groups:
        if not group:
            return None
        for member in group:
            if not graph.has_node(member):
                raise GraphError(f"group member {member!r} not in graph")

    n = graph.num_nodes
    k = len(groups)
    full_mask = (1 << k) - 1

    # dp[mask] is a list over node indexes; choice[mask][v] records how the
    # optimum was achieved for backtracking.
    dp: List[List[float]] = [[_INF] * n for _ in range(full_mask + 1)]
    choice: List[List[Optional[Tuple]]] = [
        [None] * n for _ in range(full_mask + 1)
    ]

    for group_number, group in enumerate(groups):
        bit = 1 << group_number
        for member in group:
            index = graph.index_of(member)
            if 0.0 < dp[bit][index]:
                dp[bit][index] = 0.0
                choice[bit][index] = ("terminal",)

    counter = itertools.count()
    for mask in range(1, full_mask + 1):
        row = dp[mask]
        choice_row = choice[mask]
        # Merge transition: split mask into proper complementary submasks.
        submask = (mask - 1) & mask
        while submask:
            other = mask ^ submask
            if submask < other:  # consider each unordered pair once
                left, right = dp[submask], dp[other]
                for v in range(n):
                    combined = left[v] + right[v]
                    if combined < row[v]:
                        row[v] = combined
                        choice_row[v] = ("merge", submask, other)
            submask = (submask - 1) & mask

        # Edge transition: Dijkstra from all current entries, relaxing
        # dp[mask][v] = dp[mask][u] + w(v -> u) along predecessors of u.
        heap: List[Tuple[float, int, int]] = [
            (weight, next(counter), v)
            for v, weight in enumerate(row)
            if weight < _INF
        ]
        heapq.heapify(heap)
        settled = [False] * n
        while heap:
            distance, _tiebreak, u = heapq.heappop(heap)
            if settled[u] or distance > row[u]:
                continue
            settled[u] = True
            for v, weight in graph.raw_predecessors(u).items():
                candidate = distance + weight
                if candidate < row[v]:
                    row[v] = candidate
                    choice_row[v] = ("edge", u)
                    heapq.heappush(heap, (candidate, next(counter), v))

    # Pick the root.
    final = dp[full_mask]
    if root is not None:
        root_index = graph.index_of(root)
        if final[root_index] == _INF:
            return None
        best_index = root_index
    else:
        best_index = min(range(n), key=final.__getitem__, default=None)
        if best_index is None or final[best_index] == _INF:
            return None

    edges: Set[Tuple[int, int]] = set()
    nodes: Set[int] = set()

    def backtrack(mask: int, v: int) -> None:
        nodes.add(v)
        how = choice[mask][v]
        if how is None or how[0] == "terminal":
            return
        if how[0] == "merge":
            _tag, submask, other = how
            backtrack(submask, v)
            backtrack(other, v)
            return
        _tag, u = how
        edges.add((v, u))
        backtrack(mask, u)

    backtrack(full_mask, best_index)

    id_of = graph.id_of
    return SteinerResult(
        weight=final[best_index],
        root=id_of(best_index),
        edges=tuple(sorted(
            ((id_of(s), id_of(t)) for s, t in edges),
            key=repr,
        )),
        nodes=tuple(sorted((id_of(v) for v in nodes), key=repr)),
    )
