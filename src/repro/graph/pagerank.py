"""Authority-transfer node prestige (PageRank power iteration).

The paper sets node prestige to plain indegree but explicitly plans the
PageRank-style extension: *"Extensions to handle transfer of prestige (as
is done, e.g., in Google's PageRank) can be easily added to the model"*
(Sec. 2.2) and *"We are investigating authority transfer ... wherein
nodes pointed to by heavy nodes become heavier"* (Sec. 7).  This module
implements that extension; :class:`repro.core.weights.WeightPolicy` can
select it instead of indegree prestige.
"""

from __future__ import annotations

from typing import Dict, Hashable

from repro.errors import GraphError
from repro.graph.digraph import DiGraph


def pagerank(
    graph: DiGraph,
    damping: float = 0.85,
    max_iterations: int = 100,
    tolerance: float = 1.0e-9,
) -> Dict[Hashable, float]:
    """PageRank scores for every node of ``graph``.

    Dangling nodes (no outgoing edges) redistribute their mass uniformly,
    the standard fix.  Scores sum to 1.

    Args:
        graph: directed graph; edge weights are ignored (pure link
            structure, as in the original PageRank).
        damping: probability of following a link vs. teleporting.
        max_iterations: hard cap on power iterations.
        tolerance: L1 convergence threshold.
    """
    if not 0.0 < damping < 1.0:
        raise GraphError(f"damping must be in (0, 1), got {damping}")
    n = graph.num_nodes
    if n == 0:
        return {}

    scores = [1.0 / n] * n
    out_degrees = [len(graph.raw_successors(i)) for i in range(n)]

    for _iteration in range(max_iterations):
        dangling_mass = sum(
            score for score, degree in zip(scores, out_degrees) if degree == 0
        )
        base = (1.0 - damping) / n + damping * dangling_mass / n
        next_scores = [base] * n
        for u in range(n):
            degree = out_degrees[u]
            if degree == 0:
                continue
            share = damping * scores[u] / degree
            for v in graph.raw_successors(u):
                next_scores[v] += share
        delta = sum(abs(a - b) for a, b in zip(scores, next_scores))
        scores = next_scores
        if delta < tolerance:
            break

    return {graph.id_of(i): scores[i] for i in range(n)}
