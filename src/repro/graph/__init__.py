"""Directed-graph substrate for the BANKS data graph.

:mod:`repro.graph.digraph` is a compact adjacency-list digraph with node
and edge weights; :mod:`repro.graph.dijkstra` provides the *lazy*
single-source shortest-path iterator that the backward expanding search
multiplexes (Fig. 3 of the paper); :mod:`repro.graph.steiner` is an exact
directed-Steiner-tree oracle used by tests and the output-heap ablation;
:mod:`repro.graph.pagerank` implements the authority-transfer prestige
the paper sketches as future work (Sec. 7).
"""

from repro.graph.digraph import DiGraph
from repro.graph.dijkstra import DijkstraIterator, Visit, shortest_path_lengths
from repro.graph.pagerank import pagerank
from repro.graph.steiner import (
    SteinerResult,
    steiner_tree,
)

__all__ = [
    "DiGraph",
    "DijkstraIterator",
    "SteinerResult",
    "Visit",
    "pagerank",
    "shortest_path_lengths",
    "steiner_tree",
]
