"""Sharded-search benchmark: scatter-gather vs single-engine dispatch.

Shared by the ``banks bench-shard`` CLI command and
``benchmarks/bench_shard.py``.  Two questions, answered on the same
Zipf-skewed workload the serving benchmark uses:

1. **Parity** — does the gathered global top-k equal single-engine
   search (same roots, scores within 1e-9)?  Compared on relevance
   order, which is deterministic for both sides.  Three grades are
   reported:

   * *strict* — same roots, same scores;
   * *score-equal* — same relevance sequence (strict modulo exact-score
     ties, e.g. interchangeable ``lineitem`` rows in the TPC-D data,
     where which tied root makes the cut is arbitrary for any
     incremental engine);
   * *never-worse* — the gathered relevance at every rank is >= the
     single engine's.  The single engine's output heap emits in only
     *approximately* decreasing relevance, so the gather occasionally
     surfaces a strictly better answer the single pass missed; what it
     must never do is lose one.

   On the bibliography battery strict parity holds outright.
2. **Throughput** — how does ``--shards N`` QPS compare with
   ``--shards 1`` at a given client concurrency, under each dispatch
   policy?

The throughput comparison is honest about where the win comes from —
and where it does not.  *Gather* dispatch (exact scatter-gather) never
beats single-engine dispatch on wall-clock: a shard must emit its
candidates or exhaust its expansion to prove its partition holds no
better root, and that lower bound routinely costs as much as the
single engine's whole early-stopping search (measured 0.65x–3.6x per
query); its value is the partitioned mechanics, not QPS.  *Route*
dispatch sends each query whole to one forked worker — N workers
answer N queries concurrently, so QPS scales with cores; that is the
policy the >= 1.5x acceptance bar binds.  Both numbers are reported;
on a 1-core machine even route shows ~1x, which the report makes
legible by printing the CPU count next to the ratios.
"""

from __future__ import annotations

import os
import statistics
import threading
import time
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.core.banks import BANKS
from repro.serve.bench import zipfian_workload
from repro.shard.router import ShardRouter


def _signature(answers) -> List[Tuple]:
    """Relevance-ordered (root, score) pairs; ties broken by root repr
    so both sides of the parity check order deterministically."""
    ranked = sorted(answers, key=lambda a: (-a.relevance, repr(a.tree.root)))
    return [(a.tree.root, round(a.relevance, 9)) for a in ranked]


@dataclass
class ShardBenchReport:
    """Outcome of one sharded-vs-single comparison run."""

    dataset: str
    requests: int
    distinct_queries: int
    concurrency: int
    shards: int
    backend: str
    k: int
    cpu_count: int
    cut_edges: int
    cut_fraction: float
    single_seconds: float
    gather_seconds: float
    route_seconds: float
    single_median_ms: float
    gather_median_ms: float
    route_median_ms: float
    parity_total: int
    parity_matched: int
    score_parity_matched: int
    never_worse_matched: int
    route_parity_matched: int

    @property
    def single_qps(self) -> float:
        return self.requests / self.single_seconds if self.single_seconds else 0.0

    @property
    def gather_qps(self) -> float:
        return self.requests / self.gather_seconds if self.gather_seconds else 0.0

    @property
    def route_qps(self) -> float:
        return self.requests / self.route_seconds if self.route_seconds else 0.0

    @property
    def speedup_gather(self) -> float:
        if self.gather_seconds <= 0:
            return float("inf")
        return self.single_seconds / self.gather_seconds

    @property
    def speedup_route(self) -> float:
        if self.route_seconds <= 0:
            return float("inf")
        return self.single_seconds / self.route_seconds

    @property
    def parity_ok(self) -> bool:
        """Gather never lost relevance; route matched score-for-score."""
        return (
            self.never_worse_matched == self.parity_total
            and self.route_parity_matched == self.parity_total
        )

    def render(self) -> str:
        lines = [
            f"dataset            : {self.dataset}",
            f"requests           : {self.requests} "
            f"({self.distinct_queries} distinct, Zipf-skewed, k={self.k})",
            f"concurrency        : {self.concurrency} clients",
            f"shards             : {self.shards} ({self.backend} backend, "
            f"{self.cpu_count} CPU core(s))",
            f"cut edges          : {self.cut_edges} "
            f"({self.cut_fraction:.0%} of directed edges)",
            f"--shards 1 dispatch: {self.single_seconds:.3f} s "
            f"({self.single_qps:.1f} qps, median {self.single_median_ms:.0f} ms)",
            f"gather dispatch    : {self.gather_seconds:.3f} s "
            f"({self.gather_qps:.1f} qps, median {self.gather_median_ms:.0f} ms, "
            f"{self.speedup_gather:.2f}x)",
            f"route dispatch     : {self.route_seconds:.3f} s "
            f"({self.route_qps:.1f} qps, median {self.route_median_ms:.0f} ms, "
            f"{self.speedup_route:.2f}x)",
            f"top-{self.k} gather parity vs single engine: "
            f"strict {self.parity_matched}/{self.parity_total}, "
            f"score-equal {self.score_parity_matched}/{self.parity_total}, "
            f"never-worse {self.never_worse_matched}/{self.parity_total}",
            f"top-{self.k} route parity vs single engine: "
            f"score-equal {self.route_parity_matched}/{self.parity_total}"
            f"{'' if self.parity_ok else '  REGRESSION'}",
        ]
        return "\n".join(lines)


def _timed_run(
    router: ShardRouter,
    workload: Sequence[str],
    concurrency: int,
    k: int,
) -> Tuple[float, float]:
    """Drive ``workload`` through ``router``; (wall seconds, median ms)."""
    latencies: List[float] = []
    latencies_lock = threading.Lock()
    errors: List[BaseException] = []

    def client(stream: Sequence[str]) -> None:
        for query in stream:
            started = time.perf_counter()
            try:
                router.search(query, max_results=k)
            except BaseException as error:  # noqa: BLE001 - reported
                errors.append(error)
                return
            waited = time.perf_counter() - started
            with latencies_lock:
                latencies.append(waited)

    threads = [
        threading.Thread(target=client, args=(workload[i::concurrency],))
        for i in range(concurrency)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    if errors:
        raise errors[0]
    median = statistics.median(latencies) if latencies else 0.0
    return elapsed, 1000.0 * median


def run_shard_benchmark(
    database,
    queries: Sequence[str],
    dataset: str = "",
    requests: int = 48,
    concurrency: int = 8,
    shards: int = 4,
    backend: str = "auto",
    k: int = 5,
    seed: int = 0,
    strategy: str = "hash",
) -> ShardBenchReport:
    """Measure ``--shards 1`` vs ``--shards N`` and check parity.

    Both sides answer the same Zipfian workload through the same
    scatter-gather code path; the parity check runs every distinct
    query through the N-shard router and a plain single facade.
    """
    workload = zipfian_workload(queries, requests, seed=seed)

    # Routers stand up through the cluster layer — the construction
    # path ``banks serve --shards`` uses — so the measured deployment
    # is the served one.
    from repro.cluster import Cluster, ClusterSpec

    def sharded_cluster(n: int, dispatch: str = "gather") -> Cluster:
        return Cluster(
            ClusterSpec(
                topology="sharded",
                shards=n,
                shard_backend=backend,
                shard_strategy=strategy,
                dispatch=dispatch,
            ),
            database=database,
        )

    with sharded_cluster(1) as single_cluster:
        single_seconds, single_median = _timed_run(
            single_cluster.backend, workload, concurrency, k
        )

    facade = BANKS(database)

    with sharded_cluster(shards, dispatch="route") as route_cluster:
        route_router = route_cluster.backend
        route_seconds, route_median = _timed_run(
            route_router, workload, concurrency, k
        )
        route_matched = 0
        for query in queries:
            routed = _signature(route_router.search(query, max_results=k))
            single = _signature(facade.search(query, max_results=k))
            # Score-sequence comparison: a routed query runs the same
            # full search, but on the stitched graph, whose different
            # (weight-identical) adjacency order may pick a different
            # member of an exact-score tie group at the k boundary.
            if [s for _r, s in routed] == [s for _r, s in single]:
                route_matched += 1

    with sharded_cluster(shards) as gather_cluster:
        router = gather_cluster.backend
        gather_seconds, gather_median = _timed_run(
            router, workload, concurrency, k
        )
        matched = 0
        score_matched = 0
        never_worse = 0
        for query in queries:
            sharded = _signature(router.search(query, max_results=k))
            single = _signature(facade.search(query, max_results=k))
            if sharded == single:
                matched += 1
            shard_scores = [s for _r, s in sharded]
            single_scores = [s for _r, s in single]
            if shard_scores == single_scores:
                score_matched += 1
            if len(shard_scores) >= len(single_scores) and all(
                ours >= theirs - 1e-9
                for ours, theirs in zip(shard_scores, single_scores)
            ):
                never_worse += 1
        description = router.describe()

    return ShardBenchReport(
        dataset=dataset or database.name,
        requests=requests,
        distinct_queries=len(queries),
        concurrency=concurrency,
        shards=shards,
        backend=description["backend"],
        k=k,
        cpu_count=os.cpu_count() or 1,
        cut_edges=description["cut_edges"],
        cut_fraction=description["cut_fraction"],
        single_seconds=single_seconds,
        gather_seconds=gather_seconds,
        route_seconds=route_seconds,
        single_median_ms=single_median,
        gather_median_ms=gather_median,
        route_median_ms=route_median,
        parity_total=len(queries),
        parity_matched=matched,
        score_parity_matched=score_matched,
        never_worse_matched=never_worse,
        route_parity_matched=route_matched,
    )
