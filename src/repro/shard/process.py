"""Process-backed shard workers: search beyond one GIL.

Pure-Python graph search does not parallelise across threads — the GIL
serialises every shard's CPU work, making a threaded scatter a work
*multiplier*, not a speedup.  This module runs each
:class:`~repro.shard.searcher.ShardSearcher` inside a forked child
process: the parent builds the partition, the stitched graph and every
searcher first, then forks, so each child inherits the whole read-only
state copy-on-write and no per-shard serialisation or rebuild happens.

The parent-side :class:`ProcessShardWorker` exposes the searcher's
``resolve`` / ``search`` methods over a pipe; the calling thread blocks
in ``recv`` *with the GIL released*, so N shard processes genuinely
search N-way parallel on N cores.

Fork is a hard requirement (``spawn`` would re-import and rebuild the
world in every child): :func:`fork_available` gates the backend, and
the router falls back to in-process threads where fork is missing
(Windows) — identical results, no CPU scaling.

Fork safety: workers must be created *before* any thread is started
(forking a multi-threaded parent can clone held locks).  The router
observes this by forking workers before it constructs engines or pools.
"""

from __future__ import annotations

import multiprocessing
import signal
import threading
import traceback
from typing import Any, List

from repro.errors import ShardError

#: Message telling a worker process to exit its loop.
_SHUTDOWN = None


def fork_available() -> bool:
    """Whether this platform supports the fork start method."""
    return "fork" in multiprocessing.get_all_start_methods()


def _serve_loop(searcher, connection) -> None:  # pragma: no cover - child
    """Child-process request loop (runs in the forked worker)."""
    # A terminal Ctrl-C signals the whole foreground process group;
    # shutdown is the parent's job (pipe sentinel, then SIGTERM), so
    # the worker ignores SIGINT instead of dying mid-request with a
    # KeyboardInterrupt traceback.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    while True:
        try:
            message = connection.recv()
        except (EOFError, OSError):
            break
        if message is _SHUTDOWN:
            break
        method_name, args, kwargs = message
        try:
            method = getattr(searcher, method_name)
            connection.send((True, method(*args, **kwargs)))
        except Exception:
            connection.send((False, traceback.format_exc(limit=8)))
    connection.close()


class ProcessWorkerProxy:
    """Parent-side proxy for one forked request/response worker.

    The generic transport both the shard and the replica workers ride:
    each call is one request/response round-trip on a private pipe,
    serialised by a lock (one in-flight request per child process; the
    calling thread blocks in ``recv`` with the GIL released).
    Subclasses set :attr:`error_type` (what transport failures raise)
    and pass a human ``label`` (``"shard 3"``, ``"replica 1"``) for
    the messages.
    """

    #: Raised for transport-level failures (stopped proxy, dead child,
    #: remote traceback).
    error_type: type = ShardError

    def __init__(self, target: Any, label: str, name: str):
        if not fork_available():
            raise self.error_type(
                f"the process {label} worker needs the fork start method; "
                "use the thread backend on this platform"
            )
        self.label = label
        context = multiprocessing.get_context("fork")
        self._connection, child_connection = context.Pipe()
        self._process = context.Process(
            target=_serve_loop,
            args=(target, child_connection),
            name=name,
            daemon=True,
        )
        self._process.start()
        child_connection.close()
        self._lock = threading.Lock()
        self._stopped = False

    def _call(self, method_name: str, *args, **kwargs) -> Any:
        with self._lock:
            if self._stopped:
                raise self.error_type(f"{self.label} worker is stopped")
            try:
                self._connection.send((method_name, args, kwargs))
                ok, payload = self._connection.recv()
            except (EOFError, OSError, BrokenPipeError) as error:
                raise self.error_type(
                    f"{self.label} worker process died "
                    f"({type(error).__name__})"
                ) from None
        if not ok:
            raise self.error_type(
                f"{self.label} search failed in worker:\n{payload}"
            )
        return payload

    # -- lifecycle ------------------------------------------------------------

    def stop(self, timeout: float = 5.0) -> None:
        """Shut the worker down; escalate to SIGTERM if it lingers."""
        with self._lock:
            if self._stopped:
                self._process.join(timeout)
                return
            self._stopped = True
            try:
                self._connection.send(_SHUTDOWN)
            except (OSError, BrokenPipeError):
                pass
            self._connection.close()
        self._process.join(timeout)
        if self._process.is_alive():  # pragma: no cover - defensive
            self._process.terminate()
            self._process.join(timeout)

    @property
    def alive(self) -> bool:
        return self._process.is_alive() and not self._stopped

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "alive" if self.alive else "dead"
        return f"{type(self).__name__}({self.label}, {state})"


class ProcessShardWorker(ProcessWorkerProxy):
    """Parent-side proxy for one forked shard worker.

    Exposes the searcher methods the router scatters to (one in-flight
    request per shard process — the shard engine in front of it runs
    one worker thread, matching one CPU-bound child).
    """

    def __init__(self, searcher):
        self.shard_id = searcher.shard_id
        super().__init__(
            searcher,
            label=f"shard {searcher.shard_id}",
            name=f"shard-worker-{searcher.shard_id}",
        )

    # -- the searcher surface the router scatters to --------------------------

    def resolve(self, query) -> List[set]:
        return self._call("resolve", query)

    def search(
        self, query=None, trace=None, trace_parent=None, profile=None, **kwargs
    ):
        """Search in the worker; carry the trace across the pipe.

        A live trace cannot cross the fork boundary, so the proxy ships
        the serialized context (``trace.ctx``) and ``profile=True``
        instead; the child-side searcher replies with an
        ``(answers, {"spans": ..., "profile": ...})`` envelope whose
        spans are absorbed (re-parented under ``trace_parent``) and
        whose counters merge into the caller's profile.
        """
        if trace is None and profile is None:
            return self._call("search", query, **kwargs)
        if trace is not None:
            kwargs["trace"] = trace.ctx(trace_parent)
        if profile is not None:
            kwargs["profile"] = True
        answers, obs = self._call("search", query, **kwargs)
        if trace is not None:
            trace.absorb(obs.get("spans") or [])
        if profile is not None:
            profile.merge_dict(obs.get("profile") or {})
        return answers

    def apply_delta(self, delta, owner: int) -> bool:
        """Replay one routed delta into the worker's private replica.

        Serialised with searches by the per-worker pipe lock, so the
        child applies it atomically between requests.
        """
        return self._call("apply_delta", delta, owner)

    def move_node(self, node, source: int, target: int) -> bool:
        """Replay one rebalance move into the worker's private replica
        (ownership set + index slice; same pipe serialisation as
        :meth:`apply_delta`)."""
        return self._call("move_node", node, source, target)
