"""``repro.shard`` — sharded scatter-gather keyword search.

Partition the BANKS data graph across N shards, scatter each keyword
query to per-shard :class:`~repro.serve.engine.QueryEngine`-backed
searchers, and gather the per-shard answer trees into one global top-k
ranked by the paper's answer-relevance score:

* :mod:`repro.shard.partition` — :class:`GraphPartitioner` and the
  pluggable placement strategies; records cut edges as federation
  tuple links;
* :mod:`repro.shard.stitch` — lossless reassembly of the global search
  graph from shard subgraphs plus cut links;
* :mod:`repro.shard.searcher` — one shard's partitioned inverted index
  and root-restricted search;
* :mod:`repro.shard.process` — forked worker processes, one per shard
  (CPU scaling past the GIL);
* :mod:`repro.shard.router` — the :class:`ShardRouter` front end;
* :mod:`repro.shard.bench` — the ``banks bench-shard`` measurement.

The router also serves a *changing* database: mutations derive
:class:`~repro.store.delta.Delta` records (see :mod:`repro.store`)
that are routed to the owning shard — index slice, ownership set,
cut-edge records and that shard's engine state move; everything else
stays put.  :meth:`~repro.shard.router.ShardRouter.apply_epochs`
consumes epochs published elsewhere, which is how a
:class:`~repro.store.wal.ReplicaFollower` keeps a whole forked router
(a replicated hot-shard deployment) caught up from a primary's WAL.

Dispatch policies and the measured gather-vs-route finding (exact
scatter-gather buys partitioned mechanics, routing buys QPS) are
documented in ``docs/ARCHITECTURE.md``; the operator knobs
(``banks serve --shards/--dispatch/--shard-backend``) in
``docs/OPERATIONS.md``.
"""

from repro.shard.partition import (
    CutEdge,
    GraphPartitioner,
    Partition,
    hash_strategy,
    round_robin_strategy,
    table_strategy,
)
from repro.shard.process import (
    ProcessShardWorker,
    ProcessWorkerProxy,
    fork_available,
)
from repro.shard.router import ShardAnswer, ShardRouter
from repro.shard.searcher import ShardSearcher
from repro.shard.stitch import graphs_equal, stats_of, stitch_graph

__all__ = [
    "CutEdge",
    "GraphPartitioner",
    "Partition",
    "ProcessShardWorker",
    "ProcessWorkerProxy",
    "ShardAnswer",
    "ShardRouter",
    "ShardSearcher",
    "fork_available",
    "graphs_equal",
    "hash_strategy",
    "round_robin_strategy",
    "stats_of",
    "stitch_graph",
    "table_strategy",
]
