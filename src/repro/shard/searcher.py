"""One shard's searcher: partitioned index, root-restricted search.

Answer-space partitioning: every shard searches the same stitched
graph, but a shard only *emits* answers whose information node (the
tree root) it owns — :attr:`SearchConfig.allowed_root_nodes` carries
the owned set into the backward expanding search.  Since every node is
owned by exactly one shard, the union of per-shard emissions covers
every answer exactly once (up to re-rootings of the same undirected
tree, which the gather's top-k merge deduplicates).

Keyword resolution is partitioned for real: each shard holds an
inverted index restricted to its own tuples
(:meth:`~repro.text.inverted_index.InvertedIndex.restricted_to`), and
the per-term node sets it resolves are intersected with the owned set —
so the union of per-shard resolutions equals the unsharded resolution
node-for-node.

Fuzzy (edit-distance) expansion is the one resolution feature that does
not decompose: it triggers on *absence from the vocabulary*, and a term
can be absent from one shard's vocabulary while present in another's.
The searcher therefore does not offer it; the router documents the gap.
"""

from __future__ import annotations

from dataclasses import replace
from time import perf_counter
from typing import AbstractSet, List, Optional, Sequence, Set, Union

from repro.core.model import GraphStats, link_tables
from repro.core.query import ParsedQuery, parse_query, resolve_term
from repro.core.scoring import Scorer, ScoringConfig
from repro.core.search import (
    ScoredAnswer,
    SearchConfig,
    backward_expanding_search,
)
from repro.graph.digraph import DiGraph
from repro.obs import SearchProfile, Trace
from repro.relational.database import Database, RID
from repro.shard.stitch import stats_of
from repro.store.delta import Delta, apply_graph_delta, replay_delta
from repro.text.inverted_index import InvertedIndex


class ShardSearcher:
    """Search duties of one shard.

    Args:
        shard_id: this shard's index in the partition.
        database: the (shared, read-only) database — needed for
            metadata expansion during resolution.
        graph: the stitched global search graph.
        stats: the stitched graph's scoring normalisers.
        owned_nodes: the nodes this shard owns (allowed answer roots).
        full_index: the database-wide inverted index to restrict; the
            router builds it once and every shard slices it.
        scoring: scoring parameters (default: the paper's best).
        search_config: search knobs; the owned set and the link-table
            root exclusion are applied on top.
        include_metadata: let keywords match table/column names.
    """

    def __init__(
        self,
        shard_id: int,
        database: Database,
        graph: DiGraph,
        stats: GraphStats,
        owned_nodes: AbstractSet[RID],
        full_index: InvertedIndex,
        scoring: Optional[ScoringConfig] = None,
        search_config: Optional[SearchConfig] = None,
        include_metadata: bool = True,
    ):
        self.shard_id = shard_id
        self.database = database
        self.graph = graph
        # Kept by reference: the router's Partition shares this very
        # set, so an ownership change lands in one place (thread mode)
        # or is replayed into the worker's private copy (process mode).
        self.owned_nodes = owned_nodes
        self.include_metadata = include_metadata
        self._scoring_config = scoring or ScoringConfig()
        self._stats_dirty = False
        self.scorer = Scorer(stats, self._scoring_config)
        self.index = full_index.restricted_to(owned_nodes)
        # The full index rides along for route-dispatch (whole queries
        # answered by one shard worker).  In a forked worker it is
        # inherited copy-on-write; in thread mode it is a shared
        # reference — either way it costs no extra build or memory.
        self.full_index = full_index
        config = search_config or SearchConfig()
        if not config.excluded_root_tables:
            config = replace(config, excluded_root_tables=link_tables(database))
        self.search_config = replace(config, allowed_root_nodes=owned_nodes)

    # -- mutation (delta routing) ---------------------------------------------

    def apply_delta(self, delta: Delta, owner: int) -> bool:
        """Replay one routed delta into this searcher's *own* replica.

        Called inside a forked worker process (each worker holds
        private fork-inherited copies of the database, the indexes and
        the stitched graph).  The relational + index part replays in
        the canonical order; the graph part applies idempotently; the
        ownership and normaliser bookkeeping follows.  In thread mode
        the router updates the shared structures itself and calls only
        :meth:`note_delta`.
        """
        indexes = [self.full_index]
        if owner == self.shard_id and self.index is not self.full_index:
            indexes.append(self.index)
        replay_delta(self.database, indexes, delta)
        apply_graph_delta(self.graph, delta)
        self.note_delta(delta, owner)
        return True

    def move_node(self, node: RID, source: int, target: int) -> bool:
        """Follow one rebalance move: ownership and index-slice
        maintenance for this searcher's side of it.

        The stitched graph, the database and the full index are
        untouched — a move changes *ownership*, nothing else.  Gaining
        the node means adding its postings to this shard's index slice
        and (process mode, where the ownership set is a private copy)
        its id to the owned set; losing it is the reverse.  Set and
        index operations are idempotent, so thread mode — where the
        owned set is the very object the partition already updated —
        may broadcast this to every searcher safely.
        """
        if target == self.shard_id:
            self.owned_nodes.add(node)
            self.index.add_row(*node)
        elif source == self.shard_id:
            self.owned_nodes.discard(node)
            self.index.remove_row(*node)
        return True

    def note_delta(self, delta: Delta, owner: int) -> None:
        """Bookkeeping after a delta reached this searcher's graph:
        ownership set maintenance plus a lazy normaliser refresh.
        Idempotent, so shared-state (thread) mode may broadcast it."""
        if delta.kind == "insert" and owner == self.shard_id:
            self.owned_nodes.add(delta.node)
        elif delta.kind == "delete":
            self.owned_nodes.discard(delta.node)
        self._stats_dirty = True

    def _refresh_stats(self) -> None:
        """Re-derive the scoring normalisers after mutations (lazy,
        O(E) — mirrors :class:`~repro.core.incremental.IncrementalBANKS`).
        Delegates to :func:`repro.shard.stitch.stats_of`, the one
        normaliser implementation score parity depends on."""
        if not self._stats_dirty:
            return
        self.scorer = Scorer(stats_of(self.graph), self._scoring_config)
        self._stats_dirty = False

    # -- resolution -----------------------------------------------------------

    def resolve(self, query: Union[str, ParsedQuery]) -> List[Set[RID]]:
        """Per-term node sets, restricted to this shard's tuples."""
        parsed = parse_query(query) if isinstance(query, str) else query
        return [
            resolve_term(
                term,
                self.index,
                self.database,
                include_metadata=self.include_metadata,
            )
            & self.owned_nodes
            for term in parsed.terms
        ]

    # -- search ---------------------------------------------------------------

    def _prepare_search(
        self,
        query,
        keyword_node_sets,
        max_results,
        unrestricted,
        config_overrides,
    ):
        """Resolve the query (if needed) and finalise the config —
        shared by :meth:`search` and :meth:`search_iter`."""
        if keyword_node_sets is None:
            if query is None:
                raise ValueError("need a query or keyword_node_sets")
            if unrestricted:
                parsed = (
                    parse_query(query) if isinstance(query, str) else query
                )
                keyword_node_sets = [
                    resolve_term(
                        term,
                        self.full_index,
                        self.database,
                        include_metadata=self.include_metadata,
                    )
                    for term in parsed.terms
                ]
            else:
                keyword_node_sets = self.resolve(query)
        config = self.search_config
        if unrestricted:
            config_overrides.setdefault("allowed_root_nodes", None)
        if max_results is not None:
            config_overrides["max_results"] = max_results
        if config_overrides:
            config = replace(config, **config_overrides)
        return keyword_node_sets, config

    def search_iter(
        self,
        query: Union[str, ParsedQuery, None] = None,
        keyword_node_sets: Optional[Sequence[Set[RID]]] = None,
        max_results: Optional[int] = None,
        unrestricted: bool = False,
        profile=None,
        **config_overrides,
    ):
        """Stream :class:`ScoredAnswer` in kernel emission order.

        The shard-level answer-iterator protocol (in-process callers
        only — a generator cannot cross the fork pipe): same answers as
        :meth:`search`, one at a time, with early termination stopping
        the expansion.  ``profile.expansion_seconds`` covers exactly
        the consumed prefix.
        """
        self._refresh_stats()
        keyword_node_sets, config = self._prepare_search(
            query, keyword_node_sets, max_results, unrestricted,
            config_overrides,
        )
        kernel_start = perf_counter() if profile is not None else 0.0
        try:
            yield from backward_expanding_search(
                self.graph, keyword_node_sets, self.scorer, config,
                profile=profile,
            )
        finally:
            if profile is not None:
                profile.expansion_seconds += perf_counter() - kernel_start

    def search(
        self,
        query: Union[str, ParsedQuery, None] = None,
        keyword_node_sets: Optional[Sequence[Set[RID]]] = None,
        max_results: Optional[int] = None,
        unrestricted: bool = False,
        trace=None,
        trace_parent=None,
        profile=None,
        on_answer=None,
        **config_overrides,
    ) -> List[ScoredAnswer]:
        """Answers scored on the stitched graph.

        Default (gather dispatch): answers rooted in this shard only.
        With ``keyword_node_sets`` (the router's scatter phase passes
        the gathered global sets), resolution is skipped and the trees
        may reach keyword matches owned by *other* shards — that is how
        cross-shard answers surface.  Without it, the shard resolves
        against its own index only (a shard-local search).

        With ``unrestricted=True`` (route dispatch) the worker answers
        the whole query by itself: resolution runs against the full
        index and any node may serve as the root — one full search,
        exactly what the single engine would compute.

        Tracing crosses the fork boundary here: in-process callers pass
        a live :class:`repro.obs.Trace` (plus ``trace_parent``) and a
        :class:`repro.obs.SearchProfile` to fill; a forked worker
        receives ``trace`` as the serialized context dict and
        ``profile=True``, records into a local trace, and returns an
        ``(answers, {"spans": ..., "profile": ...})`` envelope the
        parent-side proxy absorbs back into the real trace.
        """
        envelope = isinstance(trace, dict) or profile is True
        if isinstance(trace, dict):
            trace = Trace.from_ctx(trace)
            trace_parent = trace.parent_hint
        if profile is True:
            profile = SearchProfile()
        span = (
            trace.begin(
                "shard.search",
                parent_id=trace_parent,
                shard=self.shard_id,
                unrestricted=bool(unrestricted),
            )
            if trace is not None
            else None
        )
        # Drain the iterator protocol: each emission reaches the
        # callback while the expansion is still running (in-process
        # callers only — a callback cannot cross the fork pipe).
        answers = []
        for scored in self.search_iter(
            query=query,
            keyword_node_sets=keyword_node_sets,
            max_results=max_results,
            unrestricted=unrestricted,
            profile=profile,
            **config_overrides,
        ):
            if on_answer is not None:
                on_answer(scored)
            answers.append(scored)
        if span is not None:
            span.attrs["answers"] = len(answers)
            trace.end(span)
        if envelope:
            return answers, {
                "spans": trace.export() if trace is not None else [],
                "profile": profile.to_dict() if profile is not None else {},
            }
        return answers

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardSearcher(shard {self.shard_id}: "
            f"{len(self.owned_nodes)} nodes, {len(self.index)} terms)"
        )
