"""Partitioning the BANKS data graph into shards.

A partition assigns every graph node — every ``(table, rid)`` tuple —
to exactly one shard and records the *cut edges*: directed edges whose
endpoints live on different shards.  The induced per-shard subgraphs
plus the recorded cut edges are a lossless decomposition of the data
graph; :func:`repro.shard.stitch.stitch_graph` reassembles them and the
router searches the reassembled graph, so a partitioner bug shows up as
a search-parity failure, not a silent answer loss.

Cut edges are recorded as :class:`repro.federate.links.TupleLink`
records — the federation layer's explicit tuple-to-tuple link — with
the shard name as the member-database name.  A future deployment that
moves shards onto separate machines can hand those links to a
:class:`~repro.federate.federation.Federation` unchanged.

Strategies are pluggable: any callable ``node -> int`` works.  The
default hashes ``table:rid`` with CRC32, which is stable across
processes and Python versions (``hash()`` is randomised per process and
must never decide placement).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Set, Union

from repro.errors import ShardError
from repro.federate.links import TupleLink
from repro.graph.digraph import DiGraph
from repro.relational.database import RID

#: A placement rule: node -> shard index in ``range(shards)``.
ShardStrategy = Callable[[RID], int]


def hash_strategy(shards: int) -> ShardStrategy:
    """Hash-by-table-row (the default): spreads every table uniformly."""

    def place(node: RID) -> int:
        table, rid = node
        return zlib.crc32(f"{table}:{rid}".encode("utf-8")) % shards

    return place


def table_strategy(shards: int) -> ShardStrategy:
    """Co-locate whole tables: every row of a table shares a shard.

    Keeps intra-table structure local (useful when one relation
    dominates traffic) at the price of skew when table sizes differ.
    """

    def place(node: RID) -> int:
        table, _rid = node
        return zlib.crc32(table.encode("utf-8")) % shards

    return place


def round_robin_strategy(shards: int) -> ShardStrategy:
    """Stripe rows of each table across shards by row id."""

    def place(node: RID) -> int:
        _table, rid = node
        return rid % shards

    return place


_NAMED_STRATEGIES = {
    "hash": hash_strategy,
    "table": table_strategy,
    "round_robin": round_robin_strategy,
}


@dataclass(frozen=True)
class CutEdge:
    """One directed edge crossing the partition, weight preserved."""

    source: RID
    target: RID
    weight: float
    source_shard: int
    target_shard: int

    def to_tuple_link(self) -> TupleLink:
        """The federation-layer record of this edge."""
        return TupleLink(
            source_db=f"shard{self.source_shard}",
            source=self.source,
            target_db=f"shard{self.target_shard}",
            target=self.target,
            weight=self.weight,
        )


class Partition:
    """One concrete split of a data graph into ``shards`` shards.

    The partition is *live*: :meth:`apply_delta` moves the assignment,
    per-shard node sets and cut-edge records along with a routed
    mutation, so a sharded deployment keeps serving a changing
    database without rebuilding the split.  The per-shard node sets
    are plain mutable sets shared by reference with each shard's
    searcher — one update is visible everywhere in thread mode.

    Attributes:
        shards: the shard count.
        shard_nodes: per shard, the (mutable) set of owned nodes.
        cut_edges: every directed edge crossing the partition.
    """

    def __init__(
        self,
        shards: int,
        assignment: Dict[RID, int],
        cut_edges: List[CutEdge],
    ):
        self.shards = shards
        self._assignment = assignment
        self.cut_edges = cut_edges
        nodes: List[List[RID]] = [[] for _ in range(shards)]
        for node, shard in assignment.items():
            nodes[shard].append(node)
        self.shard_nodes: List[Set[RID]] = [set(group) for group in nodes]

    def shard_of(self, node: RID) -> int:
        """The shard owning ``node``."""
        try:
            return self._assignment[node]
        except KeyError:
            raise ShardError(f"node {node!r} is not in the partition") from None

    def apply_delta(self, delta, owner: int) -> None:
        """Follow one routed mutation (see :mod:`repro.store.delta`).

        Inserts assign the new node to ``owner`` before the edge pass
        (a new cut edge needs both endpoints placed); deletes
        unassign after it.  Every edge the delta re-weighed is
        re-classified: its old cut record (if any) is dropped, and a
        fresh :class:`CutEdge` is recorded when the new edge crosses
        the partition — so ``cut_links()`` keeps describing exactly
        the stitched graph's federation links.
        """
        if delta.kind == "insert" and delta.node not in self._assignment:
            if not 0 <= owner < self.shards:
                raise ShardError(
                    f"delta for {delta.node!r} routed to shard {owner}, "
                    f"outside range(0, {self.shards})"
                )
            self._assignment[delta.node] = owner
            self.shard_nodes[owner].add(delta.node)
        changed = {(source, target) for source, target, _weight in delta.edges}
        removed = delta.node if delta.kind == "delete" else None
        kept = [
            edge
            for edge in self.cut_edges
            if (edge.source, edge.target) not in changed
            and edge.source != removed
            and edge.target != removed
        ]
        for source, target, weight in delta.edges:
            if weight is None:
                continue
            source_shard = self._assignment.get(source)
            target_shard = self._assignment.get(target)
            if source_shard is None or target_shard is None:
                continue
            if source_shard != target_shard:
                kept.append(
                    CutEdge(source, target, weight, source_shard, target_shard)
                )
        self.cut_edges[:] = kept
        if removed is not None:
            shard = self._assignment.pop(removed, None)
            if shard is not None:
                self.shard_nodes[shard].discard(removed)

    def move_node(self, node, target: int, incident_edges) -> int:
        """Re-assign one node to ``target`` (live rebalancing); returns
        the shard it came from.

        The re-assignment itself is two set updates plus the dict
        entry; the cut-edge bookkeeping rides the existing
        :meth:`apply_delta` path as a synthetic ``update`` delta
        carrying the node's incident edges — every one of them is
        re-classified against the *new* assignment, so crossing edges
        gain :class:`CutEdge` records (federation ``TupleLink``\\ s
        re-point) and newly local ones lose theirs.  The graph itself
        never changes: only ownership moves.
        """
        from repro.store.delta import Delta

        if not 0 <= target < self.shards:
            raise ShardError(
                f"cannot move {node!r} to shard {target}, outside "
                f"range(0, {self.shards})"
            )
        source = self.shard_of(node)
        if source == target:
            return source
        self._assignment[node] = target
        self.shard_nodes[source].discard(node)
        self.shard_nodes[target].add(node)
        self.apply_delta(
            Delta(kind="update", node=node, edges=tuple(incident_edges)),
            target,
        )
        return source

    def cut_links(self) -> List[TupleLink]:
        """The cut edges as federation tuple links (stitching input)."""
        return [edge.to_tuple_link() for edge in self.cut_edges]

    def induced_subgraphs(self, graph: DiGraph) -> List[DiGraph]:
        """Per-shard induced subgraphs of ``graph`` (weights copied)."""
        return [graph.subgraph(nodes) for nodes in self.shard_nodes]

    # -- reporting ------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return len(self._assignment)

    def cut_fraction(self, graph: DiGraph) -> float:
        """Share of directed edges that cross the partition."""
        if not graph.num_edges:
            return 0.0
        return len(self.cut_edges) / graph.num_edges

    def balance(self) -> float:
        """Largest shard relative to the ideal even split (1.0 = even)."""
        if not self.num_nodes:
            return 1.0
        ideal = self.num_nodes / self.shards
        return max(len(nodes) for nodes in self.shard_nodes) / ideal

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        sizes = ", ".join(str(len(nodes)) for nodes in self.shard_nodes)
        return (
            f"Partition({self.shards} shards: [{sizes}] nodes, "
            f"{len(self.cut_edges)} cut edges)"
        )


class GraphPartitioner:
    """Splits a data graph into shards under a placement strategy.

    Args:
        shards: number of shards (>= 1).
        strategy: a named strategy (``"hash"``, ``"table"``,
            ``"round_robin"``) or any callable ``node -> int``.
    """

    def __init__(
        self,
        shards: int,
        strategy: Union[str, ShardStrategy] = "hash",
    ):
        if shards < 1:
            raise ShardError("a partition needs at least 1 shard")
        self.shards = shards
        if callable(strategy):
            self.strategy: ShardStrategy = strategy
            self.strategy_name = getattr(strategy, "__name__", "custom")
        else:
            try:
                factory = _NAMED_STRATEGIES[strategy]
            except KeyError:
                raise ShardError(
                    f"unknown shard strategy {strategy!r} (choose from "
                    f"{', '.join(sorted(_NAMED_STRATEGIES))}, or pass a "
                    "callable)"
                ) from None
            self.strategy = factory(shards)
            self.strategy_name = strategy

    def partition(self, graph: DiGraph) -> Partition:
        """Assign every node of ``graph``; record every cut edge."""
        assignment: Dict[RID, int] = {}
        for node in graph.nodes():
            shard = self.strategy(node)
            if not 0 <= shard < self.shards:
                raise ShardError(
                    f"strategy placed {node!r} on shard {shard}, outside "
                    f"range(0, {self.shards})"
                )
            assignment[node] = shard
        cut_edges: List[CutEdge] = []
        for source, target, weight in graph.edges():
            source_shard = assignment[source]
            target_shard = assignment[target]
            if source_shard != target_shard:
                cut_edges.append(
                    CutEdge(source, target, weight, source_shard, target_shard)
                )
        return Partition(self.shards, assignment, cut_edges)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GraphPartitioner({self.shards} shards, {self.strategy_name})"
