"""The :class:`ShardRouter`: scatter-gather keyword search over shards.

Query protocol (two scatter phases through the serving machinery):

1. **resolve scatter** — the parsed query goes to every shard through
   the router's :class:`~repro.serve.pool.WorkerPool`; each shard
   resolves every term against its *own* slice of the inverted index.
   The gathered union reproduces unsharded resolution exactly (each
   tuple's postings live on exactly one shard).
2. **search scatter** — the query plus the gathered global keyword node
   sets go to every shard's :class:`~repro.serve.engine.QueryEngine`;
   each shard runs the backward expanding search over the *stitched*
   graph but emits only answers rooted in its own partition, fetching
   ``max_results + overfetch`` candidates.
3. **gather** — per-shard answer trees merge into a global top-k by the
   paper's answer-relevance score
   (:func:`repro.core.topk.merge_scored_answers`), deduplicating
   re-rootings of the same undirected tree.

Cross-shard answers need no completion step: the stitched graph already
contains every recorded cut edge, so a shard's trees freely cross into
other shards' territory — only the *root* is partitioned.  Against the
same database, the gathered top-k therefore matches single-engine
search scores to within float reproducibility (exactly, in practice:
both run the same arithmetic on the same graph).

Dispatch policies — the throughput finding, measured honestly:

* ``dispatch="gather"`` (default): the exact scatter-gather above.  It
  does **not** beat single-engine dispatch on throughput, on any core
  count: a shard must either emit its k candidates or *exhaust* its
  expansion to prove no better root exists in its partition, and that
  lower bound routinely costs as much as the single engine's whole
  early-stopping search (measured 0.65x–3.6x of it per query on the
  bibliography battery).  Gather is the mode whose mechanics —
  partitioned index, partitioned answer space, cut-edge stitching —
  carry over to a true memory-partitioned deployment, where per-shard
  search *is* 1/N of the work; on one box it buys semantics, not QPS.
* ``dispatch="route"``: each query goes whole to one shard worker,
  chosen by query hash (repeat queries keep shard affinity).  Every
  forked worker holds the stitched graph copy-on-write, so the worker
  computes exactly the single-engine answer list, and N workers answer
  N queries concurrently — throughput scales with cores (the
  ``bench-shard`` >= 1.5x criterion is met here).  Memory does not
  shrink; this is the policy when the graph fits and the GIL is the
  constraint.

Mutations — the router serves a *changing* database: the write path
routes every :class:`~repro.store.delta.Delta` to its **owning shard**
(the shard the affected node hashes to) instead of republishing a
whole-facade copy.  :meth:`ShardRouter.insert` / :meth:`delete` /
:meth:`update` derive the delta against the router's own replica;
:meth:`ShardRouter.apply` accepts deltas produced elsewhere (e.g. a
:class:`~repro.serve.snapshot.SnapshotStore` delta log).  Either way
the same O(delta) work happens everywhere it must: the shared stitched
graph absorbs the edge re-weighs once (thread mode) or each forked
worker replays them into its private copy (process mode); the owning
shard's index slice and ownership set move; the partition's cut-edge
``TupleLink`` records follow; and only the owning shard's engine state
is republished (its snapshot version advances, bumping the epoch that
keys single-flight dedup).

With the process backend each worker is a forked process; the thread
backend exists for portability and deterministic tests.
"""

from __future__ import annotations

import threading
import time
import zlib
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Set, Union

from repro.core.answer import AnswerTree
from repro.core.banks import node_label
from repro.core.model import build_data_graph
from repro.core.query import ParsedQuery, parse_query
from repro.core.scoring import ScoringConfig
from repro.core.search import ScoredAnswer, SearchConfig
from repro.core.topk import merge_scored_answers
from repro.core.weights import WeightPolicy
from repro.deprecation import internal_construction, warn_direct_construction
from repro.errors import ShardError
from repro.graph.csr import freeze_graph
from repro.obs import Observability, SearchProfile
from repro.relational.database import Database, RID
from repro.serve.engine import EngineConfig, QueryEngine
from repro.serve.metrics import MetricsRegistry
from repro.serve.pool import WorkerPool
from repro.shard.partition import GraphPartitioner, Partition
from repro.shard.process import ProcessShardWorker, fork_available
from repro.shard.searcher import ShardSearcher
from repro.shard.stitch import stats_of, stitch_graph
from repro.store.delta import (
    Delta,
    apply_graph_delta,
    derive_delete,
    derive_insert,
    derive_update,
    replay_delta,
)
from repro.text.inverted_index import InvertedIndex

_BACKENDS = ("thread", "process", "auto")
_DISPATCHES = ("gather", "route")


class _SearchGate:
    """Writer-preferring reader/writer gate between searches and
    routed mutations.

    Thread-backed searchers share one stitched graph, database and
    index; applying a delta while a Dijkstra iterator walks those
    dicts would crash or corrupt scores.  Searches therefore enter as
    *readers* (concurrent with each other — the per-shard engines do
    the real parallelism) and a mutation enters as the exclusive
    *writer*, waiting for in-flight searches to drain.  Writers are
    preferred: once one is waiting, new searches queue behind it, so a
    steady read load cannot starve the write path.  Both sides are
    short-lived relative to serving (mutations are O(delta)), and
    mutations also cover the process backend — its per-worker pipe
    locks already serialise per shard, but the router's own replica
    (labels, partition, describe) wants the same exclusion.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writers_waiting = 0
        self._writing = False

    @contextmanager
    def read(self):
        with self._cond:
            while self._writing or self._writers_waiting:
                self._cond.wait()
            self._readers += 1
        try:
            yield
        finally:
            with self._cond:
                self._readers -= 1
                if not self._readers:
                    self._cond.notify_all()

    @contextmanager
    def write(self):
        with self._cond:
            self._writers_waiting += 1
            while self._writing or self._readers:
                self._cond.wait()
            self._writers_waiting -= 1
            self._writing = True
        try:
            yield
        finally:
            with self._cond:
                self._writing = False
                self._cond.notify_all()


@dataclass
class ShardAnswer:
    """One globally ranked answer, annotated with shard provenance.

    Attributes:
        tree: the connection tree.
        relevance: overall relevance in [0, 1].
        rank: global rank (0 = best).
        root_shard: the shard that emitted this answer (owns the root).
    """

    tree: AnswerTree
    relevance: float
    rank: int
    root_shard: int
    _banks: "ShardRouter"

    @property
    def root(self) -> RID:
        return self.tree.root

    def shards(self) -> Set[int]:
        """Every shard contributing a node to this answer."""
        partition = self._banks.partition
        return {partition.shard_of(node) for node in self.tree.nodes}

    def is_cross_shard(self) -> bool:
        return len(self.shards()) > 1

    def render(self) -> str:
        labels = {node: self._banks.node_label(node) for node in self.tree.nodes}
        return self.tree.render_indented(labels)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardAnswer(rank={self.rank}, relevance={self.relevance:.4f}, "
            f"shards={sorted(self.shards())})"
        )


class ShardRouter:
    """Keyword search scattered over N shards, gathered to one top-k.

    Args:
        database: the data to shard and search.
        shards: shard count (>= 1).
        strategy: placement strategy (see
            :class:`~repro.shard.partition.GraphPartitioner`).
        backend: ``"thread"`` (in-process searchers), ``"process"``
            (forked workers, one per shard — CPU scaling), or
            ``"auto"`` (process where fork exists, else thread).
        dispatch: ``"gather"`` (exact scatter-gather, the default) or
            ``"route"`` (whole queries to one worker each, by query
            hash — throughput mode; see the module docstring).
        weight_policy: edge/prestige weighting (the paper's defaults).
        scoring: scoring parameters (the paper's best).
        search_config: search knobs shared by every shard.
        include_metadata: let keywords match table/column names.
        overfetch: extra per-shard candidates beyond ``max_results`` —
            insurance against the output heap's approximate ordering.
        engine_config: per-shard engine knobs; ``workers`` is forced to
            1 (one CPU-bound searcher behind each engine).
        metrics: external registry to record into (one per router).
    """

    def __init__(
        self,
        database: Database,
        shards: int = 4,
        strategy: Union[str, Any] = "hash",
        backend: str = "auto",
        dispatch: str = "gather",
        weight_policy: Optional[WeightPolicy] = None,
        scoring: Optional[ScoringConfig] = None,
        search_config: Optional[SearchConfig] = None,
        include_metadata: bool = True,
        overfetch: int = 1,
        engine_config: Optional[EngineConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
        obs: Optional[Observability] = None,
    ):
        warn_direct_construction(
            "ShardRouter",
            "topology='sharded', shards=..., dispatch=..., "
            "shard_backend=...",
        )
        if backend not in _BACKENDS:
            raise ShardError(
                f"unknown shard backend {backend!r} "
                f"(choose from {', '.join(_BACKENDS)})"
            )
        if dispatch not in _DISPATCHES:
            raise ShardError(
                f"unknown dispatch policy {dispatch!r} "
                f"(choose from {', '.join(_DISPATCHES)})"
            )
        if overfetch < 0:
            raise ShardError("overfetch must be >= 0")
        if backend == "auto":
            backend = "process" if fork_available() else "thread"
        self.database = database
        self.backend = backend
        self.dispatch = dispatch
        self.overfetch = overfetch
        self.include_metadata = include_metadata
        self.search_config = search_config or SearchConfig()
        self.weight_policy = weight_policy or WeightPolicy()
        self._gate = _SearchGate()
        self._stats_dirty = False

        # Build once, slice per shard.
        graph, _stats = build_data_graph(database, self.weight_policy)
        full_index = InvertedIndex(database)
        self.full_index = full_index
        self.partitioner = GraphPartitioner(shards, strategy)
        self.partition: Partition = self.partitioner.partition(graph)
        # The searchers run on the *stitched* graph — reassembled from
        # the shard subgraphs plus the recorded cut edges — so a lossy
        # partition fails loudly as a parity break, never silently.
        self.graph = stitch_graph(
            self.partition.induced_subgraphs(graph),
            self.partition.cut_links(),
        )
        # Freeze the stitched graph into CSR form: every shard searcher
        # shares the same arrays (thread mode shares them by reference),
        # and delta routing keeps writing through the overlay dicts.
        self.graph = freeze_graph(self.graph)
        self.stats = stats_of(self.graph)
        self._searchers = [
            ShardSearcher(
                shard_id,
                database,
                self.graph,
                self.stats,
                self.partition.shard_nodes[shard_id],
                full_index,
                scoring=scoring,
                search_config=search_config,
                include_metadata=include_metadata,
            )
            for shard_id in range(shards)
        ]

        # Fork before any thread exists (see repro.shard.process), then
        # put a QueryEngine in front of each shard worker.
        if backend == "process":
            self._workers: List[Any] = [
                ProcessShardWorker(searcher) for searcher in self._searchers
            ]
        else:
            self._workers = list(self._searchers)

        base = engine_config or EngineConfig()
        per_shard = EngineConfig(
            workers=1,
            queue_bound=base.queue_bound,
            default_deadline=base.default_deadline,
            shed_policy=base.shed_policy,
            dedup=False,
            metrics_window=base.metrics_window,
        )
        with internal_construction():
            self.engines = [
                QueryEngine(worker, per_shard) for worker in self._workers
            ]
        self.pool = WorkerPool(
            workers=max(2, shards), queue_bound=0, name="shard-router"
        )

        # Disabled by default; the cluster front end passes its own
        # Observability so router traces land in one store.  The
        # per-shard engines keep tracing off (EngineConfig default) —
        # the router is the originator for sharded queries.
        self.obs = obs or Observability()

        self.metrics = metrics or MetricsRegistry(prefix="banks_shard")
        m = self.metrics
        self._queries = m.counter("queries_total", "scatter-gather searches")
        self._answers = m.counter("answers_total", "answers returned")
        self._cross = m.counter(
            "cross_shard_answers_total",
            "returned answers spanning more than one shard",
        )
        self.epoch = 0
        self._mutations = m.counter(
            "mutations_total", "deltas routed to their owning shard"
        )
        self._rebalance_moves = m.counter(
            "rebalance_moves_total", "nodes moved between shards live"
        )
        m.gauge("epoch", "router mutation epoch", fn=lambda: self.epoch)
        self._mutate_latency = m.histogram(
            "mutate_seconds", "delta route-and-apply cost distribution"
        )
        m.gauge("shards", "shard count", fn=lambda: self.partition.shards)
        m.gauge(
            "cut_edges",
            "directed edges crossing the partition",
            fn=lambda: len(self.partition.cut_edges),
        )
        self._latency = m.latency("latency_seconds", "scatter-to-gather latency")
        self._shard_searches: List[Any] = []
        for shard_id, engine in enumerate(self.engines):
            self._shard_searches.append(
                m.counter(
                    f"shard{shard_id}_searches_total",
                    f"sub-searches scattered to shard {shard_id}",
                )
            )
            m.gauge(
                f"shard{shard_id}_nodes",
                f"nodes owned by shard {shard_id}",
                fn=lambda i=shard_id: len(self.partition.shard_nodes[i]),
            )
            m.gauge(
                f"shard{shard_id}_completed_total",
                f"sub-searches completed by shard {shard_id}'s engine",
                fn=lambda e=engine: e.metrics.snapshot()["completed_total"],
            )

    # -- the search path ------------------------------------------------------

    def resolve(self, query: Union[str, ParsedQuery]) -> List[Set[RID]]:
        """Global per-term node sets, gathered from every shard."""
        with self._gate.read():
            return self._resolve_unlocked(query)

    def _resolve_unlocked(self, query: Union[str, ParsedQuery]) -> List[Set[RID]]:
        parsed = parse_query(query) if isinstance(query, str) else query
        per_shard = self.pool.map(lambda worker: worker.resolve(parsed), self._workers)
        node_sets: List[Set[RID]] = [set() for _ in parsed.terms]
        for shard_sets in per_shard:
            for term_index, nodes in enumerate(shard_sets):
                node_sets[term_index].update(nodes)
        return node_sets

    def search(
        self,
        query: Union[str, ParsedQuery],
        max_results: Optional[int] = None,
        timeout: Optional[float] = None,
        trace=None,
        trace_parent=None,
        profile=None,
        **config_overrides,
    ) -> List[ShardAnswer]:
        """Answer a keyword query under the configured dispatch policy:
        scatter-search-gather-rank, or route whole to one worker.

        Searches enter the router's read gate: they run concurrently
        with each other but never overlap a routed mutation (which
        takes the gate exclusively — see :class:`_SearchGate`).

        When a ``trace`` is handed in (the cluster front end) or the
        router's own :class:`repro.obs.Observability` samples the
        query, the scatter records a span tree: ``router.search`` over
        ``router.resolve``, one ``engine.request`` subtree per shard
        (forked workers' spans re-parented across the pipe) and
        ``router.merge``; per-shard profiles merge into ``profile``.
        """
        start = time.monotonic()
        originated = False
        if trace is None and profile is None and self.obs.enabled:
            trace = self.obs.begin()
            if trace is not None:
                originated = True
                profile = SearchProfile()
        router_span = (
            trace.begin(
                "router.search",
                parent_id=trace_parent,
                dispatch=self.dispatch,
                shards=self.partition.shards,
            )
            if trace is not None
            else None
        )
        self._queries.inc()
        wanted = (
            max_results
            if max_results is not None
            else self.search_config.max_results
        )
        parsed = parse_query(query) if isinstance(query, str) else query
        try:
            with self._gate.read():
                if self.dispatch == "route":
                    merged = self._route(
                        parsed, wanted, timeout, config_overrides,
                        trace, router_span, profile,
                    )
                else:
                    merged = self._scatter_gather(
                        parsed, wanted, timeout, config_overrides,
                        trace, router_span, profile,
                    )
                answers = [
                    ShardAnswer(
                        scored.tree,
                        scored.relevance,
                        rank,
                        self.partition.shard_of(scored.tree.root),
                        self,
                    )
                    for rank, scored in enumerate(merged)
                ]
        except BaseException as error:
            if router_span is not None:
                router_span.attrs["error"] = type(error).__name__
                trace.end(router_span)
                if originated:
                    self._finish_trace(trace, parsed, start, profile)
            raise
        self._answers.inc(len(answers))
        self._cross.inc(sum(1 for a in answers if a.is_cross_shard()))
        self._latency.observe(time.monotonic() - start)
        if router_span is not None:
            router_span.attrs["answers"] = len(answers)
            trace.end(router_span)
            if originated:
                self._finish_trace(trace, parsed, start, profile)
        return answers

    def _finish_trace(self, trace, parsed, start, profile) -> None:
        self.obs.finish(
            trace,
            query=parsed,
            topology="sharded",
            duration_ms=(time.monotonic() - start) * 1000.0,
            profile=profile,
            dispatch=self.dispatch,
        )

    def _scatter_gather(
        self, parsed: ParsedQuery, wanted: int, timeout, config_overrides,
        trace=None, router_span=None, profile=None,
    ) -> List[ScoredAnswer]:
        """Exact scatter-gather: all shards, roots partitioned."""
        parent_id = router_span.span_id if router_span is not None else None
        if trace is not None:
            with trace.span("router.resolve", parent_id=parent_id) as span:
                keyword_node_sets = self._resolve_unlocked(parsed)
                span.attrs["terms"] = len(keyword_node_sets)
        else:
            keyword_node_sets = self._resolve_unlocked(parsed)
        futures = []
        # One private profile per shard: the engines fill them from
        # concurrent worker threads, the gather merges single-threaded.
        shard_profiles: List[Optional[SearchProfile]] = []
        for shard_id, engine in enumerate(self.engines):
            self._shard_searches[shard_id].inc()
            shard_profile = SearchProfile() if profile is not None else None
            shard_profiles.append(shard_profile)
            try:
                futures.append(
                    engine.submit(
                        parsed,
                        keyword_node_sets=keyword_node_sets,
                        max_results=wanted + self.overfetch,
                        trace=trace,
                        trace_parent=parent_id,
                        profile=shard_profile,
                        **config_overrides,
                    )
                )
            except BaseException:
                for queued in futures:
                    queued.cancel()
                raise
        # One deadline for the whole gather: the caller's timeout bounds
        # the scatter-gather, not each shard individually.
        gather_deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        per_shard: List[List[ScoredAnswer]] = []
        for position, future in enumerate(futures):
            remaining = (
                None
                if gather_deadline is None
                else max(0.0, gather_deadline - time.monotonic())
            )
            try:
                per_shard.append(future.result(timeout=remaining).answers)
            except BaseException:
                for queued in futures[position:]:
                    queued.cancel()
                raise
        if profile is not None:
            for shard_profile in shard_profiles:
                if shard_profile is not None:
                    profile.merge(shard_profile)
        if trace is not None:
            with trace.span("router.merge", parent_id=parent_id) as span:
                merged = merge_scored_answers(per_shard, wanted)
                span.attrs["candidates"] = sum(len(s) for s in per_shard)
                span.attrs["answers"] = len(merged)
            return merged
        return merge_scored_answers(per_shard, wanted)

    def _route(
        self, parsed: ParsedQuery, wanted: int, timeout, config_overrides,
        trace=None, router_span=None, profile=None,
    ) -> List[ScoredAnswer]:
        """Route the whole query to one worker, by query hash."""
        parent_id = router_span.span_id if router_span is not None else None
        shard_id = zlib.crc32(repr(parsed).encode("utf-8")) % len(
            self.engines
        )
        if router_span is not None:
            router_span.attrs["routed_shard"] = shard_id
        self._shard_searches[shard_id].inc()
        future = self.engines[shard_id].submit(
            parsed,
            unrestricted=True,
            max_results=wanted,
            trace=trace,
            trace_parent=parent_id,
            profile=profile,
            **config_overrides,
        )
        # Emission order is preserved: a routed query returns exactly
        # the single-engine answer list, not a re-sorted view of it.
        return future.result(timeout=timeout).answers

    # -- the write path (delta routing) ---------------------------------------

    def insert(self, table_name: str, values: Sequence[Any]) -> RID:
        """Insert a tuple; route the delta to its owning shard."""
        with self._gate.write():
            started = time.perf_counter()
            # Validate placement *before* deriving: derivation mutates
            # the shared database and index, and a strategy that
            # misplaces the new node must fail before any of that.
            # The heap is append-only, so the next RID is known.
            node = (table_name, self.database.table(table_name).next_rid)
            owner = self._place(node)
            delta = derive_insert(
                self.database,
                [self.full_index],
                self.graph,
                self.weight_policy,
                table_name,
                values,
            )
            # The owning shard's index slice gains the new postings
            # (derivation already updated the shared full index).
            self._searchers[owner].index.add_row(*delta.node)
            apply_graph_delta(self.graph, delta)
            self._admit(delta, owner, started)
            return delta.node

    def delete(self, rid: RID) -> None:
        """Delete a tuple; route the delta to its owning shard.

        Raises :class:`repro.errors.IntegrityError` (before any shard
        state changes) if other tuples still reference ``rid``.
        """
        with self._gate.write():
            started = time.perf_counter()
            owner = self.partition.shard_of(rid)
            delta = derive_delete(
                self.database,
                [self.full_index, self._searchers[owner].index],
                self.graph,
                self.weight_policy,
                rid,
            )
            apply_graph_delta(self.graph, delta)
            self._admit(delta, owner, started)

    def update(self, rid: RID, changes: Mapping[str, Any]) -> None:
        """Update a tuple in place; route the delta to its owner."""
        with self._gate.write():
            started = time.perf_counter()
            owner = self.partition.shard_of(rid)
            delta = derive_update(
                self.database,
                [self.full_index, self._searchers[owner].index],
                self.graph,
                self.weight_policy,
                rid,
                changes,
            )
            apply_graph_delta(self.graph, delta)
            self._admit(delta, owner, started)

    def apply(self, delta: Delta) -> int:
        """Route one externally derived delta (e.g. from a
        :class:`~repro.serve.snapshot.SnapshotStore` delta log) to its
        owning shard; returns the owner.

        The router's replica replays the relational + index part and
        absorbs the graph part, then the same per-shard propagation as
        the native mutation methods runs.
        """
        with self._gate.write():
            started = time.perf_counter()
            if delta.kind == "insert":
                owner = self._place(delta.node)
            else:
                owner = self.partition.shard_of(delta.node)
            replay_delta(
                self.database,
                [self.full_index, self._searchers[owner].index],
                delta,
            )
            apply_graph_delta(self.graph, delta)
            self._admit(delta, owner, started)
            return owner

    def apply_epochs(self, epochs) -> int:
        """Apply every delta of a sequence of published
        :class:`~repro.store.log.Epoch` entries; returns deltas applied."""
        applied = 0
        for epoch in epochs:
            for delta in epoch.deltas:
                self.apply(delta)
                applied += 1
        return applied

    def _place(self, node: RID) -> int:
        """The shard a *new* node belongs to, by the partition strategy."""
        shard = self.partitioner.strategy(node)
        if not 0 <= shard < self.partition.shards:
            raise ShardError(
                f"strategy placed {node!r} on shard {shard}, outside "
                f"range(0, {self.partition.shards})"
            )
        return shard

    def _admit(self, delta: Delta, owner: int, started: float) -> None:
        """Propagate an already-derived delta through the shard state.

        The router's shared structures (database, full index, stitched
        graph, owner's index slice) are updated by the caller; what
        remains is the partition bookkeeping, the per-searcher
        ownership/normaliser notes, the per-worker replay in process
        mode, and republishing the owning shard's engine state.
        """
        self.partition.apply_delta(delta, owner)
        for searcher in self._searchers:
            searcher.note_delta(delta, owner)
        if self.backend == "process":
            # Each forked worker holds a private replica: replay the
            # whole delta there (serialised with in-flight searches by
            # the per-worker pipe lock).
            for worker in self._workers:
                worker.apply_delta(delta, owner)
        # Normalisers refresh lazily (searchers on their next search,
        # the router's reporting copy in describe()): recomputing the
        # O(E) scan here would make every O(delta) write pay O(graph).
        self._stats_dirty = True
        # Republish only the owning shard's engine state: its snapshot
        # version advances (new dedup epoch), everyone else's stands.
        self.engines[owner].snapshots.republish()
        self.epoch += 1
        self._mutations.inc()
        self._mutate_latency.observe(time.perf_counter() - started)

    # -- live rebalancing ------------------------------------------------------

    def rebalance(self, plan, faults=None) -> Dict[str, int]:
        """Execute a rebalance plan move by move, while serving.

        ``plan`` is a :class:`~repro.ops.rebalance.RebalancePlan` (or
        anything with a ``moves`` sequence of ``node``/``source``/
        ``target`` records — the router deliberately doesn't import the
        planner).  Each move takes the write gate exclusively, exactly
        like a routed mutation: in-flight searches drain, the move
        applies everywhere (partition, every searcher's ownership and
        index slice, forked workers' private replicas), both affected
        engines republish, and the router epoch advances — so a query
        admitted between moves always sees a disjoint ownership cover
        and exact answer parity (the stitched graph never changes).

        ``faults`` (a :class:`~repro.ops.faults.FaultInjector`) gets
        every step of :data:`~repro.ops.rebalance.REBALANCE_STEPS`
        announced per move.  A fault mid-move rolls the completed
        sub-steps of *that move* back before re-raising, so an aborted
        rebalance leaves the partition consistent at the last fully
        applied move.

        Returns ``{"applied": ..., "skipped": ..., "epoch": ...}``;
        moves whose node has vanished or already migrated (a stale
        plan) are skipped, not errors — planning reads live state that
        mutations may have moved on from.
        """
        applied = 0
        skipped = 0
        for move in plan.moves:
            with self._gate.write():
                try:
                    current = self.partition.shard_of(move.node)
                except ShardError:
                    skipped += 1  # deleted since planning
                    continue
                if current != move.source or move.source == move.target:
                    skipped += 1  # already migrated / no-op
                    continue
                self._move_node(move.node, move.source, move.target, faults)
                applied += 1
                self._rebalance_moves.inc()
        return {"applied": applied, "skipped": skipped, "epoch": self.epoch}

    def drain(self, shard: int, faults=None) -> Dict[str, int]:
        """Empty one shard through :meth:`rebalance` (decommission
        primitive; plan derived by
        :func:`~repro.ops.rebalance.drain_plan`)."""
        from repro.ops.rebalance import drain_plan

        return self.rebalance(drain_plan(self, shard), faults=faults)

    def _move_node(self, node: RID, source: int, target: int, faults) -> None:
        """One move under the held write gate, with rollback.

        Order mirrors the delta write path: partition bookkeeping,
        per-searcher ownership/index maintenance, process-worker
        replay, then republish.  The undo stack inverts completed
        sub-steps if a fault (or a dead worker) interrupts, restoring
        the pre-move state before the error propagates.
        """
        incident = [
            (node, successor, weight)
            for successor, weight in self.graph.successors(node)
        ] + [
            (predecessor, node, weight)
            for predecessor, weight in self.graph.predecessors(node)
        ]
        undo: List[Any] = []
        try:
            self.partition.move_node(node, target, incident)
            undo.append(
                lambda: self.partition.move_node(node, source, incident)
            )
            if faults is not None:
                faults.step("assign")
            moved_searchers: List[ShardSearcher] = []
            undo.append(
                lambda: [
                    searcher.move_node(node, target, source)
                    for searcher in moved_searchers
                ]
            )
            for searcher in self._searchers:
                searcher.move_node(node, source, target)
                moved_searchers.append(searcher)
            if faults is not None:
                faults.step("reslice")
            if self.backend == "process":
                moved_workers: List[Any] = []
                undo.append(
                    lambda: [
                        worker.move_node(node, target, source)
                        for worker in moved_workers
                    ]
                )
                for worker in self._workers:
                    worker.move_node(node, source, target)
                    moved_workers.append(worker)
            if faults is not None:
                faults.step("replay")
            self.engines[source].snapshots.republish()
            self.engines[target].snapshots.republish()
            self.epoch += 1
            if faults is not None:
                faults.step("republish")
        except BaseException:
            for action in reversed(undo):
                action()
            # Readers may already have seen a republish carrying the
            # half-applied (or, at the final step, fully applied but
            # now reverted) move: advertise the restored ownership
            # under a fresh version so every later search is exact.
            self.engines[source].snapshots.republish()
            self.engines[target].snapshots.republish()
            self.epoch += 1
            raise

    # -- presentation / introspection ----------------------------------------

    def node_label(self, node: RID) -> str:
        return node_label(self.database, node)

    def describe(self) -> Dict[str, Any]:
        """Shard-level facts for status pages and benchmarks."""
        if self._stats_dirty:
            self.stats = stats_of(self.graph)
            self._stats_dirty = False
        return {
            "shards": self.partition.shards,
            "strategy": self.partitioner.strategy_name,
            "backend": self.backend,
            "dispatch": self.dispatch,
            "epoch": self.epoch,
            "nodes": self.partition.num_nodes,
            "edges": self.stats.num_edges,
            "cut_edges": len(self.partition.cut_edges),
            "cut_fraction": self.partition.cut_fraction(self.graph),
            "balance": self.partition.balance(),
            "shard_nodes": [
                len(nodes) for nodes in self.partition.shard_nodes
            ],
        }

    # -- lifecycle ------------------------------------------------------------

    def stop(self) -> None:
        """Stop engines, the router pool and any worker processes."""
        for engine in self.engines:
            engine.stop()
        self.pool.stop()
        if self.backend == "process":
            for worker in self._workers:
                worker.stop()

    def __enter__(self) -> "ShardRouter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardRouter({self.partition.shards} shards, {self.backend}, "
            f"{self.dispatch} dispatch, {self.stats.num_nodes} nodes, "
            f"{len(self.partition.cut_edges)} cut edges)"
        )
