"""The :class:`ShardRouter`: scatter-gather keyword search over shards.

Query protocol (two scatter phases through the serving machinery):

1. **resolve scatter** — the parsed query goes to every shard through
   the router's :class:`~repro.serve.pool.WorkerPool`; each shard
   resolves every term against its *own* slice of the inverted index.
   The gathered union reproduces unsharded resolution exactly (each
   tuple's postings live on exactly one shard).
2. **search scatter** — the query plus the gathered global keyword node
   sets go to every shard's :class:`~repro.serve.engine.QueryEngine`;
   each shard runs the backward expanding search over the *stitched*
   graph but emits only answers rooted in its own partition, fetching
   ``max_results + overfetch`` candidates.
3. **gather** — per-shard answer trees merge into a global top-k by the
   paper's answer-relevance score
   (:func:`repro.core.topk.merge_scored_answers`), deduplicating
   re-rootings of the same undirected tree.

Cross-shard answers need no completion step: the stitched graph already
contains every recorded cut edge, so a shard's trees freely cross into
other shards' territory — only the *root* is partitioned.  Against the
same database, the gathered top-k therefore matches single-engine
search scores to within float reproducibility (exactly, in practice:
both run the same arithmetic on the same graph).

Dispatch policies — the throughput finding, measured honestly:

* ``dispatch="gather"`` (default): the exact scatter-gather above.  It
  does **not** beat single-engine dispatch on throughput, on any core
  count: a shard must either emit its k candidates or *exhaust* its
  expansion to prove no better root exists in its partition, and that
  lower bound routinely costs as much as the single engine's whole
  early-stopping search (measured 0.65x–3.6x of it per query on the
  bibliography battery).  Gather is the mode whose mechanics —
  partitioned index, partitioned answer space, cut-edge stitching —
  carry over to a true memory-partitioned deployment, where per-shard
  search *is* 1/N of the work; on one box it buys semantics, not QPS.
* ``dispatch="route"``: each query goes whole to one shard worker,
  chosen by query hash (repeat queries keep shard affinity).  Every
  forked worker holds the stitched graph copy-on-write, so the worker
  computes exactly the single-engine answer list, and N workers answer
  N queries concurrently — throughput scales with cores (the
  ``bench-shard`` >= 1.5x criterion is met here).  Memory does not
  shrink; this is the policy when the graph fits and the GIL is the
  constraint.

With the process backend each worker is a forked process; the thread
backend exists for portability and deterministic tests.
"""

from __future__ import annotations

import time
import zlib
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set, Union

from repro.core.answer import AnswerTree
from repro.core.banks import node_label
from repro.core.model import build_data_graph
from repro.core.query import ParsedQuery, parse_query
from repro.core.scoring import ScoringConfig
from repro.core.search import ScoredAnswer, SearchConfig
from repro.core.topk import merge_scored_answers
from repro.core.weights import WeightPolicy
from repro.errors import ShardError
from repro.relational.database import Database, RID
from repro.serve.engine import EngineConfig, QueryEngine
from repro.serve.metrics import MetricsRegistry
from repro.serve.pool import WorkerPool
from repro.shard.partition import GraphPartitioner, Partition
from repro.shard.process import ProcessShardWorker, fork_available
from repro.shard.searcher import ShardSearcher
from repro.shard.stitch import stats_of, stitch_graph
from repro.text.inverted_index import InvertedIndex

_BACKENDS = ("thread", "process", "auto")
_DISPATCHES = ("gather", "route")


@dataclass
class ShardAnswer:
    """One globally ranked answer, annotated with shard provenance.

    Attributes:
        tree: the connection tree.
        relevance: overall relevance in [0, 1].
        rank: global rank (0 = best).
        root_shard: the shard that emitted this answer (owns the root).
    """

    tree: AnswerTree
    relevance: float
    rank: int
    root_shard: int
    _banks: "ShardRouter"

    @property
    def root(self) -> RID:
        return self.tree.root

    def shards(self) -> Set[int]:
        """Every shard contributing a node to this answer."""
        partition = self._banks.partition
        return {partition.shard_of(node) for node in self.tree.nodes}

    def is_cross_shard(self) -> bool:
        return len(self.shards()) > 1

    def render(self) -> str:
        labels = {node: self._banks.node_label(node) for node in self.tree.nodes}
        return self.tree.render_indented(labels)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardAnswer(rank={self.rank}, relevance={self.relevance:.4f}, "
            f"shards={sorted(self.shards())})"
        )


class ShardRouter:
    """Keyword search scattered over N shards, gathered to one top-k.

    Args:
        database: the data to shard and search.
        shards: shard count (>= 1).
        strategy: placement strategy (see
            :class:`~repro.shard.partition.GraphPartitioner`).
        backend: ``"thread"`` (in-process searchers), ``"process"``
            (forked workers, one per shard — CPU scaling), or
            ``"auto"`` (process where fork exists, else thread).
        dispatch: ``"gather"`` (exact scatter-gather, the default) or
            ``"route"`` (whole queries to one worker each, by query
            hash — throughput mode; see the module docstring).
        weight_policy: edge/prestige weighting (the paper's defaults).
        scoring: scoring parameters (the paper's best).
        search_config: search knobs shared by every shard.
        include_metadata: let keywords match table/column names.
        overfetch: extra per-shard candidates beyond ``max_results`` —
            insurance against the output heap's approximate ordering.
        engine_config: per-shard engine knobs; ``workers`` is forced to
            1 (one CPU-bound searcher behind each engine).
        metrics: external registry to record into (one per router).
    """

    def __init__(
        self,
        database: Database,
        shards: int = 4,
        strategy: Union[str, Any] = "hash",
        backend: str = "auto",
        dispatch: str = "gather",
        weight_policy: Optional[WeightPolicy] = None,
        scoring: Optional[ScoringConfig] = None,
        search_config: Optional[SearchConfig] = None,
        include_metadata: bool = True,
        overfetch: int = 1,
        engine_config: Optional[EngineConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if backend not in _BACKENDS:
            raise ShardError(
                f"unknown shard backend {backend!r} "
                f"(choose from {', '.join(_BACKENDS)})"
            )
        if dispatch not in _DISPATCHES:
            raise ShardError(
                f"unknown dispatch policy {dispatch!r} "
                f"(choose from {', '.join(_DISPATCHES)})"
            )
        if overfetch < 0:
            raise ShardError("overfetch must be >= 0")
        if backend == "auto":
            backend = "process" if fork_available() else "thread"
        self.database = database
        self.backend = backend
        self.dispatch = dispatch
        self.overfetch = overfetch
        self.include_metadata = include_metadata
        self.search_config = search_config or SearchConfig()

        # Build once, slice per shard.
        graph, _stats = build_data_graph(database, weight_policy or WeightPolicy())
        full_index = InvertedIndex(database)
        self.partitioner = GraphPartitioner(shards, strategy)
        self.partition: Partition = self.partitioner.partition(graph)
        # The searchers run on the *stitched* graph — reassembled from
        # the shard subgraphs plus the recorded cut edges — so a lossy
        # partition fails loudly as a parity break, never silently.
        self.graph = stitch_graph(
            self.partition.induced_subgraphs(graph),
            self.partition.cut_links(),
        )
        self.stats = stats_of(self.graph)
        self._searchers = [
            ShardSearcher(
                shard_id,
                database,
                self.graph,
                self.stats,
                self.partition.shard_nodes[shard_id],
                full_index,
                scoring=scoring,
                search_config=search_config,
                include_metadata=include_metadata,
            )
            for shard_id in range(shards)
        ]

        # Fork before any thread exists (see repro.shard.process), then
        # put a QueryEngine in front of each shard worker.
        if backend == "process":
            self._workers: List[Any] = [
                ProcessShardWorker(searcher) for searcher in self._searchers
            ]
        else:
            self._workers = list(self._searchers)

        base = engine_config or EngineConfig()
        per_shard = EngineConfig(
            workers=1,
            queue_bound=base.queue_bound,
            default_deadline=base.default_deadline,
            shed_policy=base.shed_policy,
            dedup=False,
            metrics_window=base.metrics_window,
        )
        self.engines = [QueryEngine(worker, per_shard) for worker in self._workers]
        self.pool = WorkerPool(
            workers=max(2, shards), queue_bound=0, name="shard-router"
        )

        self.metrics = metrics or MetricsRegistry(prefix="banks_shard")
        m = self.metrics
        self._queries = m.counter("queries_total", "scatter-gather searches")
        self._answers = m.counter("answers_total", "answers returned")
        self._cross = m.counter(
            "cross_shard_answers_total",
            "returned answers spanning more than one shard",
        )
        m.gauge("shards", "shard count", fn=lambda: self.partition.shards)
        m.gauge(
            "cut_edges",
            "directed edges crossing the partition",
            fn=lambda: len(self.partition.cut_edges),
        )
        self._latency = m.latency("latency_seconds", "scatter-to-gather latency")
        self._shard_searches: List[Any] = []
        for shard_id, engine in enumerate(self.engines):
            self._shard_searches.append(
                m.counter(
                    f"shard{shard_id}_searches_total",
                    f"sub-searches scattered to shard {shard_id}",
                )
            )
            m.gauge(
                f"shard{shard_id}_nodes",
                f"nodes owned by shard {shard_id}",
                fn=lambda i=shard_id: len(self.partition.shard_nodes[i]),
            )
            m.gauge(
                f"shard{shard_id}_completed_total",
                f"sub-searches completed by shard {shard_id}'s engine",
                fn=lambda e=engine: e.metrics.snapshot()["completed_total"],
            )

    # -- the search path ------------------------------------------------------

    def resolve(self, query: Union[str, ParsedQuery]) -> List[Set[RID]]:
        """Global per-term node sets, gathered from every shard."""
        parsed = parse_query(query) if isinstance(query, str) else query
        per_shard = self.pool.map(lambda worker: worker.resolve(parsed), self._workers)
        node_sets: List[Set[RID]] = [set() for _ in parsed.terms]
        for shard_sets in per_shard:
            for term_index, nodes in enumerate(shard_sets):
                node_sets[term_index].update(nodes)
        return node_sets

    def search(
        self,
        query: Union[str, ParsedQuery],
        max_results: Optional[int] = None,
        timeout: Optional[float] = None,
        **config_overrides,
    ) -> List[ShardAnswer]:
        """Answer a keyword query under the configured dispatch policy:
        scatter-search-gather-rank, or route whole to one worker."""
        start = time.monotonic()
        self._queries.inc()
        wanted = (
            max_results
            if max_results is not None
            else self.search_config.max_results
        )
        parsed = parse_query(query) if isinstance(query, str) else query
        if self.dispatch == "route":
            merged = self._route(parsed, wanted, timeout, config_overrides)
        else:
            merged = self._scatter_gather(
                parsed, wanted, timeout, config_overrides
            )
        answers = [
            ShardAnswer(
                scored.tree,
                scored.relevance,
                rank,
                self.partition.shard_of(scored.tree.root),
                self,
            )
            for rank, scored in enumerate(merged)
        ]
        self._answers.inc(len(answers))
        self._cross.inc(sum(1 for a in answers if a.is_cross_shard()))
        self._latency.observe(time.monotonic() - start)
        return answers

    def _scatter_gather(
        self, parsed: ParsedQuery, wanted: int, timeout, config_overrides
    ) -> List[ScoredAnswer]:
        """Exact scatter-gather: all shards, roots partitioned."""
        keyword_node_sets = self.resolve(parsed)
        futures = []
        for shard_id, engine in enumerate(self.engines):
            self._shard_searches[shard_id].inc()
            try:
                futures.append(
                    engine.submit(
                        parsed,
                        keyword_node_sets=keyword_node_sets,
                        max_results=wanted + self.overfetch,
                        **config_overrides,
                    )
                )
            except BaseException:
                for queued in futures:
                    queued.cancel()
                raise
        # One deadline for the whole gather: the caller's timeout bounds
        # the scatter-gather, not each shard individually.
        gather_deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        per_shard: List[List[ScoredAnswer]] = []
        for position, future in enumerate(futures):
            remaining = (
                None
                if gather_deadline is None
                else max(0.0, gather_deadline - time.monotonic())
            )
            try:
                per_shard.append(future.result(timeout=remaining).answers)
            except BaseException:
                for queued in futures[position:]:
                    queued.cancel()
                raise
        return merge_scored_answers(per_shard, wanted)

    def _route(
        self, parsed: ParsedQuery, wanted: int, timeout, config_overrides
    ) -> List[ScoredAnswer]:
        """Route the whole query to one worker, by query hash."""
        shard_id = zlib.crc32(repr(parsed).encode("utf-8")) % len(
            self.engines
        )
        self._shard_searches[shard_id].inc()
        future = self.engines[shard_id].submit(
            parsed,
            unrestricted=True,
            max_results=wanted,
            **config_overrides,
        )
        # Emission order is preserved: a routed query returns exactly
        # the single-engine answer list, not a re-sorted view of it.
        return future.result(timeout=timeout).answers

    # -- presentation / introspection ----------------------------------------

    def node_label(self, node: RID) -> str:
        return node_label(self.database, node)

    def describe(self) -> Dict[str, Any]:
        """Shard-level facts for status pages and benchmarks."""
        return {
            "shards": self.partition.shards,
            "strategy": self.partitioner.strategy_name,
            "backend": self.backend,
            "dispatch": self.dispatch,
            "nodes": self.partition.num_nodes,
            "edges": self.stats.num_edges,
            "cut_edges": len(self.partition.cut_edges),
            "cut_fraction": self.partition.cut_fraction(self.graph),
            "balance": self.partition.balance(),
            "shard_nodes": [
                len(nodes) for nodes in self.partition.shard_nodes
            ],
        }

    # -- lifecycle ------------------------------------------------------------

    def stop(self) -> None:
        """Stop engines, the router pool and any worker processes."""
        for engine in self.engines:
            engine.stop()
        self.pool.stop()
        if self.backend == "process":
            for worker in self._workers:
                worker.stop()

    def __enter__(self) -> "ShardRouter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardRouter({self.partition.shards} shards, {self.backend}, "
            f"{self.dispatch} dispatch, {self.stats.num_nodes} nodes, "
            f"{len(self.partition.cut_edges)} cut edges)"
        )
