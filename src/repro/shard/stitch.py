"""Reassembling the global search graph from shard subgraphs.

The scatter-gather search needs cross-shard answers to score *exactly*
as they do on the unsharded graph (the acceptance bar is score equality
to 1e-9), so the per-shard searchers do not search their bare subgraphs
— they search the *stitched* graph: the union of every shard's induced
subgraph plus the partition's recorded cut edges, re-applied through
the federation layer's :class:`~repro.federate.links.TupleLink` records
with the same min-merge rule federated graph construction uses.

Stitching is the load-bearing proof that the partition is lossless: the
router builds its search graph this way (never reusing the original),
so a partitioner that dropped or mis-weighted a cut edge would surface
immediately as a parity failure against single-engine search.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.model import GraphStats
from repro.errors import ShardError
from repro.federate.federation import offer_min_edge
from repro.federate.links import TupleLink
from repro.graph.digraph import DiGraph


def stitch_graph(
    subgraphs: Sequence[DiGraph],
    cut_links: Iterable[TupleLink],
) -> DiGraph:
    """Union the shard subgraphs, then re-apply the cut edges.

    Raises:
        ShardError: when a cut link references a node absent from every
            subgraph, or two subgraphs claim the same node (a partition
            must be disjoint).
    """
    graph = DiGraph()
    for subgraph in subgraphs:
        for node in subgraph.nodes():
            if graph.has_node(node):
                raise ShardError(
                    f"node {node!r} appears in more than one shard subgraph"
                )
            graph.add_node(node, subgraph.node_weight(node))
        for source, target, weight in subgraph.edges():
            graph.add_edge(source, target, weight)
    for link in cut_links:
        if not graph.has_node(link.source) or not graph.has_node(link.target):
            raise ShardError(
                f"cut link endpoint missing from stitched graph: "
                f"{link.source} -> {link.target}"
            )
        offer_min_edge(graph, link.source, link.target, link.weight)
    return graph


def stats_of(graph: DiGraph) -> GraphStats:
    """Scoring normalisers of a stitched graph.

    Mirrors :func:`repro.core.model.build_data_graph` exactly — the
    normalisers feed every relevance score, so any drift here would
    break score parity with the unsharded engine.
    """
    min_edge = graph.min_edge_weight() if graph.num_edges else 1.0
    max_node = graph.max_node_weight() if graph.num_nodes else 1.0
    return GraphStats(
        min_edge_weight=min_edge,
        max_node_weight=max(max_node, 1.0e-12),
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
    )


def graphs_equal(left: DiGraph, right: DiGraph) -> bool:
    """Structural equality: same nodes, weights and weighted edges."""
    if left.num_nodes != right.num_nodes or left.num_edges != right.num_edges:
        return False
    for node in left.nodes():
        if not right.has_node(node):
            return False
        if left.node_weight(node) != right.node_weight(node):
            return False
    for source, target, weight in left.edges():
        if not right.has_edge(source, target):
            return False
        if right.edge_weight(source, target) != weight:
            return False
    return True
