"""Single-flight deduplication of identical in-flight computations.

Interactive search traffic is heavily skewed: the same few queries
arrive again and again, often *simultaneously* (a result page shared in
a chat, a browser retry storm).  A result cache only helps after the
first computation finishes; while it is still running, naive dispatch
computes the same answer N times on N workers.  Single-flight closes
that window: the first request for a key becomes the *leader* and
computes; every concurrent duplicate becomes a *follower* and simply
waits on the leader's future.

The registry only tracks work *in flight* — once a key's future is
resolved the entry is discarded (a completed computation is the result
cache's job, not ours).
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from typing import Dict, Hashable, Optional, Tuple


class SingleFlight:
    """Registry mapping keys to in-flight futures.

    Usage (the engine's admission path)::

        future, leader = flights.join(key)
        if leader:
            enqueue_computation(..., future=future)
            # on completion (any outcome) the worker calls:
            flights.forget(key)
        return future  # follower or leader, same object
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._flights: Dict[Hashable, Future] = {}

    def join(self, key: Optional[Hashable]) -> Tuple[Future, bool]:
        """Return ``(future, is_leader)`` for ``key``.

        ``key=None`` means "not deduplicatable" (unhashable or opted
        out): always a fresh future and leadership.
        """
        if key is None:
            return Future(), True
        with self._lock:
            existing = self._flights.get(key)
            if existing is not None and not existing.done():
                return existing, False
            # No flight — or, defensively, a stale resolved one (the
            # leader forgets before resolving, so a done future here
            # means a cleanup path was missed): start fresh rather than
            # latch onto a dead future.
            future: Future = Future()
            self._flights[key] = future
            return future, True

    def forget(self, key: Optional[Hashable]) -> None:
        """Drop ``key`` from the registry (leader calls this *before*
        resolving the future, so a request admitted afterwards starts a
        new flight rather than latching onto a finished one)."""
        if key is None:
            return
        with self._lock:
            self._flights.pop(key, None)

    def __len__(self) -> int:
        with self._lock:
            return len(self._flights)
