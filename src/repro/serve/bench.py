"""Serving throughput benchmark: engine vs serialized dispatch.

Shared by the ``banks bench-serve`` CLI command and
``benchmarks/bench_serve.py``.  The workload is Zipfian over a fixed
query set — interactive search traffic is heavily skewed (reloads,
shared result links), which is precisely the regime the serving
engine's single-flight + result cache is built for.  The baseline is
what the seed repo did: one thread calling the plain facade per
request, recomputing every time.

The comparison is honest about where the win comes from: pure-Python
graph search does not parallelise across threads under the GIL, so the
engine's throughput edge on a CPU-bound workload is collapse of
duplicate work (dedup + cache), while the pool buys isolation (slow
queries cannot block admission) and overlap for any backend that
releases the GIL (sqlite, future native kernels).
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

from repro.core.banks import BANKS

from repro.datasets.bibliography import DEMO_QUERIES

#: Queries with real matches in ``demo:bibliography`` (generator
#: vocabulary); shared with the sharding benchmark via the dataset.
BIBLIOGRAPHY_QUERIES: Tuple[str, ...] = DEMO_QUERIES


def zipfian_workload(
    queries: Sequence[str],
    requests: int,
    seed: int = 0,
    exponent: float = 1.1,
) -> List[str]:
    """A deterministic request stream, Zipf-skewed over ``queries``."""
    weights = [1.0 / (rank + 1) ** exponent for rank in range(len(queries))]
    rng = random.Random(seed)
    return rng.choices(list(queries), weights=weights, k=requests)


@dataclass
class ServeBenchReport:
    """Outcome of one engine-vs-serial comparison run."""

    requests: int
    distinct_queries: int
    concurrency: int
    workers: int
    queue_bound: int
    serial_seconds: float
    engine_seconds: float
    shed: int
    deduplicated: int
    completed: int
    cache_hit_rate: float
    results_match: bool
    engine_p50_ms: float = 0.0

    @property
    def speedup(self) -> float:
        if self.engine_seconds <= 0:
            return float("inf")
        return self.serial_seconds / self.engine_seconds

    @property
    def serial_qps(self) -> float:
        return self.requests / self.serial_seconds if self.serial_seconds else 0.0

    @property
    def engine_qps(self) -> float:
        return self.requests / self.engine_seconds if self.engine_seconds else 0.0

    def render(self) -> str:
        lines = [
            f"requests          : {self.requests} "
            f"({self.distinct_queries} distinct, Zipf-skewed)",
            f"concurrency       : {self.concurrency} clients",
            f"engine            : {self.workers} workers, "
            f"queue bound {self.queue_bound}",
            f"serialized dispatch: {self.serial_seconds:.3f} s "
            f"({self.serial_qps:.1f} qps)",
            f"engine dispatch   : {self.engine_seconds:.3f} s "
            f"({self.engine_qps:.1f} qps)",
            f"speedup           : {self.speedup:.2f}x",
            f"engine p50 latency: {self.engine_p50_ms:.1f} ms",
            f"shed              : {self.shed}",
            f"single-flight dedup: {self.deduplicated}",
            f"cache hit rate    : {self.cache_hit_rate:.2%}",
            f"top-k matches facade: {'yes' if self.results_match else 'NO'}",
        ]
        return "\n".join(lines)


def _result_signature(answers: List[Any]) -> List[Tuple]:
    return [
        (answer.tree.undirected_key(), round(answer.relevance, 9))
        for answer in answers
    ]


def run_serving_benchmark(
    database,
    queries: Optional[Sequence[str]] = None,
    requests: int = 200,
    concurrency: int = 8,
    workers: int = 8,
    queue_bound: int = 64,
    max_results: int = 10,
    seed: int = 0,
) -> ServeBenchReport:
    """Measure serialized single-thread dispatch vs the engine.

    Both sides answer the same Zipfian workload over ``database``.  The
    serial side is a fresh plain :class:`BANKS` facade called in a loop;
    the engine side is ``concurrency`` client threads submitting to a
    :class:`QueryEngine` over a :class:`CachedBanks`.  Also verifies
    that for every distinct query the engine's top-k equals the plain
    facade's.
    """
    queries = list(queries or BIBLIOGRAPHY_QUERIES)
    workload = zipfian_workload(queries, requests, seed=seed)

    serial_facade = BANKS(database)
    start = time.perf_counter()
    for query in workload:
        serial_facade.search(query, max_results=max_results)
    serial_seconds = time.perf_counter() - start

    # The engine side stands up through the cluster layer — the same
    # construction path ``banks serve`` uses — so the benchmark
    # measures exactly the deployment an operator gets (a QueryEngine
    # over a CachedBanks, shed policy "reject").
    from repro.cluster import Cluster, ClusterSpec

    spec = ClusterSpec(
        topology="single", workers=workers, queue_bound=queue_bound
    )
    with Cluster(spec, database=database) as cluster:
        engine = cluster.backend
        errors: List[BaseException] = []

        def client(stream: List[str]) -> None:
            for query in stream:
                try:
                    engine.search(query, max_results=max_results)
                except BaseException as error:  # noqa: BLE001 - reported
                    errors.append(error)

        clients = [
            threading.Thread(target=client, args=(workload[i::concurrency],))
            for i in range(concurrency)
        ]
        start = time.perf_counter()
        for thread in clients:
            thread.start()
        for thread in clients:
            thread.join()
        engine_seconds = time.perf_counter() - start
        if errors:
            raise errors[0]

        # Snapshot the metrics before the verification pass below, so
        # the reported hit rate / counters describe only the timed load.
        snapshot = engine.metrics.snapshot()
        results_match = all(
            _result_signature(engine.search(query, max_results=max_results))
            == _result_signature(
                serial_facade.search(query, max_results=max_results)
            )
            for query in queries
        )

    return ServeBenchReport(
        requests=requests,
        distinct_queries=len(queries),
        concurrency=concurrency,
        workers=workers,
        queue_bound=queue_bound,
        serial_seconds=serial_seconds,
        engine_seconds=engine_seconds,
        shed=int(snapshot["shed_total"]),
        deduplicated=int(snapshot["dedup_shared_total"]),
        completed=int(snapshot["completed_total"]),
        cache_hit_rate=float(snapshot["cache_hit_rate"]),
        results_match=results_match,
        engine_p50_ms=1000.0 * float(snapshot["latency_seconds_p50"]),
    )
