"""``repro.serve`` — concurrent query serving over a BANKS facade.

The layer between front ends (web app, CLI, federation) and the
in-memory engine.  The subsystem contract:

* :mod:`repro.serve.engine` — :class:`QueryEngine` fronts any facade
  with a ``search`` method: a fixed worker pool
  (:mod:`repro.serve.pool`), bounded admission with shedding or
  back-pressure and per-request deadlines, and single-flight
  deduplication (:mod:`repro.serve.singleflight`) keyed on the
  snapshot version, so deduplicated requests are exactly as consistent
  as independent ones.
* :mod:`repro.serve.snapshot` — :class:`SnapshotStore`, the
  single-writer / many-reader MVCC boundary: readers pin an immutable
  version wait-free; :meth:`~SnapshotStore.mutate` applies a batch to
  a private copy and publishes atomically.  ``copy_mode="delta"``
  captures O(delta) copy-on-write forks and publishes each batch as a
  :class:`~repro.store.log.DeltaLog` epoch; with a WAL attached
  (``wal=`` / ``EngineConfig.wal_path``) every epoch is durable before
  readers see it — the write-ahead contract behind ``banks recover``
  and :class:`~repro.store.wal.ReplicaFollower` replicas.
* :mod:`repro.serve.metrics` — the engine-level
  :class:`MetricsRegistry` (counters, gauges, latency windows,
  Prometheus-style histograms) rendered at ``/metrics``; every series
  is documented in ``docs/OPERATIONS.md``.

The layer map and request/mutation data flows are drawn in
``docs/ARCHITECTURE.md``; :mod:`repro.serve.engine` holds the
per-mechanism details.
"""

from repro.serve.engine import EngineConfig, QueryEngine, QueryOutcome
from repro.serve.metrics import Histogram, MetricsRegistry
from repro.serve.pool import WorkerPool
from repro.serve.singleflight import SingleFlight
from repro.serve.snapshot import Snapshot, SnapshotStore, supports_delta

__all__ = [
    "EngineConfig",
    "Histogram",
    "MetricsRegistry",
    "QueryEngine",
    "QueryOutcome",
    "SingleFlight",
    "Snapshot",
    "SnapshotStore",
    "WorkerPool",
    "supports_delta",
]
