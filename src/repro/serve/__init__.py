"""``repro.serve`` — concurrent query serving over a BANKS facade.

The layer between front ends (web app, CLI, federation) and the
in-memory engine: a worker pool with admission control, single-flight
deduplication of identical in-flight queries, snapshot isolation
against incremental mutations, and an engine-level metrics registry.
See :mod:`repro.serve.engine` for the architecture overview.
"""

from repro.serve.engine import EngineConfig, QueryEngine, QueryOutcome
from repro.serve.metrics import Histogram, MetricsRegistry
from repro.serve.pool import WorkerPool
from repro.serve.singleflight import SingleFlight
from repro.serve.snapshot import Snapshot, SnapshotStore, supports_delta

__all__ = [
    "EngineConfig",
    "Histogram",
    "MetricsRegistry",
    "QueryEngine",
    "QueryOutcome",
    "SingleFlight",
    "Snapshot",
    "SnapshotStore",
    "WorkerPool",
    "supports_delta",
]
