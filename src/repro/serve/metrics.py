"""Engine-level metrics: counters, gauges and latency quantiles.

A serving layer is only tunable if it is observable — pool size, queue
bound and deadlines are chosen by looking at QPS, queue depth, shed
rate and tail latency.  This module is a dependency-free miniature of
the Prometheus client model:

* :class:`Counter` — monotone event counts (requests, sheds, errors);
* :class:`Gauge` — instantaneous values, optionally computed on read
  (queue depth straight from the pool's queue);
* :class:`LatencyWindow` — a sliding time window of request latencies
  giving p50/p95 and a windowed QPS;
* :class:`Histogram` — cumulative buckets in the Prometheus
  ``_bucket{le="..."}`` / ``_sum`` / ``_count`` shape, for latencies
  and snapshot-copy costs where a real dashboard wants full
  distributions rather than two quantiles;
* :class:`MetricsRegistry` — the named collection, exposed both as a
  Python API (:meth:`MetricsRegistry.snapshot`) and as the plaintext
  exposition format (:meth:`MetricsRegistry.render_text`) the browse
  app serves at ``/metrics``.

Everything is thread-safe; hot-path cost is one lock acquisition and an
append.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from typing import Callable, Deque, Dict, List, Mapping, Optional, Tuple

from repro.errors import ServeError


def _escape_label_value(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace("\n", "\\n")
        .replace('"', '\\"')
    )


def _label_suffix(labels: Optional[Mapping[str, str]]) -> str:
    """``{k="v",...}`` in sorted key order, or ``""`` when unlabeled."""
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label_value(value)}"'
        for key, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def series_id(name: str, labels: Optional[Mapping[str, str]] = None) -> str:
    """The identity of one series: family name plus rendered labels.

    Registry keys and :meth:`MetricsRegistry.snapshot` keys both use
    this, so ``replica_lag_epochs{replica="1"}`` and
    ``replica_lag_epochs{replica="2"}`` are distinct series of one
    family."""
    return name + _label_suffix(labels)


class Counter:
    """A monotonically increasing event count."""

    def __init__(
        self,
        name: str,
        help_text: str = "",
        labels: Optional[Mapping[str, str]] = None,
    ):
        self.name = name
        self.help_text = help_text
        self.labels = dict(labels or {})
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """An instantaneous value; ``fn`` makes it computed-on-read."""

    def __init__(
        self,
        name: str,
        help_text: str = "",
        fn: Optional[Callable[[], float]] = None,
        labels: Optional[Mapping[str, str]] = None,
    ):
        self.name = name
        self.help_text = help_text
        self.labels = dict(labels or {})
        self._fn = fn
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        if self._fn is not None:
            return float(self._fn())
        with self._lock:
            return self._value


class LatencyWindow:
    """Request latencies over a sliding wall-clock window.

    Quantiles computed over the window by sorting on read — the window
    is bounded (``max_samples``), so reads stay cheap and the hot path
    (one append) never sorts.
    """

    def __init__(
        self,
        name: str,
        help_text: str = "",
        window_seconds: float = 60.0,
        max_samples: int = 4096,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.name = name
        self.help_text = help_text
        self.window_seconds = window_seconds
        self._clock = clock
        self._created = clock()
        self._samples: Deque[Tuple[float, float]] = deque(maxlen=max_samples)
        self._lock = threading.Lock()

    def observe(self, seconds: float) -> None:
        with self._lock:
            self._samples.append((self._clock(), float(seconds)))

    def _window(self) -> List[float]:
        horizon = self._clock() - self.window_seconds
        with self._lock:
            while self._samples and self._samples[0][0] < horizon:
                self._samples.popleft()
            return [latency for _stamp, latency in self._samples]

    def summary(self) -> Tuple[float, float, float, int]:
        """``(p50, p95, qps, count)`` from one pruned, sorted pass —
        the read path for exposition, so a scrape pays one copy+sort
        per window instead of one per statistic."""
        window = sorted(self._window())
        if not window:
            return (0.0, 0.0, 0.0, 0)
        # Warm-up: divide by elapsed, not the full window, or QPS is
        # underreported by up to the window/elapsed ratio.
        elapsed = min(self.window_seconds, self._clock() - self._created)
        qps = len(window) / max(elapsed, 1e-9)
        return (
            self._pick(window, 0.50),
            self._pick(window, 0.95),
            qps,
            len(window),
        )

    @staticmethod
    def _pick(sorted_window: List[float], q: float) -> float:
        index = min(len(sorted_window) - 1, int(q * len(sorted_window)))
        return sorted_window[index]

    def quantile(self, q: float) -> float:
        """The ``q``-quantile latency in seconds (0.0 when empty)."""
        window = sorted(self._window())
        if not window:
            return 0.0
        return self._pick(window, q)

    def qps(self) -> float:
        """Completions per second over the elapsed part of the window."""
        return self.summary()[2]

    @property
    def count(self) -> int:
        return len(self._window())


#: Default histogram buckets (seconds): spans sub-millisecond snapshot
#: forks through multi-second scatter-gather searches.
DEFAULT_BUCKETS = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
)


class Histogram:
    """Cumulative-bucket histogram (the Prometheus client model).

    ``observe`` is one lock acquisition plus a linear scan over a
    short, fixed bucket list; reads return cumulative counts, so the
    exposition output needs no post-processing.
    """

    def __init__(
        self,
        name: str,
        help_text: str = "",
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
        labels: Optional[Mapping[str, str]] = None,
    ):
        if not buckets or list(buckets) != sorted(buckets):
            raise ServeError("histogram buckets must be sorted and non-empty")
        self.name = name
        self.help_text = help_text
        self.labels = dict(labels or {})
        self.buckets = tuple(float(b) for b in buckets)
        # counts[i] = observations <= buckets[i]; the +Inf bucket is
        # implicit in _count.
        self._counts = [0] * len(self.buckets)
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._sum += value
            self._count += 1
            for position, bound in enumerate(self.buckets):
                if value <= bound:
                    self._counts[position] += 1

    def summary(self) -> Tuple[List[Tuple[float, int]], float, int]:
        """``(cumulative bucket counts, sum, count)`` in one lock."""
        with self._lock:
            return (
                list(zip(self.buckets, self._counts)),
                self._sum,
                self._count,
            )

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum


class MetricsRegistry:
    """Named metrics with a plaintext exposition endpoint.

    Names follow Prometheus conventions (``snake_case``, ``_total``
    suffix on counters, base-unit ``_seconds``); quantiles render with
    a ``{quantile="..."}`` label so standard scrapers parse the output.
    """

    def __init__(self, prefix: str = "banks_engine"):
        self.prefix = prefix
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._latencies: Dict[str, LatencyWindow] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- registration (idempotent by series: name + labels) --------------------

    def counter(
        self,
        name: str,
        help_text: str = "",
        labels: Optional[Mapping[str, str]] = None,
    ) -> Counter:
        key = series_id(name, labels)
        with self._lock:
            if key not in self._counters:
                self._counters[key] = Counter(name, help_text, labels)
            return self._counters[key]

    def gauge(
        self,
        name: str,
        help_text: str = "",
        fn: Optional[Callable[[], float]] = None,
        labels: Optional[Mapping[str, str]] = None,
    ) -> Gauge:
        key = series_id(name, labels)
        with self._lock:
            existing = self._gauges.get(key)
            if existing is None:
                self._gauges[key] = Gauge(name, help_text, fn, labels)
                return self._gauges[key]
            if fn is not None and existing._fn is not fn:
                # Silently keeping the first callback would report the
                # wrong source (e.g. a second engine sharing a registry
                # would read the first engine's queue depth forever).
                raise ServeError(
                    f"gauge {key!r} already registered with a different "
                    "callback; give each engine its own MetricsRegistry"
                )
            return existing

    def latency(
        self, name: str, help_text: str = "", window_seconds: float = 60.0
    ) -> LatencyWindow:
        with self._lock:
            if name not in self._latencies:
                self._latencies[name] = LatencyWindow(
                    name, help_text, window_seconds
                )
            return self._latencies[name]

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: Optional[Tuple[float, ...]] = None,
        labels: Optional[Mapping[str, str]] = None,
    ) -> Histogram:
        key = series_id(name, labels)
        with self._lock:
            if key not in self._histograms:
                self._histograms[key] = Histogram(
                    name, help_text, buckets or DEFAULT_BUCKETS, labels
                )
            return self._histograms[key]

    # -- reading --------------------------------------------------------------

    def snapshot(self) -> Dict[str, float]:
        """Every metric flattened to ``name -> value`` (quantiles as
        ``name_p50`` / ``name_p95``, throughput as ``name_qps``)."""
        with self._lock:
            counters = list(self._counters.values())
            gauges = list(self._gauges.values())
            latencies = list(self._latencies.values())
            histograms = list(self._histograms.values())
        out: Dict[str, float] = {}
        for counter in counters:
            out[series_id(counter.name, counter.labels)] = counter.value
        for gauge in gauges:
            out[series_id(gauge.name, gauge.labels)] = gauge.value
        for latency in latencies:
            p50, p95, qps, _count = latency.summary()
            out[f"{latency.name}_p50"] = p50
            out[f"{latency.name}_p95"] = p95
            out[f"{latency.name}_qps"] = qps
        for histogram in histograms:
            _buckets, total, count = histogram.summary()
            suffix = _label_suffix(histogram.labels)
            out[f"{histogram.name}_count{suffix}"] = count
            out[f"{histogram.name}_sum{suffix}"] = total
        return out

    def render_text(self) -> str:
        """The plaintext exposition format.

        Every family gets one ``# HELP`` / ``# TYPE`` pair (the help
        text defaults to the family name when none was given) followed
        by all of its series — labeled series of one family render as
        adjacent ``name{k="v"} value`` lines, as the Prometheus text
        format requires.  The summary's derived ``_qps`` series is its
        own gauge family."""
        with self._lock:
            counters = list(self._counters.values())
            gauges = list(self._gauges.values())
            latencies = list(self._latencies.values())
            histograms = list(self._histograms.values())
        lines: List[str] = []

        def full(name: str) -> str:
            return f"{self.prefix}_{name}" if self.prefix else name

        def families(metrics):
            grouped: "OrderedDict[str, list]" = OrderedDict()
            for metric in metrics:
                grouped.setdefault(metric.name, []).append(metric)
            return grouped.items()

        def header(name: str, help_text: str, kind: str) -> None:
            text = (help_text or name).replace("\\", "\\\\").replace("\n", "\\n")
            lines.append(f"# HELP {full(name)} {text}")
            lines.append(f"# TYPE {full(name)} {kind}")

        for name, members in families(counters):
            header(name, members[0].help_text, "counter")
            for counter in members:
                suffix = _label_suffix(counter.labels)
                lines.append(f"{full(name)}{suffix} {counter.value}")
        for name, members in families(gauges):
            header(name, members[0].help_text, "gauge")
            for gauge in members:
                suffix = _label_suffix(gauge.labels)
                lines.append(f"{full(name)}{suffix} {gauge.value:g}")
        qps_series: List[Tuple[str, str, float]] = []
        for latency in latencies:
            name = full(latency.name)
            header(latency.name, latency.help_text, "summary")
            p50, p95, qps, count = latency.summary()
            lines.append(f'{name}{{quantile="0.5"}} {p50:.6f}')
            lines.append(f'{name}{{quantile="0.95"}} {p95:.6f}')
            lines.append(f"{name}_count {count}")
            qps_series.append(
                (latency.name + "_qps", latency.help_text, qps)
            )
        for qps_name, help_text, qps in qps_series:
            base = help_text or qps_name
            header(qps_name, f"{base} (windowed completions per second)", "gauge")
            lines.append(f"{full(qps_name)} {qps:.3f}")
        for name, members in families(histograms):
            header(name, members[0].help_text, "histogram")
            for histogram in members:
                buckets, total, count = histogram.summary()
                labels = dict(histogram.labels)
                for bound, cumulative in buckets:
                    le = _label_suffix({**labels, "le": f"{bound:g}"})
                    lines.append(f"{full(name)}_bucket{le} {cumulative}")
                le = _label_suffix({**labels, "le": "+Inf"})
                lines.append(f"{full(name)}_bucket{le} {count}")
                suffix = _label_suffix(labels)
                lines.append(f"{full(name)}_sum{suffix} {total:.6f}")
                lines.append(f"{full(name)}_count{suffix} {count}")
        return "\n".join(lines) + "\n"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MetricsRegistry({len(self._counters)} counters, "
            f"{len(self._gauges)} gauges, {len(self._latencies)} windows)"
        )
