"""Snapshot isolation between searches and graph mutations.

:mod:`repro.core.incremental` mutates the data graph *in place* — safe
for one thread, catastrophic for a worker pool: Dijkstra iterators
observe half-applied deltas, scoring normalisers change mid-ranking.
The serving layer therefore never lets readers and the writer share a
facade.  :class:`SnapshotStore` implements multi-version concurrency
control with a single writer:

* readers call :meth:`current` and pin an immutable-by-contract
  snapshot for the whole search — publication is one reference
  assignment, so pinning is wait-free and never blocks the writer;
* the writer calls :meth:`mutate` with a function receiving a private
  deep copy of the newest facade; when the function returns, the copy
  is published as the next version.

A reader admitted before a publish keeps its old version until it
finishes (that version stays alive exactly as long as someone
references it — plain refcounting, no epoch bookkeeping).  Writers are
serialised by a lock, so versions advance linearly.

The copy makes writes O(data) — deliberately so: BANKS graphs are
"modest amounts of memory" (Sec. 5.2) and reads outnumber writes by
orders of magnitude in the paper's web-publishing workload.  Batch
mutations through one :meth:`mutate` call to amortise the copy.
"""

from __future__ import annotations

import copy
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, List, Sequence


@dataclass(frozen=True)
class Snapshot:
    """One published version: never mutated after publication."""

    version: int
    facade: Any


class SnapshotStore:
    """Single-writer / many-reader versioned store of BANKS facades.

    The deep copy dominates write cost (ROADMAP: "cheaper snapshots"),
    so the store meters it: :attr:`copies` counts copies taken and
    :attr:`copy_seconds` accumulates the time spent inside
    ``copy.deepcopy`` — the engine surfaces both through its metrics
    registry, making the O(data) write price visible before anyone
    tunes batch sizes against it.
    """

    def __init__(self, facade: Any):
        self._current = Snapshot(0, facade)
        self._write_lock = threading.Lock()
        self.copies = 0
        self.copy_seconds = 0.0

    def current(self) -> Snapshot:
        """Pin the newest snapshot (wait-free)."""
        return self._current

    @property
    def version(self) -> int:
        return self._current.version

    def _clone_current(self) -> Any:
        started = time.perf_counter()
        clone = copy.deepcopy(self._current.facade)
        self.copy_seconds += time.perf_counter() - started
        self.copies += 1
        return clone

    def mutate(self, fn: Callable[[Any], Any]) -> Any:
        """Apply ``fn`` to a private copy of the newest facade, then
        publish the copy as the next version.  Returns ``fn``'s result.

        ``fn`` typically calls :class:`IncrementalBANKS` mutation
        methods (``insert`` / ``delete`` / ``update``); it may apply any
        number of them — the whole batch becomes visible atomically.
        If ``fn`` raises, nothing is published (the failed copy is
        discarded) and the exception propagates.
        """
        with self._write_lock:
            clone = self._clone_current()
            result = fn(clone)
            self._seal(clone)
            self._current = Snapshot(self._current.version + 1, clone)
            return result

    def mutate_batch(self, operations: Sequence[Callable[[Any], Any]]) -> List[Any]:
        """Apply a batch of mutation operations under *one* copy.

        The batch form exists because the copy is the dominant cost: N
        operations through :meth:`mutate` pay N copies, a batch pays
        one — and an **empty batch pays none**: no copy is taken, no
        version is published, readers are completely undisturbed.
        Returns the operations' results, in order.
        """
        operations = list(operations)
        if not operations:
            return []
        with self._write_lock:
            clone = self._clone_current()
            results = [operation(clone) for operation in operations]
            self._seal(clone)
            self._current = Snapshot(self._current.version + 1, clone)
            return results

    @staticmethod
    def _seal(facade: Any) -> None:
        """Make the clone read-only in practice before publication.

        ``IncrementalBANKS`` recomputes scoring normalisers lazily on
        the first search after a mutation — a hidden write that would
        race between concurrent readers.  Forcing the refresh here means
        a published snapshot's searches touch no shared mutable state.
        Result caches deep-copy as empty (see
        :meth:`repro.core.cache.ResultCache.__deepcopy__`), so no stale
        answers survive the copy either.
        """
        refresh = getattr(facade, "_refresh_stats", None)
        if callable(refresh):
            refresh()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SnapshotStore(version={self.version})"
