"""Snapshot isolation between searches and graph mutations.

:mod:`repro.core.incremental` mutates the data graph *in place* — safe
for one thread, catastrophic for a worker pool: Dijkstra iterators
observe half-applied deltas, scoring normalisers change mid-ranking.
The serving layer therefore never lets readers and the writer share a
facade.  :class:`SnapshotStore` implements multi-version concurrency
control with a single writer:

* readers call :meth:`current` and pin an immutable-by-contract
  snapshot for the whole search — publication is one reference
  assignment, so pinning is wait-free and never blocks the writer;
* the writer calls :meth:`mutate` with a function receiving a private
  deep copy of the newest facade; when the function returns, the copy
  is published as the next version.

A reader admitted before a publish keeps its old version until it
finishes (that version stays alive exactly as long as someone
references it — plain refcounting, no epoch bookkeeping).  Writers are
serialised by a lock, so versions advance linearly.

The copy makes writes O(data) — deliberately so: BANKS graphs are
"modest amounts of memory" (Sec. 5.2) and reads outnumber writes by
orders of magnitude in the paper's web-publishing workload.  Batch
mutations through one :meth:`mutate` call to amortise the copy.
"""

from __future__ import annotations

import copy
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Optional


@dataclass(frozen=True)
class Snapshot:
    """One published version: never mutated after publication."""

    version: int
    facade: Any


class SnapshotStore:
    """Single-writer / many-reader versioned store of BANKS facades."""

    def __init__(self, facade: Any):
        self._current = Snapshot(0, facade)
        self._write_lock = threading.Lock()

    def current(self) -> Snapshot:
        """Pin the newest snapshot (wait-free)."""
        return self._current

    @property
    def version(self) -> int:
        return self._current.version

    def mutate(self, fn: Callable[[Any], Any]) -> Any:
        """Apply ``fn`` to a private copy of the newest facade, then
        publish the copy as the next version.  Returns ``fn``'s result.

        ``fn`` typically calls :class:`IncrementalBANKS` mutation
        methods (``insert`` / ``delete`` / ``update``); it may apply any
        number of them — the whole batch becomes visible atomically.
        If ``fn`` raises, nothing is published (the failed copy is
        discarded) and the exception propagates.
        """
        with self._write_lock:
            clone = copy.deepcopy(self._current.facade)
            result = fn(clone)
            self._seal(clone)
            self._current = Snapshot(self._current.version + 1, clone)
            return result

    @staticmethod
    def _seal(facade: Any) -> None:
        """Make the clone read-only in practice before publication.

        ``IncrementalBANKS`` recomputes scoring normalisers lazily on
        the first search after a mutation — a hidden write that would
        race between concurrent readers.  Forcing the refresh here means
        a published snapshot's searches touch no shared mutable state.
        Result caches deep-copy as empty (see
        :meth:`repro.core.cache.ResultCache.__deepcopy__`), so no stale
        answers survive the copy either.
        """
        refresh = getattr(facade, "_refresh_stats", None)
        if callable(refresh):
            refresh()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SnapshotStore(version={self.version})"
