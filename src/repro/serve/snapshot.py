"""Snapshot isolation between searches and graph mutations.

:mod:`repro.core.incremental` mutates the data graph *in place* — safe
for one thread, catastrophic for a worker pool: Dijkstra iterators
observe half-applied deltas, scoring normalisers change mid-ranking.
The serving layer therefore never lets readers and the writer share a
facade.  :class:`SnapshotStore` implements multi-version concurrency
control with a single writer:

* readers call :meth:`current` and pin an immutable-by-contract
  snapshot for the whole search — publication is one reference
  assignment, so pinning is wait-free and never blocks the writer;
* the writer calls :meth:`mutate` with a function receiving a private
  writable version of the newest facade; when the function returns,
  that version is published as the next snapshot.

How the private version is produced is the ``copy_mode``:

* ``"delta"`` — the facade is *forked* copy-on-write
  (:meth:`~repro.core.incremental.IncrementalBANKS.fork`): all graph
  adjacency, postings lists and table heaps are shared structurally
  and only what the batch touches is copied — writes are O(delta).
  Every mutation's :class:`~repro.store.delta.Delta` is captured and
  published to the store's :class:`~repro.store.log.DeltaLog` as one
  **epoch** per publish, for consumers that follow history (shard
  routers, replicas).  See :mod:`repro.store` for the epoch /
  reclamation model.
* ``"deep"`` — the original ``copy.deepcopy`` path, O(data) per
  batch; kept as the fallback for facades that cannot fork and as the
  reference implementation the hypothesis equivalence test
  (``tests/core/test_incremental.py``) checks the delta path against.
* ``"auto"`` (default) — ``"delta"`` when the facade supports forking
  and delta capture, else ``"deep"``.

A reader admitted before a publish keeps its old version until it
finishes; structural sharing makes old versions cheap to keep alive.
Writers are serialised by a lock, so versions advance linearly.
"""

from __future__ import annotations

import copy
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence

from repro.errors import BatchMutationError, ServeError
from repro.store.log import DeltaLog
from repro.store.wal import open_wal

_COPY_MODES = ("auto", "deep", "delta")

#: Methods a facade must offer for the delta-log write path.
_DELTA_PROTOCOL = ("fork", "begin_delta_capture", "end_delta_capture")


def supports_delta(facade: Any) -> bool:
    """Whether ``facade`` can serve the delta-log write path."""
    return all(callable(getattr(facade, name, None)) for name in _DELTA_PROTOCOL)


@dataclass(frozen=True)
class Snapshot:
    """One published version: never mutated after publication."""

    version: int
    facade: Any


class SnapshotStore:
    """Single-writer / many-reader versioned store of BANKS facades.

    The snapshot capture (fork or deep copy) dominates write cost, so
    the store meters it: :attr:`copies` counts captures taken and
    :attr:`copy_seconds` accumulates the time spent inside them — the
    engine surfaces both through its metrics registry (plus a
    histogram via :attr:`copy_observer`), making the write price
    visible before anyone tunes batch sizes against it.

    Args:
        facade: the version-0 facade (never mutated by the store).
        copy_mode: ``"auto"``, ``"deep"`` or ``"delta"`` (see module
            docstring).
        retain: delta-log retention window (delta mode only).
        wal: durable epoch log (delta mode only) — a
            :class:`~repro.store.wal.WalWriter` or a directory path;
            every published epoch is appended before it becomes
            visible, making the store the durable write path behind
            ``banks serve --live --wal`` (recovery and replicas read
            it back; see :mod:`repro.store.wal`).
        checkpoints: optional
            :class:`~repro.ops.checkpoint.CheckpointManager`; after
            each publish the store offers the new facade to
            ``maybe_checkpoint`` (under the write lock, so the epoch
            and the facade state are always consistent), re-basing the
            WAL on the manager's cadence.  Checkpoint failures never
            fail the publish — it is already durable in the WAL.
    """

    def __init__(
        self,
        facade: Any,
        copy_mode: str = "auto",
        retain: int = 256,
        wal: Any = None,
        checkpoints: Any = None,
    ):
        if copy_mode not in _COPY_MODES:
            raise ServeError(
                f"unknown copy mode {copy_mode!r} "
                f"(choose from {', '.join(_COPY_MODES)})"
            )
        if copy_mode == "delta" and not supports_delta(facade):
            raise ServeError(
                "copy_mode='delta' needs a facade with fork() and delta "
                "capture (IncrementalBANKS); got "
                f"{type(facade).__name__}"
            )
        if copy_mode == "auto":
            copy_mode = "delta" if supports_delta(facade) else "deep"
        if wal is not None and copy_mode != "delta":
            raise ServeError(
                "a WAL needs the delta-log write path: copy_mode='deep' "
                "captures no deltas to serialise"
            )
        if checkpoints is not None and wal is None:
            raise ServeError(
                "checkpoints re-base a WAL: attach one (wal=...) or "
                "drop the checkpoint manager"
            )
        self.checkpoints = checkpoints
        self.copy_mode = copy_mode
        self.log: Optional[DeltaLog] = (
            DeltaLog(retain=retain, wal=open_wal(wal))
            if copy_mode == "delta"
            else None
        )
        self._current = Snapshot(0, facade)
        self._write_lock = threading.Lock()
        self.copies = 0
        self.copy_seconds = 0.0
        #: Optional per-capture cost observer (the engine points this
        #: at a metrics histogram).
        self.copy_observer: Optional[Callable[[float], None]] = None

    def current(self) -> Snapshot:
        """Pin the newest snapshot (wait-free)."""
        return self._current

    @property
    def version(self) -> int:
        return self._current.version

    @property
    def epoch(self) -> int:
        """The delta-log epoch (advances with :attr:`version` in delta
        mode, offset by any epochs a resumed WAL already held; falls
        back to the version when no log exists)."""
        return self.log.epoch if self.log is not None else self.version

    @property
    def deltas_published(self) -> int:
        return self.log.deltas_total if self.log is not None else 0

    @property
    def epochs_reclaimed(self) -> int:
        return self.log.reclaimed_total if self.log is not None else 0

    @property
    def wal(self):
        """The attached :class:`~repro.store.wal.WalWriter` (or None)."""
        return self.log.wal if self.log is not None else None

    @property
    def wal_epochs_written(self) -> int:
        wal = self.wal
        return wal.epochs_written if wal is not None else 0

    @property
    def wal_bytes(self) -> int:
        wal = self.wal
        return wal.bytes_written if wal is not None else 0

    # -- capture ----------------------------------------------------------------

    def _writable_clone(self) -> Any:
        """A private writable version of the newest facade, metered."""
        started = time.perf_counter()
        if self.copy_mode == "delta":
            clone = self._current.facade.fork()
        else:
            clone = copy.deepcopy(self._current.facade)
        elapsed = time.perf_counter() - started
        self.copy_seconds += elapsed
        self.copies += 1
        if self.copy_observer is not None:
            self.copy_observer(elapsed)
        return clone

    # -- the write path ----------------------------------------------------------

    def mutate(self, fn: Callable[[Any], Any]) -> Any:
        """Apply ``fn`` to a private version of the newest facade, then
        publish it as the next version.  Returns ``fn``'s result.

        ``fn`` typically calls :class:`IncrementalBANKS` mutation
        methods (``insert`` / ``delete`` / ``update``); it may apply any
        number of them — the whole batch becomes visible atomically.
        If ``fn`` raises, nothing is published (the private version is
        discarded) and the exception propagates.
        """
        with self._write_lock:
            clone = self._capture_begin()
            try:
                result = fn(clone)
            except BaseException:
                self._capture_abort(clone)
                raise
            self._publish(clone)
            return result

    def mutate_batch(self, operations: Sequence[Callable[[Any], Any]]) -> List[Any]:
        """Apply a batch of mutation operations under *one* capture.

        The batch form exists because the capture is the dominant
        cost: N operations through :meth:`mutate` pay N captures, a
        batch pays one — and an **empty batch pays none**: no capture,
        no published version, readers completely undisturbed.
        Returns the operations' results, in order.

        One batch is **one epoch**.  Everything downstream counts in
        epochs, so a bulk loader chunking records through this method
        (:mod:`repro.ingest` commits one chunk per call) should size
        its knobs accordingly: a
        :class:`~repro.ops.checkpoint.CheckpointManager` with
        ``every=E`` checkpoints every E *batches* (E x chunk_size
        records), not every E records, and a WAL ``retain=N`` window
        holds the last N *batch* epochs.  A long ingest cannot starve
        checkpointing or prune its own recovery tail: the checkpoint
        offer runs under the write lock after every publish, and the
        WAL's retention horizon is clamped to the checkpoint floor
        (:func:`~repro.store.wal.checkpoint_floor`), so epochs newer
        than the newest checkpoint are never dropped — proven by
        ``tests/ingest/test_checkpoint_cadence.py``.

        Raises:
            BatchMutationError: operation *k* raised.  The batch is
                rolled back explicitly — the private version (holding
                the effects of operations ``0..k-1``) is discarded,
                nothing is published, and the error carries the
                failing index plus the original exception as its
                cause.
        """
        operations = list(operations)
        if not operations:
            return []
        with self._write_lock:
            clone = self._capture_begin()
            results: List[Any] = []
            for position, operation in enumerate(operations):
                try:
                    results.append(operation(clone))
                except BaseException as error:
                    self._capture_abort(clone)
                    raise BatchMutationError(position, error) from error
            self._publish(clone)
            return results

    def republish(self, facade: Optional[Any] = None) -> Snapshot:
        """Publish a new version *without* capturing a copy.

        The shard layer uses this to advance a shard engine's version
        after routing a delta into the worker's own state: the facade
        object is unchanged (or externally replaced), but readers —
        and the single-flight dedup keyed on the version — must see a
        new epoch.
        """
        with self._write_lock:
            current = self._current
            # Log (and WAL-append) first: the version must never be
            # visible before its epoch is durable.
            if self.log is not None:
                self.log.publish(())
            self._current = Snapshot(
                current.version + 1,
                current.facade if facade is None else facade,
            )
            self._offer_checkpoint()
            return self._current

    # -- internals ---------------------------------------------------------------

    def _capture_begin(self) -> Any:
        clone = self._writable_clone()
        if self.copy_mode == "delta":
            clone.begin_delta_capture()
        return clone

    def _capture_abort(self, clone: Any) -> None:
        """Explicit rollback: stop any capture and drop the private
        version (its copy-on-write state simply falls away — shared
        structure was never mutated)."""
        if self.copy_mode == "delta":
            clone.end_delta_capture()

    def _publish(self, clone: Any) -> None:
        deltas = (
            clone.end_delta_capture() if self.copy_mode == "delta" else None
        )
        self._seal(clone)
        # Write-ahead: the epoch reaches the log (and, with a WAL, the
        # disk) *before* the snapshot swap makes it visible.  A reader
        # can never observe an epoch a crash would lose, and a failed
        # WAL append aborts the publish — the mutate raises and the
        # clone is discarded, keeping live state and log in lockstep.
        if self.log is not None:
            self.log.publish(deltas or ())
        self._current = Snapshot(self._current.version + 1, clone)
        self._offer_checkpoint()

    def _offer_checkpoint(self) -> None:
        """Give the checkpoint manager its shot at the just-published
        version (still under the write lock: the facade it pickles is
        exactly the state at :attr:`epoch`, and no later publish can
        interleave)."""
        if self.checkpoints is not None:
            self.checkpoints.maybe_checkpoint(
                self._current.facade, epoch=self.epoch
            )

    @staticmethod
    def _seal(facade: Any) -> None:
        """Make the new version read-only in practice before publication.

        ``IncrementalBANKS`` recomputes scoring normalisers lazily on
        the first search after a mutation — a hidden write that would
        race between concurrent readers.  Forcing the refresh here means
        a published snapshot's searches touch no shared mutable state.
        Result caches deep-copy as empty (see
        :meth:`repro.core.cache.ResultCache.__deepcopy__`), so no stale
        answers survive the copy either.
        """
        refresh = getattr(facade, "_refresh_stats", None)
        if callable(refresh):
            refresh()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SnapshotStore(version={self.version}, mode={self.copy_mode})"
        )
