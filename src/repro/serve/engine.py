"""The :class:`QueryEngine`: concurrent query serving over one facade.

The paper deploys BANKS as a web front end; a front end means many
simultaneous clients hitting one in-memory graph.  The engine is the
missing layer between HTTP handlers and the
:class:`~repro.core.banks.BANKS` facade, composing four mechanisms:

1. **worker pool** — searches run on a fixed set of threads
   (:mod:`repro.serve.pool`), so one slow query cannot monopolise the
   process and callers get futures with timeouts;
2. **admission control** — the pool's task queue is bounded; when it is
   full the engine either sheds (``shed_policy="reject"``, default —
   fail fast so the client can retry elsewhere) or applies
   back-pressure (``"block"``).  Each request may carry a deadline;
   a request whose deadline lapses while queued is failed without
   wasting a worker on it;
3. **single-flight deduplication** — identical queries already in
   flight share one computation (:mod:`repro.serve.singleflight`);
   the key includes the snapshot version, so deduplicated requests are
   exactly as consistent as independent ones;
4. **snapshot isolation** — searches pin an immutable snapshot while
   :meth:`QueryEngine.mutate` applies
   :class:`~repro.core.incremental.IncrementalBANKS` deltas to a
   private copy and publishes atomically (:mod:`repro.serve.snapshot`).

Every request updates the engine's :class:`~repro.serve.metrics.MetricsRegistry`
(QPS, p50/p95 latency, queue depth, shed count, cache hit rate), which
the browse app exposes at ``/metrics``.

Typical use::

    from repro.core.cache import CachedBanks
    from repro.serve import EngineConfig, QueryEngine

    with QueryEngine(CachedBanks(database), EngineConfig(workers=8)) as engine:
        answers = engine.search("soumen sunita", timeout=2.0)
"""

from __future__ import annotations

import os
import time
from concurrent.futures import CancelledError, Future
from dataclasses import dataclass
from typing import Any, Callable, List, Optional

from repro.core.cache import _query_key, _scoring_key
from repro.deprecation import warn_direct_construction
from repro.errors import (
    DeadlineExceededError,
    EngineOverloadedError,
    EngineStoppedError,
    PoolSaturatedError,
    ServeError,
)
from repro.obs import Observability, SearchProfile, parse_sample
from repro.serve.metrics import MetricsRegistry
from repro.serve.pool import WorkerPool
from repro.serve.singleflight import SingleFlight
from repro.serve.snapshot import Snapshot, SnapshotStore

#: Admission policies when the queue is at its bound.
_SHED_POLICIES = ("reject", "block")


def _mirror(source: "Future") -> "Future":
    """A caller-private view of a shared flight future.

    Resolves exactly as ``source`` does, but ``cancel()`` on the mirror
    abandons only this caller — the shared computation (and every other
    caller's mirror) is unaffected.
    """
    mirror: Future = Future()

    def propagate(completed: Future) -> None:
        if not mirror.set_running_or_notify_cancel():
            return  # this caller cancelled its mirror; nobody else cares
        if completed.cancelled():
            mirror.set_exception(CancelledError())
            return
        error = completed.exception()
        if error is not None:
            mirror.set_exception(error)
        else:
            mirror.set_result(completed.result())

    source.add_done_callback(propagate)
    return mirror


@dataclass(frozen=True)
class EngineConfig:
    """Tuning knobs for one :class:`QueryEngine`.

    Attributes:
        workers: worker threads executing searches.
        queue_bound: max queued (admitted, not yet running) requests;
            0 disables admission control (unbounded queue).
        default_deadline: seconds a request may spend queued before it
            is failed with :class:`~repro.errors.DeadlineExceededError`
            (``None`` = no deadline unless the request sets one).
        shed_policy: ``"reject"`` fails over-bound submissions with
            :class:`~repro.errors.EngineOverloadedError`; ``"block"``
            makes ``submit`` wait for a queue slot (back-pressure).
        dedup: share one computation among identical in-flight queries.
        metrics_window: sliding window (seconds) for QPS / quantiles.
        copy_mode: how :meth:`QueryEngine.mutate` captures a writable
            snapshot — ``"auto"`` (delta-log when the facade supports
            it), ``"delta"`` or ``"deep"`` (see
            :class:`~repro.serve.snapshot.SnapshotStore`).
        wal_path: directory for the durable epoch log; every published
            mutation epoch is appended there before readers see it
            (crash recovery + cross-process replicas, see
            :mod:`repro.store.wal`).  Delta mode only.
        wal_fsync: the WAL's durability policy (``"always"`` |
            ``"rotate"`` | ``"never"``).
        checkpoint_every: write a checkpoint every N published epochs
            (0 disables checkpointing), re-basing the WAL so recovery
            replays only the tail (see
            :class:`~repro.ops.checkpoint.CheckpointManager`).
            Requires ``wal_path``.
        checkpoint_path: where checkpoints live; defaults to a
            ``checkpoints/`` directory inside ``wal_path``.  Also the
            WAL's retention prune floor.
        trace_sample: trace sampling mode — ``"off"`` (default: no
            tracing unless the caller hands a trace in), ``"always"``,
            ``"slow"`` (trace everything, store only slow queries) or
            a rate in (0, 1] (see :func:`repro.obs.parse_sample`).
        slow_query_ms: queries at or above this duration are always
            kept in the trace store and logged at WARNING (``None``
            disables the slow-query path).
        trace_buffer: ring-buffer capacity of the trace store.
    """

    workers: int = 4
    queue_bound: int = 64
    default_deadline: Optional[float] = None
    shed_policy: str = "reject"
    dedup: bool = True
    metrics_window: float = 60.0
    copy_mode: str = "auto"
    wal_path: Optional[str] = None
    wal_fsync: str = "always"
    checkpoint_every: int = 0
    checkpoint_path: Optional[str] = None
    trace_sample: Any = "off"
    slow_query_ms: Optional[float] = None
    trace_buffer: int = 256

    def __post_init__(self):
        if self.shed_policy not in _SHED_POLICIES:
            raise ServeError(
                f"unknown shed policy {self.shed_policy!r} "
                f"(choose from {', '.join(_SHED_POLICIES)})"
            )
        if self.copy_mode not in ("auto", "deep", "delta"):
            raise ServeError(
                f"unknown copy mode {self.copy_mode!r} "
                "(choose from auto, deep, delta)"
            )
        if self.wal_fsync not in ("always", "rotate", "never"):
            raise ServeError(
                f"unknown wal fsync policy {self.wal_fsync!r} "
                "(choose from always, rotate, never)"
            )
        if self.default_deadline is not None and self.default_deadline <= 0:
            raise ServeError("default_deadline must be positive")
        if self.checkpoint_every < 0:
            raise ServeError("checkpoint_every must be >= 0")
        if (
            self.checkpoint_every or self.checkpoint_path is not None
        ) and self.wal_path is None:
            raise ServeError(
                "checkpoints re-base a WAL: checkpoint_every / "
                "checkpoint_path need wal_path"
            )
        try:
            parse_sample(self.trace_sample)
        except Exception as error:
            raise ServeError(str(error)) from None
        if self.slow_query_ms is not None and self.slow_query_ms <= 0:
            raise ServeError("slow_query_ms must be positive")
        if self.trace_buffer < 1:
            raise ServeError("trace_buffer must be >= 1")


@dataclass
class QueryOutcome:
    """What a completed request resolves to.

    Attributes:
        answers: the ranked answer list, exactly as the facade returns.
        snapshot_version: the data version the search ran against.
        latency: admission-to-completion seconds (queue wait included).
        profile: the :class:`repro.obs.SearchProfile` the kernel filled
            (``None`` for untraced, unprofiled requests; a dedup
            follower resolves to the leader's outcome and thus the
            leader's profile).
    """

    answers: List[Any]
    snapshot_version: int
    latency: float
    profile: Optional[SearchProfile] = None


class QueryEngine:
    """Concurrent serving wrapper around a BANKS-style facade.

    Args:
        facade: anything with a ``search(query, **kwargs)`` method —
            :class:`~repro.core.banks.BANKS`,
            :class:`~repro.core.cache.CachedBanks` (recommended: its
            result cache composes with single-flight), or
            :class:`~repro.core.incremental.IncrementalBANKS` when
            :meth:`mutate` will be used.
        config: tuning knobs (see :class:`EngineConfig`).
        metrics: an external registry to record into (a fresh one is
            created otherwise; read it via :attr:`metrics`).  One
            registry per engine — sharing one across engines raises,
            since the computed gauges (queue depth, version) can only
            report a single source.
        obs: an external :class:`repro.obs.Observability` bundle to
            record traces into (the cluster shares one across its
            layers); a private one is built from the config's
            ``trace_sample`` / ``slow_query_ms`` / ``trace_buffer``
            knobs otherwise.
    """

    def __init__(
        self,
        facade: Any,
        config: Optional[EngineConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
        obs: Optional[Observability] = None,
    ):
        warn_direct_construction(
            "QueryEngine",
            "topology='single', workers=..., live=..., wal_path=...",
        )
        self.config = config or EngineConfig()
        self.obs = obs or Observability(
            sample=self.config.trace_sample,
            slow_query_ms=self.config.slow_query_ms,
            buffer=self.config.trace_buffer,
        )
        wal = None
        checkpoints = None
        if self.config.wal_path is not None:
            from repro.store.wal import WalWriter

            checkpoint_dir = None
            if self.config.checkpoint_every or self.config.checkpoint_path:
                from repro.ops.checkpoint import CheckpointManager

                checkpoint_dir = self.config.checkpoint_path or os.path.join(
                    self.config.wal_path, "checkpoints"
                )
                checkpoints = CheckpointManager(
                    checkpoint_dir, every=self.config.checkpoint_every
                )
            # The WAL learns the checkpoint directory too: its
            # retention pruning clamps to the manifest epoch there.
            wal = WalWriter(
                self.config.wal_path,
                fsync=self.config.wal_fsync,
                checkpoint_path=checkpoint_dir,
            )
        self.snapshots = SnapshotStore(
            facade,
            copy_mode=self.config.copy_mode,
            wal=wal,
            checkpoints=checkpoints,
        )
        self.pool = WorkerPool(
            workers=self.config.workers,
            queue_bound=self.config.queue_bound,
        )
        self.metrics = metrics or MetricsRegistry()
        self._flights = SingleFlight()

        window = self.config.metrics_window
        m = self.metrics
        self._requests = m.counter("requests_total", "requests admitted or shed")
        self._completed = m.counter("completed_total", "searches finished")
        self._shed = m.counter("shed_total", "requests shed by admission control")
        self._deduped = m.counter(
            "dedup_shared_total", "requests served by an in-flight duplicate"
        )
        self._expired = m.counter(
            "deadline_expired_total", "requests whose deadline lapsed queued"
        )
        self._errors = m.counter("errors_total", "searches raising an error")
        self._mutations = m.counter("mutations_total", "published snapshots")
        m.gauge("queue_depth", "requests admitted, not yet running",
                fn=lambda: self.pool.depth)
        m.gauge("snapshot_version", "current data version",
                fn=lambda: self.snapshots.version)
        m.gauge("cache_hit_rate", "facade result-cache hit rate",
                fn=self._cache_hit_rate)
        m.gauge("snapshot_copies_total", "facade snapshot captures taken",
                fn=lambda: self.snapshots.copies)
        m.gauge("snapshot_copy_seconds_total",
                "seconds spent capturing facade snapshots",
                fn=lambda: self.snapshots.copy_seconds)
        m.gauge("snapshot_epoch", "delta-log epoch of the current version",
                fn=lambda: self.snapshots.epoch)
        m.gauge("snapshot_deltas_total", "deltas published through the log",
                fn=lambda: self.snapshots.deltas_published)
        m.gauge("snapshot_epochs_reclaimed_total",
                "delta-log epochs reclaimed",
                fn=lambda: self.snapshots.epochs_reclaimed)
        m.gauge("wal_epochs_written",
                "epochs appended to the durable log (0 = no WAL)",
                fn=lambda: self.snapshots.wal_epochs_written)
        m.gauge("wal_bytes",
                "bytes the durable log holds on disk (0 = no WAL)",
                fn=lambda: self.snapshots.wal_bytes)
        m.gauge("checkpoints_written",
                "checkpoints durably written (0 = checkpointing off)",
                fn=lambda: (
                    self.snapshots.checkpoints.checkpoints_written
                    if self.snapshots.checkpoints is not None
                    else 0
                ))
        self._latency = m.latency(
            "latency_seconds", "admission-to-completion latency",
            window_seconds=window,
        )
        self._latency_hist = m.histogram(
            "request_latency_seconds",
            "admission-to-completion latency distribution",
        )
        self._copy_hist = m.histogram(
            "snapshot_copy_cost_seconds",
            "per-capture snapshot copy/fork cost distribution",
        )
        self.snapshots.copy_observer = self._copy_hist.observe

    # -- read path ------------------------------------------------------------

    def submit(
        self,
        query: Any,
        *,
        deadline: Optional[float] = None,
        trace=None,
        trace_parent=None,
        profile: Optional[SearchProfile] = None,
        **search_kwargs,
    ) -> "Future[QueryOutcome]":
        """Admit one search; resolve to a :class:`QueryOutcome`.

        When a ``trace`` is handed in (the cluster/router originated
        it), the engine records its ``engine.request`` span — with
        ``engine.queue``, ``engine.snapshot_pin`` and
        ``engine.execute`` children — under ``trace_parent``.  With no
        incoming trace and tracing enabled on this engine's
        :class:`~repro.obs.Observability`, the engine originates (and
        on completion stores) the trace itself.

        Raises:
            EngineOverloadedError: queue at its bound (policy "reject").
            EngineStoppedError: after :meth:`stop`.
        """
        if self.pool.stopped:
            raise EngineStoppedError("engine is stopped")
        self._requests.inc()
        originated = False
        if trace is None and profile is None and self.obs.enabled:
            trace = self.obs.begin()
            originated = True
        request_span = None
        if trace is not None:
            request_span = trace.begin(
                "engine.request", parent_id=trace_parent
            )
            if profile is None:
                profile = SearchProfile()
        pin_started = time.time()
        snapshot = self.snapshots.current()
        if request_span is not None:
            trace.record(
                "engine.snapshot_pin",
                request_span.span_id,
                pin_started,
                time.time(),
                version=snapshot.version,
            )
        admitted = time.monotonic()
        admitted_wall = time.time()
        if deadline is None:
            deadline = self.config.default_deadline

        key = self._flight_key(snapshot, query, deadline, search_kwargs)
        future, leader = self._flights.join(key)
        if not leader:
            self._deduped.inc()
            mirrored = _mirror(future)
            if trace is not None:
                def finalize_joined(_done: Future) -> None:
                    trace.record(
                        "engine.execute",
                        request_span.span_id,
                        admitted_wall,
                        time.time(),
                        dedup="joined",
                    )
                    trace.end(request_span)
                    if originated:
                        self.obs.finish(
                            trace,
                            query=query,
                            topology="engine",
                            duration_ms=(time.monotonic() - admitted)
                            * 1000.0,
                            profile=profile,
                            dedup="joined",
                        )
                mirrored.add_done_callback(finalize_joined)
            return mirrored

        task = self._make_task(snapshot, admitted, deadline, key, query,
                               search_kwargs, trace=trace,
                               request_span=request_span, profile=profile,
                               originated=originated,
                               admitted_wall=admitted_wall)
        try:
            if self.config.shed_policy == "block":
                self.pool.submit(task, future=future)
            else:
                self.pool.try_submit(task, future=future)
        except PoolSaturatedError:
            self._flights.forget(key)
            self._shed.inc()
            error = EngineOverloadedError(
                f"request queue full ({self.config.queue_bound} pending); "
                "request shed"
            )
            self._abort_trace(trace, request_span, originated, admitted,
                              query, profile, "shed")
            # Followers of this flight hold the same future: fail it, or
            # they would wait forever on a request that was never queued.
            future.set_exception(error)
            raise error from None
        except EngineStoppedError as stopped:
            self._flights.forget(key)
            self._abort_trace(trace, request_span, originated, admitted,
                              query, profile, "stopped")
            future.set_exception(stopped)
            raise
        # Deduplicatable flights hand every caller (leader included) a
        # mirror: cancelling one caller's handle must abandon only that
        # caller, not the computation other callers share.  Non-dedup
        # requests keep the raw future — nobody shares it, so genuine
        # cancellation of queued work stays possible.
        return _mirror(future) if key is not None else future

    def search(
        self,
        query: Any,
        *,
        timeout: Optional[float] = None,
        deadline: Optional[float] = None,
        **search_kwargs,
    ) -> List[Any]:
        """Blocking search through the engine; returns the answer list.

        ``timeout`` bounds the caller's wait; ``deadline`` bounds how
        long the request may sit in the queue before a worker starts it.
        """
        future = self.submit(query, deadline=deadline, **search_kwargs)
        return future.result(timeout=timeout).answers

    # -- write path -----------------------------------------------------------

    def mutate(self, fn: Callable[[Any], Any]) -> Any:
        """Apply a mutation batch and publish a new snapshot.

        ``fn`` receives a private copy of the current facade (use
        :class:`~repro.core.incremental.IncrementalBANKS` methods on
        it); in-flight and later searches each see exactly one
        consistent version.  Returns ``fn``'s result.
        """
        result = self.snapshots.mutate(fn)
        self._mutations.inc()
        return result

    def mutate_batch(self, operations) -> Any:
        """Apply a sequence of mutation operations under one snapshot
        copy (:meth:`SnapshotStore.mutate_batch`); an empty sequence is
        free — no copy, no new version, no metrics noise."""
        operations = list(operations)
        results = self.snapshots.mutate_batch(operations)
        if operations:
            self._mutations.inc()
        return results

    # -- introspection --------------------------------------------------------

    @property
    def facade(self) -> Any:
        """The facade of the *current* snapshot (read-only by contract)."""
        return self.snapshots.current().facade

    def _cache_hit_rate(self) -> float:
        cache = getattr(self.facade, "cache", None)
        stats = getattr(cache, "stats", None)
        return getattr(stats, "hit_rate", 0.0)

    # -- lifecycle ------------------------------------------------------------

    def stop(self, wait: bool = True) -> None:
        """Drain queued work and stop the workers; further submissions
        raise :class:`~repro.errors.EngineStoppedError`."""
        self.pool.stop(wait=wait)

    def __enter__(self) -> "QueryEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- internals ------------------------------------------------------------

    def _flight_key(self, snapshot: Snapshot, query, deadline, search_kwargs):
        """The single-flight identity of a request, or ``None`` when the
        request must not be deduplicated.

        Mirrors :class:`~repro.core.cache.CachedBanks` conservatism:
        only the knobs whose ranking effect we can key on participate;
        anything else opts out.  The snapshot version is part of the
        key, so requests spanning a mutation never share results; the
        deadline is part of the key, so a lenient request never
        inherits a strict leader's expiry (and vice versa) — in
        practice requests share the config default, so dedup still
        collapses them.  Followers do share the *leader's admission
        clock*: a follower that joins late may see the flight expire
        before its own wait reached the deadline.  That is deliberate —
        expiry only fires when queue wait exceeds the deadline, i.e.
        under overload, where failing the whole flight early is
        conservative shedding, not lost work.
        """
        if not self.config.dedup:
            return None
        recognised = {"max_results", "scoring", "bidirectional"}
        if set(search_kwargs) - recognised:
            return None
        try:
            query_key = _query_key(query)
        except Exception:
            return None  # unparseable here; let the search path report it
        return (
            snapshot.version,
            query_key,
            deadline,
            search_kwargs.get("max_results"),
            _scoring_key(search_kwargs.get("scoring")),
            search_kwargs.get("bidirectional", False),
        )

    def _abort_trace(self, trace, request_span, originated, admitted, query,
                     profile, reason: str) -> None:
        """Seal a trace whose request never reached a worker."""
        if trace is None:
            return
        request_span.attrs["error"] = reason
        trace.end(request_span)
        if originated:
            self.obs.finish(
                trace,
                query=query,
                topology="engine",
                duration_ms=(time.monotonic() - admitted) * 1000.0,
                profile=profile,
                error=reason,
            )

    def _make_task(self, snapshot, admitted, deadline, key, query,
                   search_kwargs, trace=None, request_span=None,
                   profile=None, originated=False, admitted_wall=0.0):
        def task():
            try:
                if trace is not None:
                    # Queue wait: admission to this worker picking it up.
                    trace.record(
                        "engine.queue",
                        request_span.span_id,
                        admitted_wall,
                        time.time(),
                    )
                if (
                    deadline is not None
                    and time.monotonic() - admitted > deadline
                ):
                    self._expired.inc()
                    if trace is not None:
                        request_span.attrs["error"] = "deadline"
                    raise DeadlineExceededError(
                        f"deadline of {deadline:.3f}s lapsed before a "
                        "worker picked the request up"
                    )
                kwargs = search_kwargs
                execute_span = None
                if trace is not None:
                    execute_span = trace.begin(
                        "engine.execute", parent_id=request_span.span_id
                    )
                    kwargs = dict(search_kwargs)
                    kwargs["trace"] = trace
                    kwargs["trace_parent"] = execute_span.span_id
                if profile is not None:
                    if kwargs is search_kwargs:
                        kwargs = dict(search_kwargs)
                    kwargs["profile"] = profile
                try:
                    answers = snapshot.facade.search(query, **kwargs)
                except Exception as error:
                    self._errors.inc()
                    if execute_span is not None:
                        execute_span.attrs["error"] = type(error).__name__
                        trace.end(execute_span)
                        request_span.attrs["error"] = type(error).__name__
                    raise
                if execute_span is not None:
                    execute_span.attrs["answers"] = len(answers)
                    trace.end(execute_span)
                latency = time.monotonic() - admitted
                self._latency.observe(latency)
                self._latency_hist.observe(latency)
                self._completed.inc()
                return QueryOutcome(
                    answers, snapshot.version, latency, profile=profile
                )
            finally:
                if trace is not None:
                    trace.end(request_span)
                    if originated:
                        self.obs.finish(
                            trace,
                            query=query,
                            topology="engine",
                            duration_ms=(time.monotonic() - admitted)
                            * 1000.0,
                            profile=profile,
                        )
                # Before the future resolves: a duplicate arriving after
                # this point must start a fresh flight, not latch onto a
                # finished one.
                self._flights.forget(key)

        return task

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"QueryEngine(v{self.snapshots.version}, {self.pool!r}, "
            f"{self._completed.value} completed)"
        )
