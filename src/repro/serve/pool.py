"""A bounded worker pool: the engine's unit of concurrency.

``concurrent.futures.ThreadPoolExecutor`` queues work unboundedly —
useless for admission control, where "the queue is full" must be an
observable, immediate signal.  :class:`WorkerPool` instead couples a
fixed set of worker threads to a *bounded* ``queue.Queue``:

* :meth:`WorkerPool.try_submit` never blocks — a full queue raises
  :class:`~repro.errors.PoolSaturatedError`, which the engine's
  admission controller turns into load shedding;
* :meth:`WorkerPool.submit` blocks until a slot frees (back-pressure);
* :meth:`WorkerPool.map` fans a function over items and gathers results
  in order — used by the federation layer to resolve sub-queries of
  every member database concurrently.

Results travel through :class:`concurrent.futures.Future`, so callers
get timeouts, exceptions and completion callbacks for free.
"""

from __future__ import annotations

import itertools
import queue
import threading
from concurrent.futures import Future
from typing import Any, Callable, Iterable, List, Optional

from repro.errors import EngineStoppedError, PoolSaturatedError, ServeError

#: Sentinel telling a worker thread to exit its loop.
_POISON = object()


class WorkerPool:
    """Fixed worker threads draining one bounded task queue.

    Args:
        workers: number of worker threads (>= 1).
        queue_bound: maximum queued (not yet running) tasks; 0 means
            unbounded (no admission control at this layer).
        name: thread name prefix (visible in debuggers / faulthandler).
    """

    _counter = itertools.count(1)

    def __init__(self, workers: int = 4, queue_bound: int = 64, name: str = "serve"):
        if workers < 1:
            raise ServeError("worker pool needs at least 1 worker")
        if queue_bound < 0:
            raise ServeError("queue bound must be >= 0 (0 = unbounded)")
        self.workers = workers
        self.queue_bound = queue_bound
        self._queue: "queue.Queue" = queue.Queue(maxsize=queue_bound)
        self._stopped = threading.Event()
        pool_id = next(self._counter)
        self._threads = [
            threading.Thread(
                target=self._worker_loop,
                name=f"{name}-{pool_id}-worker-{index}",
                daemon=True,
            )
            for index in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # -- submission -----------------------------------------------------------

    def _make_task(self, fn, args, kwargs, future: Optional[Future]):
        if self._stopped.is_set():
            raise EngineStoppedError("worker pool is stopped")
        return (future if future is not None else Future(), fn, args, kwargs)

    def try_submit(
        self,
        fn: Callable,
        *args,
        future: Optional[Future] = None,
        **kwargs,
    ) -> Future:
        """Enqueue without blocking; raise
        :class:`~repro.errors.PoolSaturatedError` when the queue is at
        its bound.  ``future``, when given, is resolved in place of a
        fresh one (the engine shares one future among deduplicated
        requests).
        """
        task = self._make_task(fn, args, kwargs, future)
        try:
            self._queue.put_nowait(task)
        except queue.Full:
            raise PoolSaturatedError(
                f"task queue full ({self.queue_bound} pending)"
            ) from None
        return task[0]

    def submit(
        self,
        fn: Callable,
        *args,
        future: Optional[Future] = None,
        **kwargs,
    ) -> Future:
        """Enqueue, blocking until a queue slot is free (back-pressure)."""
        task = self._make_task(fn, args, kwargs, future)
        self._queue.put(task)
        if self._stopped.is_set():
            # stop() raced us between the check and the put; if the
            # workers are already gone, this task sits behind the
            # poison pills — fail it rather than strand its future.
            self._drain_stranded()
        return task[0]

    def map(self, fn: Callable, items: Iterable[Any]) -> List[Any]:
        """Apply ``fn`` to every item concurrently; results in order.

        Blocks for queue slots (never sheds), so it is safe for
        arbitrarily long item sequences; re-raises the first exception.

        Called from one of this pool's own workers (e.g. a federated
        search fanning out sub-queries while itself running on the
        serving engine's pool), items run inline instead: blocking a
        worker on futures only other workers can run would deadlock
        once every worker does it.
        """
        if threading.current_thread() in self._threads:
            return [fn(item) for item in items]
        futures = [self.submit(fn, item) for item in items]
        return [f.result() for f in futures]

    # -- introspection --------------------------------------------------------

    @property
    def depth(self) -> int:
        """Tasks admitted but not yet picked up by a worker."""
        return self._queue.qsize()

    @property
    def stopped(self) -> bool:
        return self._stopped.is_set()

    # -- lifecycle ------------------------------------------------------------

    def stop(self, wait: bool = True) -> None:
        """Stop accepting work; optionally join the workers.

        Already-queued tasks still run; a poison pill per worker follows
        them through the queue.  With ``wait=True`` (the default), any
        task that raced past the stopped check and landed *behind* the
        pills — which no worker will ever drain — has its future failed
        instead of left pending forever.  ``wait=False`` leaves that
        narrow race open; use it only when the process is exiting.
        """
        if self._stopped.is_set():
            if wait:
                for thread in self._threads:
                    thread.join()
                self._drain_stranded()
            return
        self._stopped.set()
        for _ in self._threads:
            self._queue.put(_POISON)
        if wait:
            for thread in self._threads:
                thread.join()
            self._drain_stranded()

    def _drain_stranded(self) -> None:
        """Fail tasks stuck behind the poison pills (workers all gone)."""
        if any(thread.is_alive() for thread in self._threads):
            return
        while True:
            try:
                task = self._queue.get_nowait()
            except queue.Empty:
                return
            if task is _POISON:
                continue
            future = task[0]
            if future.set_running_or_notify_cancel():
                future.set_exception(
                    EngineStoppedError("worker pool stopped before task ran")
                )

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- worker loop ----------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            task = self._queue.get()
            if task is _POISON:
                return
            future, fn, args, kwargs = task
            if not future.set_running_or_notify_cancel():
                continue  # cancelled while queued
            try:
                result = fn(*args, **kwargs)
            except BaseException as error:  # noqa: BLE001 - forwarded
                future.set_exception(error)
            else:
                future.set_result(result)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "stopped" if self.stopped else "running"
        return (
            f"WorkerPool({self.workers} workers, "
            f"depth={self.depth}/{self.queue_bound or '∞'}, {state})"
        )
