"""BANKS — Browsing ANd Keyword Searching in relational databases.

A full reproduction of *"Keyword Searching and Browsing in Databases
using BANKS"* (Bhalotia et al., ICDE 2002): the data-graph model, the
backward expanding search, proximity+prestige ranking, the browsing
subsystem, and the paper's evaluation harness — on top of a from-scratch
relational engine with sqlite/CSV adapters.

Quickstart::

    from repro import BANKS
    from repro.datasets.bibliography import generate_bibliography

    database = generate_bibliography(papers=200, authors=120, seed=7)
    banks = BANKS(database)
    for answer in banks.search("soumen sunita"):
        print(f"[{answer.relevance:.3f}]")
        print(answer.render())
"""

from repro.core.banks import BANKS, Answer
from repro.core.answer import AnswerTree
from repro.core.scoring import ScoringConfig
from repro.core.search import SearchConfig
from repro.core.weights import WeightPolicy
from repro.relational.database import Database
from repro.relational.schema import Column, ForeignKey, TableSchema

__version__ = "1.0.0"

__all__ = [
    "Answer",
    "AnswerTree",
    "BANKS",
    "Column",
    "Database",
    "ForeignKey",
    "ScoringConfig",
    "SearchConfig",
    "TableSchema",
    "WeightPolicy",
    "__version__",
]
