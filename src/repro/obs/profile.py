"""Kernel profiling counters: what one search actually did.

A :class:`SearchProfile` is a mutable counter block the search kernels
(:func:`repro.core.search.backward_expanding_search`,
:func:`repro.core.bidirectional.bidirectional_search`) fill while they
run.  The contract with the hot loop is strict: every increment is
guarded by ``if profile is not None`` at the call site, so a search
without profiling pays one ``None`` check per counted event and
nothing else — no allocation, no attribute lookup, no lock.

One profile describes one kernel invocation; sharded and replicated
topologies sum per-worker profiles into the caller's block with
:meth:`SearchProfile.merge` / :meth:`SearchProfile.merge_dict` (dicts
are what crosses the forked-worker pipes).  The finished block rides
on span attributes and on ``QueryResult.profile``.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional


class SearchProfile:
    """Counters for one search-kernel run (or a merged set of runs).

    Attributes are plain numbers on purpose — the kernel touches them
    directly, and the whole block serialises as a dict.
    """

    #: Every counted field, in render order.  ``expansion_seconds`` is
    #: the only float (kernel wall time inside the expansion loop).
    FIELDS = (
        "heap_pops",
        "nodes_expanded",
        "edges_relaxed",
        "trees_considered",
        "duplicate_trees",
        "answers_emitted",
        "iterators",
        "expansion_seconds",
    )

    __slots__ = FIELDS

    def __init__(self) -> None:
        self.heap_pops = 0
        self.nodes_expanded = 0
        self.edges_relaxed = 0
        self.trees_considered = 0
        self.duplicate_trees = 0
        self.answers_emitted = 0
        self.iterators = 0
        self.expansion_seconds = 0.0

    # -- aggregation -----------------------------------------------------------

    def merge(self, other: "SearchProfile") -> "SearchProfile":
        """Add another profile's counters into this one (shard sums)."""
        for field in self.FIELDS:
            setattr(self, field, getattr(self, field) + getattr(other, field))
        return self

    def merge_dict(self, payload: Optional[Mapping[str, Any]]) -> "SearchProfile":
        """Add a serialised profile (from a forked worker) into this one."""
        if payload:
            for field in self.FIELDS:
                value = payload.get(field)
                if value:
                    setattr(self, field, getattr(self, field) + value)
        return self

    # -- serialisation ---------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {field: getattr(self, field) for field in self.FIELDS}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SearchProfile":
        profile = cls()
        profile.merge_dict(payload)
        return profile

    def render(self) -> str:
        """One human line: the counters an operator scans first."""
        return (
            f"heap_pops={self.heap_pops} "
            f"nodes_expanded={self.nodes_expanded} "
            f"edges_relaxed={self.edges_relaxed} "
            f"trees_considered={self.trees_considered} "
            f"duplicates={self.duplicate_trees} "
            f"answers={self.answers_emitted} "
            f"iterators={self.iterators} "
            f"expansion_ms={self.expansion_seconds * 1000.0:.2f}"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SearchProfile({self.render()})"
