"""Structured event log: JSON lines over stdlib ``logging``.

One :class:`EventLog` per observability bundle.  Every emitted event
is a single JSON object on one line — machine-parseable, trace-id
correlated — routed through a named ``logging.Logger`` so operators
plug it into whatever handler topology they already run.  By default
the logger carries a :class:`logging.NullHandler`: emitting is a
no-op until a stream or file is attached (:meth:`EventLog.attach`),
which is exactly the near-zero-when-disabled contract the rest of
``repro.obs`` keeps.

Slow queries are logged at WARNING (event ``slow_query``); routine
query completions at INFO (event ``query``).
"""

from __future__ import annotations

import io
import json
import logging
import time
from typing import Any, Dict, Optional

#: The logger name the serving stack emits under.
DEFAULT_LOGGER = "banks.events"


class EventLog:
    """JSON-lines event emitter with trace-id correlation."""

    def __init__(
        self,
        name: str = DEFAULT_LOGGER,
        logger: Optional[logging.Logger] = None,
    ):
        self.logger = logger or logging.getLogger(name)
        if not self.logger.handlers:
            # Quiet by default; also suppresses the root-logger
            # "no handlers" fallback from double-printing events.
            self.logger.addHandler(logging.NullHandler())
            self.logger.propagate = False

    # -- wiring ----------------------------------------------------------------

    def attach(
        self,
        stream: Optional[io.TextIOBase] = None,
        path: Optional[str] = None,
        level: int = logging.INFO,
    ) -> logging.Handler:
        """Attach a stream (or file at ``path``) receiving the JSON lines.

        Returns the handler so callers can detach it again
        (``logger.removeHandler``).  The formatter is the bare message:
        each record already is one complete JSON object.
        """
        if path is not None:
            handler: logging.Handler = logging.FileHandler(
                path, encoding="utf-8"
            )
        else:
            handler = logging.StreamHandler(stream)
        handler.setFormatter(logging.Formatter("%(message)s"))
        handler.setLevel(level)
        self.logger.addHandler(handler)
        self.logger.setLevel(min(self.logger.level or level, level) or level)
        return handler

    # -- emission --------------------------------------------------------------

    def emit(
        self, event: str, level: int = logging.INFO, **fields: Any
    ) -> None:
        """Emit one event as a single JSON line.

        ``fields`` ride verbatim (must be JSON-serialisable); ``ts``
        (epoch seconds) and ``event`` are added here so every line has
        the same envelope.
        """
        if not self.logger.isEnabledFor(level):
            return
        payload: Dict[str, Any] = {"event": event, "ts": round(time.time(), 6)}
        payload.update(fields)
        self.logger.log(
            level, json.dumps(payload, sort_keys=True, default=str)
        )

    def query(self, **fields: Any) -> None:
        """Routine query-completion event (INFO)."""
        self.emit("query", logging.INFO, **fields)

    def slow_query(self, **fields: Any) -> None:
        """Slow-query event (WARNING) — the log line the runbook greps."""
        self.emit("slow_query", logging.WARNING, **fields)
