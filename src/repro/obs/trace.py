"""Spans, trace context, the trace ring buffer and sampling.

One query produces one :class:`Trace`: a mutable, thread-safe span
collector created at the outermost serving surface (``Cluster.query``
— or the engine/router itself when called directly) and handed down
through every layer.  Each layer records spans against explicit parent
ids, so the finished trace reconstructs a single rooted tree —
queue-wait, snapshot-pin, per-shard expansion and merge phases as
children of one root.

Crossing a forked-worker pipe, the ``Trace`` object itself cannot
travel (it holds a lock and belongs to the coordinator).  What crosses
is :meth:`Trace.ctx` — ``{"trace_id", "parent_id"}`` — and what comes
back with the response is the child's span list
(:meth:`Trace.export`), absorbed into the coordinator's collector with
:meth:`Trace.absorb`.  Because every child span carried a real parent
id from the serialised context, re-parenting on the coordinator is
structural, not heuristic.

Span ids are ``{pid:x}-{counter:x}``: unique across forked children
without shared state or randomness.

Storage is **tail-sampled**: every traced query builds its spans, and
:meth:`TraceStore.offer` decides *keeping* — ``always``, a
deterministic 1-in-N rate, or ``slow`` (only queries at or above the
slow-query threshold).  Slow queries are always kept, whatever the
sampling mode, and additionally land in the event log at WARNING.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from repro.errors import ReproError
from repro.obs.events import EventLog
from repro.obs.profile import SearchProfile

#: Sampling modes beyond a numeric rate.
SAMPLE_MODES = ("always", "off", "slow")

_span_counter = itertools.count(1)
_trace_counter = itertools.count(1)


def _new_span_id() -> str:
    return f"{os.getpid():x}-{next(_span_counter):x}"


def _new_trace_id() -> str:
    return f"{os.getpid():x}{time.time_ns() & 0xFFFFFFFFFF:010x}{next(_trace_counter):x}"


def parse_sample(value: Union[str, float, int]) -> Union[str, float]:
    """Normalise a sampling knob: a mode name or a rate in (0, 1].

    Accepts ``"always"`` / ``"off"`` / ``"slow"``, a float, or a
    numeric string (``"0.1"`` = keep one trace in ten).  ``1.0``
    normalises to ``"always"``, ``0`` to ``"off"``.
    """
    if isinstance(value, str):
        lowered = value.strip().lower()
        if lowered in SAMPLE_MODES:
            return lowered
        try:
            value = float(lowered)
        except ValueError:
            raise ReproError(
                f"invalid trace sample {value!r}: expected one of "
                f"{'/'.join(SAMPLE_MODES)} or a rate in (0, 1]"
            ) from None
    rate = float(value)
    if rate <= 0.0:
        return "off"
    if rate >= 1.0:
        return "always"
    return rate


def query_text(query: Any) -> str:
    """A human-readable query string for records and event lines.

    Accepts the raw string or a parsed query (anything with ``.terms``
    carrying ``.raw`` tokens) — every serving layer can hand over
    whatever form it holds."""
    terms = getattr(query, "terms", None)
    if terms is not None:
        try:
            return " ".join(term.raw for term in terms)
        except (AttributeError, TypeError):
            pass
    return str(query)


class Span:
    """One timed phase of one query, with explicit parentage."""

    __slots__ = ("trace_id", "span_id", "parent_id", "name", "start", "end", "attrs")

    def __init__(
        self,
        trace_id: str,
        name: str,
        parent_id: Optional[str] = None,
        start: Optional[float] = None,
        end: Optional[float] = None,
        span_id: Optional[str] = None,
        attrs: Optional[Dict[str, Any]] = None,
    ):
        self.trace_id = trace_id
        self.span_id = span_id or _new_span_id()
        self.parent_id = parent_id
        self.name = name
        self.start = time.time() if start is None else start
        self.end = end
        self.attrs: Dict[str, Any] = attrs if attrs is not None else {}

    @property
    def duration_ms(self) -> float:
        if self.end is None:
            return 0.0
        return (self.end - self.start) * 1000.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Span":
        return cls(
            trace_id=payload["trace_id"],
            name=payload["name"],
            parent_id=payload.get("parent_id"),
            start=payload.get("start"),
            end=payload.get("end"),
            span_id=payload.get("span_id"),
            attrs=dict(payload.get("attrs") or {}),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Span({self.name!r}, id={self.span_id}, "
            f"parent={self.parent_id}, {self.duration_ms:.2f}ms)"
        )


class Trace:
    """The per-query span collector (thread-safe; one per query)."""

    def __init__(self, trace_id: Optional[str] = None):
        self.trace_id = trace_id or _new_trace_id()
        #: Where a child process should hang its outermost span — set
        #: by :meth:`from_ctx` from the serialised parent id.
        self.parent_hint: Optional[str] = None
        self._lock = threading.Lock()
        self._spans: List[Span] = []

    # -- recording -------------------------------------------------------------

    def begin(
        self, name: str, parent_id: Optional[str] = None, **attrs: Any
    ) -> Span:
        """Open a span now; it joins the trace when :meth:`end` closes it."""
        return Span(self.trace_id, name, parent_id=parent_id, attrs=attrs)

    def end(self, span: Span) -> Span:
        span.end = time.time()
        with self._lock:
            self._spans.append(span)
        return span

    def record(
        self,
        name: str,
        parent_id: Optional[str],
        start: float,
        end: float,
        **attrs: Any,
    ) -> Span:
        """Append an already-measured phase (e.g. queue wait) retroactively."""
        span = Span(
            self.trace_id, name, parent_id=parent_id, start=start, end=end,
            attrs=attrs,
        )
        with self._lock:
            self._spans.append(span)
        return span

    class _SpanScope:
        __slots__ = ("trace", "span")

        def __init__(self, trace: "Trace", span: Span):
            self.trace = trace
            self.span = span

        def __enter__(self) -> Span:
            return self.span

        def __exit__(self, exc_type, exc, tb) -> None:
            if exc_type is not None:
                self.span.attrs["error"] = exc_type.__name__
            self.trace.end(self.span)

    def span(
        self, name: str, parent_id: Optional[str] = None, **attrs: Any
    ) -> "Trace._SpanScope":
        """``with trace.span("router.merge", parent_id=...) as s: ...``"""
        return Trace._SpanScope(self, self.begin(name, parent_id, **attrs))

    # -- crossing process boundaries -------------------------------------------

    def ctx(self, parent_id: Optional[str]) -> Dict[str, Optional[str]]:
        """The picklable context that crosses a worker pipe."""
        return {"trace_id": self.trace_id, "parent_id": parent_id}

    @classmethod
    def from_ctx(cls, ctx: Dict[str, Optional[str]]) -> "Trace":
        trace = cls(trace_id=ctx.get("trace_id") or None)
        trace.parent_hint = ctx.get("parent_id")
        return trace

    def absorb(self, span_dicts: Iterable[Dict[str, Any]]) -> None:
        """Merge a worker's exported spans into this collector.

        The spans already carry correct parent ids (the worker hung
        its tree under the serialised ``parent_id``), so re-parenting
        is just id-space union; the trace id is coerced to ours.
        """
        spans = [Span.from_dict(payload) for payload in span_dicts]
        for span in spans:
            span.trace_id = self.trace_id
        with self._lock:
            self._spans.extend(spans)

    # -- reading ---------------------------------------------------------------

    def export(self) -> List[Dict[str, Any]]:
        """Every recorded span as dicts, ordered by start time."""
        with self._lock:
            spans = sorted(self._spans, key=lambda span: span.start)
            return [span.to_dict() for span in spans]

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)


# -- span-tree reconstruction and rendering ------------------------------------


def span_tree(spans: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Reconstruct the rooted tree(s) from exported span dicts.

    Returns a list of root nodes ``{"span": <dict>, "children": [...]}``;
    a span whose parent id is absent from the set (``None``, or a
    parent that was sampled away) becomes a root.  A correctly
    propagated query yields exactly one root.
    """
    by_id = {span["span_id"]: span for span in spans}
    nodes = {
        span_id: {"span": span, "children": []}
        for span_id, span in by_id.items()
    }
    roots: List[Dict[str, Any]] = []
    for span in sorted(spans, key=lambda item: item.get("start") or 0.0):
        node = nodes[span["span_id"]]
        parent = span.get("parent_id")
        if parent is not None and parent in nodes:
            nodes[parent]["children"].append(node)
        else:
            roots.append(node)
    return roots


def _render_node(
    node: Dict[str, Any], prefix: str, is_last: bool, lines: List[str]
) -> None:
    span = node["span"]
    connector = "" if not prefix and is_last is None else (
        "└─ " if is_last else "├─ "
    )
    duration = span.get("end")
    timing = (
        f" ({(duration - span['start']) * 1000.0:.2f} ms)"
        if duration is not None
        else ""
    )
    attrs = span.get("attrs") or {}
    rendered_attrs = " ".join(
        f"{key}={value}" for key, value in sorted(attrs.items())
    )
    suffix = f"  [{rendered_attrs}]" if rendered_attrs else ""
    lines.append(f"{prefix}{connector}{span['name']}{timing}{suffix}")
    children = node["children"]
    child_prefix = prefix + (
        "" if is_last is None else ("   " if is_last else "│  ")
    )
    for index, child in enumerate(children):
        _render_node(
            child, child_prefix, index == len(children) - 1, lines
        )


def render_trace_tree(spans: List[Dict[str, Any]]) -> str:
    """ASCII span tree — what ``banks trace`` and ``/trace/<id>`` print."""
    lines: List[str] = []
    roots = span_tree(spans)
    for root in roots:
        _render_node(root, "", None, lines)
    return "\n".join(lines)


# -- finished traces, storage, sampling ----------------------------------------


@dataclass
class TraceRecord:
    """One finished query trace, as stored and served."""

    trace_id: str
    query: str
    topology: str
    duration_ms: float
    slow: bool
    ts: float
    spans: List[Dict[str, Any]] = field(default_factory=list)
    profile: Optional[Dict[str, Any]] = None
    attrs: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "query": self.query,
            "topology": self.topology,
            "duration_ms": round(self.duration_ms, 3),
            "slow": self.slow,
            "ts": self.ts,
            "spans": self.spans,
            "profile": self.profile,
            "attrs": self.attrs,
        }

    def render(self) -> str:
        header = (
            f"trace {self.trace_id}  query={self.query!r}  "
            f"topology={self.topology}  {self.duration_ms:.2f} ms"
            f"{'  SLOW' if self.slow else ''}"
        )
        body = render_trace_tree(self.spans)
        lines = [header]
        if body:
            lines.append(body)
        if self.profile:
            lines.append(
                "profile: " + SearchProfile.from_dict(self.profile).render()
            )
        return "\n".join(lines)


class TraceStore:
    """Ring buffer of finished traces with tail sampling.

    ``offer`` is the single keep/drop decision point: ``always`` keeps
    everything, a rate keeps a deterministic 1-in-N (evenly spaced, no
    RNG), ``slow`` keeps only queries at or above ``slow_query_ms``.
    Slow queries are *always* kept — they additionally go to a
    dedicated (smaller) slow ring so a burst of fast traffic cannot
    evict the evidence.
    """

    def __init__(
        self,
        sample: Union[str, float] = "always",
        slow_query_ms: Optional[float] = None,
        capacity: int = 256,
    ):
        self.sample = parse_sample(sample)
        self.slow_query_ms = slow_query_ms
        self.capacity = max(1, int(capacity))
        self._lock = threading.Lock()
        self._records: deque = deque(maxlen=self.capacity)
        self._slow: deque = deque(maxlen=min(self.capacity, 64))
        self.offered = 0
        self.kept = 0

    def is_slow(self, duration_ms: float) -> bool:
        return (
            self.slow_query_ms is not None
            and duration_ms >= self.slow_query_ms
        )

    def offer(self, record: TraceRecord) -> bool:
        """Apply the sampling policy; returns whether the trace was kept."""
        with self._lock:
            self.offered += 1
            keep = False
            if record.slow:
                keep = True
            elif self.sample == "always":
                keep = True
            elif self.sample == "off" or self.sample == "slow":
                keep = False
            else:  # deterministic rate: keep when the quota advances
                rate = float(self.sample)
                keep = int(self.offered * rate) > int((self.offered - 1) * rate)
            if keep:
                self.kept += 1
                self._records.append(record)
                if record.slow:
                    self._slow.append(record)
            return keep

    # -- reading ---------------------------------------------------------------

    def recent(self, n: int = 50) -> List[TraceRecord]:
        with self._lock:
            return list(self._records)[-n:][::-1]

    def slow(self, n: int = 50) -> List[TraceRecord]:
        with self._lock:
            return list(self._slow)[-n:][::-1]

    def get(self, trace_id: str) -> Optional[TraceRecord]:
        with self._lock:
            for record in reversed(self._records):
                if record.trace_id == trace_id:
                    return record
        return None

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "sample": self.sample,
                "slow_query_ms": self.slow_query_ms,
                "capacity": self.capacity,
                "offered": self.offered,
                "kept": self.kept,
                "stored": len(self._records),
                "slow_stored": len(self._slow),
            }


class Observability:
    """The bundle one serving surface owns: knobs + store + event log.

    ``enabled`` is the single fast-path gate: with ``sample="off"``
    and no slow-query threshold, :meth:`begin` returns ``None`` and
    the serving layers skip every tracing branch.
    """

    def __init__(
        self,
        sample: Union[str, float] = "off",
        slow_query_ms: Optional[float] = None,
        buffer: int = 256,
        events: Optional[EventLog] = None,
    ):
        self.sample = parse_sample(sample)
        self.slow_query_ms = slow_query_ms
        self.store = TraceStore(
            sample=self.sample,
            slow_query_ms=slow_query_ms,
            capacity=buffer,
        )
        self.events = events or EventLog()

    @property
    def enabled(self) -> bool:
        return self.sample != "off" or self.slow_query_ms is not None

    def begin(self, trace_id: Optional[str] = None) -> Optional[Trace]:
        """A fresh per-query trace, or ``None`` when fully disabled.

        ``trace_id`` adopts a caller-supplied correlation id (the HTTP
        tier propagates ``X-Trace-Id`` request headers through here) so
        the stored record is findable under the id the client knows.
        """
        return Trace(trace_id=trace_id) if self.enabled else None

    def finish(
        self,
        trace: Trace,
        *,
        query: str = "",
        topology: str = "",
        duration_ms: float = 0.0,
        profile: Optional[SearchProfile] = None,
        **attrs: Any,
    ) -> TraceRecord:
        """Seal a trace: build the record, sample it into the store,
        and emit the correlated event-log line(s).

        Returns the record regardless of the store's keep decision —
        the caller (e.g. ``QueryResult.trace``) still gets it.
        """
        slow = self.store.is_slow(duration_ms)
        record = TraceRecord(
            trace_id=trace.trace_id,
            query=query_text(query),
            topology=topology,
            duration_ms=duration_ms,
            slow=slow,
            ts=time.time(),
            spans=trace.export(),
            profile=profile.to_dict() if profile is not None else None,
            attrs=dict(attrs),
        )
        self.store.offer(record)
        fields = {
            "trace_id": record.trace_id,
            "query": record.query,
            "topology": record.topology,
            "duration_ms": round(duration_ms, 3),
            **attrs,
        }
        if slow:
            if profile is not None:
                fields["profile"] = profile.to_dict()
            self.events.slow_query(**fields)
        else:
            self.events.query(**fields)
        return record


def merge_profiles(
    profiles: Iterable[Optional[SearchProfile]],
) -> Optional[SearchProfile]:  # pragma: no cover - convenience
    """Sum per-worker profiles; ``None`` entries are skipped."""
    merged: Optional[SearchProfile] = None
    for profile in profiles:
        if profile is None:
            continue
        if merged is None:
            merged = SearchProfile()
        merged.merge(profile)
    return merged
