"""``repro.obs`` — tracing, kernel profiling and structured events.

The observability layer ISSUE 6 added: a dependency-free (stdlib-only)
subsystem threaded through every serving layer, so a 600 ms query can
be attributed to queueing vs. expansion vs. scatter-gather vs. replica
lag instead of guessed at from two quantiles on ``/metrics``.

* :mod:`repro.obs.trace` — :class:`Span` / :class:`Trace` (one mutable
  collector per query, propagated down the serving layers and across
  forked-worker pipes as a serialisable context dict),
  :class:`TraceRecord` (the finished, storable form),
  :class:`TraceStore` (ring buffer with ``always`` / rate / ``slow``
  tail sampling) and :class:`Observability` (the bundle a cluster or
  engine owns: sampling knobs + store + event log).
* :mod:`repro.obs.profile` — :class:`SearchProfile`, the kernel
  counter block (heap pops, nodes expanded, edges relaxed, answers
  emitted, expansion wall time) the backward/bidirectional searchers
  fill at near-zero cost when disabled; the baseline evidence the CSR
  kernel rewrite will be gated against.
* :mod:`repro.obs.events` — :class:`EventLog`, the stdlib-``logging``
  JSON-lines emitter with trace-id correlation (slow queries land
  here at WARNING).

The span-tree helpers (:func:`span_tree`, :func:`render_trace_tree`)
are what ``/trace/<id>`` and ``banks trace`` render.  Operational
walkthrough: ``docs/OPERATIONS.md`` ("Tracing & slow queries").
"""

from repro.obs.events import EventLog
from repro.obs.profile import SearchProfile
from repro.obs.trace import (
    Observability,
    Span,
    Trace,
    TraceRecord,
    TraceStore,
    parse_sample,
    render_trace_tree,
    span_tree,
)

__all__ = [
    "EventLog",
    "Observability",
    "SearchProfile",
    "Span",
    "Trace",
    "TraceRecord",
    "TraceStore",
    "parse_sample",
    "render_trace_tree",
    "span_tree",
]
