"""Deprecation plumbing for the pre-cluster construction surface.

PR 5 made :class:`~repro.cluster.api.Cluster` /
:class:`~repro.cluster.spec.ClusterSpec` the one public way to stand a
deployment up; :class:`~repro.serve.engine.QueryEngine` and
:class:`~repro.shard.router.ShardRouter` remain the internal layers the
cluster composes.  Constructing them directly still works — the old
code paths are untouched — but emits a :class:`DeprecationWarning`
naming the spec replacement.

The cluster layer itself (and anything else composing the internals on
a caller's behalf) builds inside :func:`internal_construction`, which
suppresses the warning for the current thread: a deprecation aimed at
*callers* must not fire on every internal composition, or it becomes
noise nobody can act on.
"""

from __future__ import annotations

import contextlib
import threading
import warnings

_STATE = threading.local()


@contextlib.contextmanager
def internal_construction():
    """Mark the enclosed constructions as cluster-internal (reentrant,
    per-thread): no deprecation warnings fire inside."""
    depth = getattr(_STATE, "depth", 0)
    _STATE.depth = depth + 1
    try:
        yield
    finally:
        _STATE.depth = depth


def in_internal_construction() -> bool:
    return bool(getattr(_STATE, "depth", 0))


def warn_direct_construction(
    old: str, replacement: str, stacklevel: int = 3
) -> None:
    """Emit the direct-construction deprecation unless we are inside
    :func:`internal_construction`.

    Args:
        old: the class being constructed (e.g. ``"QueryEngine"``).
        replacement: the ``ClusterSpec`` fields that express the same
            deployment (e.g. ``"topology='single', workers=..."``).
    """
    if in_internal_construction():
        return
    warnings.warn(
        f"constructing {old} directly is deprecated; declare the "
        f"deployment with repro.cluster.ClusterSpec({replacement}) and "
        "build it through repro.cluster.Cluster (see docs/API.md)",
        DeprecationWarning,
        stacklevel=stacklevel,
    )
