"""The ``banks bench-replicaset`` measurement.

Four claims about the replica-set front end, measured on one box:

1. **Parity** — every replica answers the benchmark battery with
   exactly the primary's top-k (roots and scores): the WAL-following
   forks run the same arithmetic over the same replayed state.
2. **Read-your-writes** — a query issued with
   ``consistency="read_your_writes"`` immediately after a mutation
   observes that mutation (the chosen replica waits for the epoch, or
   the primary serves).
3. **Lag exclusion** — a replica whose follower is suspended past the
   staleness bound stops being chosen by the balancer (and is
   re-admitted once it catches back up).
4. **Read scaling** — N process-backed replicas answer a concurrent
   read-only workload at >= 1.5x the QPS of a single replica — the
   GIL-free half of the gather-vs-route finding: whole queries to
   whole replicas is the throughput policy, and replication is how it
   scales *without* partitioning.  The ratio is a CPU-parallelism
   property: ``benchmarks/bench_replicaset.py`` gates it only when the
   box has a core per replica, mirroring the route-QPS gate.

The workload is read-only during measurement, so the single- and
N-replica sides serve identical published states; the speedup is a
pure dispatch ratio.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.errors import ReproError

from repro.cluster.api import Cluster, QueryRequest
from repro.cluster.spec import ClusterSpec


def _signature(answers) -> List[Tuple]:
    return [(a.tree.root, round(a.relevance, 9)) for a in answers]


def _throughput(
    cluster: Cluster, queries: Sequence[str], requests: int, concurrency: int, k: int
) -> float:
    """Seconds to serve ``requests`` eventual-consistency reads from
    ``concurrency`` client threads."""
    workload = [queries[i % len(queries)] for i in range(requests)]
    position = {"next": 0}
    lock = threading.Lock()
    errors: List[BaseException] = []

    def client() -> None:
        while True:
            with lock:
                index = position["next"]
                if index >= len(workload):
                    return
                position["next"] = index + 1
            try:
                cluster.query(QueryRequest(workload[index], k=k))
            except BaseException as error:  # pragma: no cover - fails test
                errors.append(error)
                return

    threads = [
        threading.Thread(target=client, name=f"bench-client-{i}")
        for i in range(concurrency)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    if errors:
        raise ReproError(f"benchmark client failed: {errors[0]!r}")
    return elapsed


@dataclass
class ReplicaSetBenchReport:
    """Outcome of one replica-set front-end measurement."""

    dataset: str
    replicas: int
    backend: str
    balance: str
    requests: int
    concurrency: int
    k: int
    multi_seconds: float
    single_seconds: float
    parity_matched: int
    parity_total: int
    ryw_ok: bool
    lag_exclusion_ok: bool
    readmitted_ok: bool
    epochs: int

    @property
    def qps_multi(self) -> float:
        return self.requests / self.multi_seconds if self.multi_seconds else 0.0

    @property
    def qps_single(self) -> float:
        return (
            self.requests / self.single_seconds if self.single_seconds else 0.0
        )

    @property
    def speedup(self) -> float:
        if self.multi_seconds <= 0:
            return float("inf")
        return self.single_seconds / self.multi_seconds

    @property
    def parity_ok(self) -> bool:
        return self.parity_matched == self.parity_total

    @property
    def ok(self) -> bool:
        """Correctness only; the speedup is gated by
        ``benchmarks/bench_replicaset.py`` where core count is known."""
        return (
            self.parity_ok
            and self.ryw_ok
            and self.lag_exclusion_ok
            and self.readmitted_ok
        )

    def render(self) -> str:
        parity = (
            f"{self.parity_matched}/{self.parity_total} "
            f"{'exact' if self.parity_ok else 'MISMATCH'}"
        )
        lines = [
            f"dataset             : {self.dataset}",
            f"replica set         : {self.replicas} replicas "
            f"({self.backend} backend, {self.balance})",
            f"workload            : {self.requests} requests at "
            f"concurrency {self.concurrency}, top-{self.k}",
            f"single replica      : {self.single_seconds:.3f} s "
            f"({self.qps_single:.1f} QPS)",
            f"{self.replicas} replicas          : {self.multi_seconds:.3f} s "
            f"({self.qps_multi:.1f} QPS)",
            f"read speedup        : {self.speedup:.2f}x",
            f"replica parity      : {parity} (vs primary, roots + scores)",
            f"read-your-writes    : "
            f"{'observed' if self.ryw_ok else 'MISSED'}",
            f"lag exclusion       : "
            f"{'honored' if self.lag_exclusion_ok else 'VIOLATED'} "
            f"(re-admission {'ok' if self.readmitted_ok else 'FAILED'})",
            f"epochs published    : {self.epochs}",
        ]
        return "\n".join(lines)


def run_replicaset_benchmark(
    database,
    queries: Sequence[str],
    dataset: str = "",
    requests: int = 64,
    concurrency: int = 8,
    replicas: int = 3,
    balance: str = "round_robin",
    k: int = 5,
    max_lag: int = 4,
    replica_backend: str = "auto",
    workers: int = 2,
) -> ReplicaSetBenchReport:
    """Measure the replica-set front end; see the module docstring.

    The mutation probes (read-your-writes, lag exclusion) insert rows
    into a ``paper`` table, so the benchmark needs a
    bibliography-style schema (``demo:bibliography``) or any database
    with a two-column ``paper`` relation.
    """
    if "paper" not in database.table_names:
        raise ReproError(
            "the replica-set benchmark's mutation probes need a "
            f"bibliography-style 'paper' table; {database.name!r} has "
            "none — use demo:bibliography"
        )

    def build(n: int) -> Cluster:
        return Cluster(
            ClusterSpec(
                topology="replicated",
                replicas=n,
                balance=balance,
                replica_backend=replica_backend,
                workers=workers,
                max_lag=max_lag,
            ),
            database=database.fork(),
        )

    with build(replicas) as cluster:
        replica_set = cluster.backend

        # Warm writes: give every replica real history to replay.
        for step in range(3):
            cluster.insert(
                "paper", [f"rs-warm-{step}", f"replica warmup study {step}"]
            )
        replica_set.sync()

        # 1. Parity: every replica vs the primary, whole battery.
        parity_matched = 0
        battery = list(queries) + ["replica warmup"]
        for query in battery:
            primary_signature = _signature(
                cluster.query(
                    QueryRequest(query, k=k, consistency="primary")
                ).answers
            )
            for index in range(replicas):
                if (
                    _signature(replica_set.search_on(index, query, max_results=k))
                    == primary_signature
                ):
                    parity_matched += 1
        parity_total = len(battery) * replicas

        # 2. Read-your-writes: the very next read observes the write.
        planted = cluster.insert(
            "paper", ["rs-ryw", "freshness probe replication"]
        )
        ryw = cluster.query(
            QueryRequest(
                "freshness probe", k=k, consistency="read_your_writes"
            )
        )
        ryw_ok = (
            any(answer.tree.root == planted for answer in ryw.answers)
            and ryw.epoch >= replica_set.last_write_epoch
        )

        # 3. Lag exclusion: suspend replica 0, publish past the bound,
        # catch the others up, and watch the balancer route around it.
        replica_set.suspend_replica(0)
        for step in range(max_lag + 2):
            cluster.insert(
                "paper", [f"rs-lag-{step}", f"staleness drill {step}"]
            )
        for index in range(1, replicas):
            replica_set.resume_replica(index)
        lag_exclusion_ok = replica_set.lag_epochs(0) > max_lag
        for probe in range(2 * replicas):
            result = cluster.query(
                QueryRequest(battery[probe % len(battery)], k=k)
            )
            if result.replica == 0:
                lag_exclusion_ok = False
        # Re-admission: catch replica 0 back up; it serves again.
        replica_set.resume_replica(0)
        readmitted_ok = False
        for _probe in range(2 * replicas):
            if cluster.query(QueryRequest(battery[0], k=k)).replica == 0:
                readmitted_ok = True
                break
        readmitted_ok = readmitted_ok and replica_set.lag_epochs(0) == 0

        # 4. Throughput: read-only workload over the full set.
        replica_set.sync()
        multi_seconds = _throughput(cluster, battery, requests, concurrency, k)
        backend = replica_set.backend
        epochs = cluster.epoch

    with build(1) as single:
        single.backend.sync()
        single_seconds = _throughput(single, battery, requests, concurrency, k)

    return ReplicaSetBenchReport(
        dataset=dataset or database.name,
        replicas=replicas,
        backend=backend,
        balance=balance,
        requests=requests,
        concurrency=concurrency,
        k=k,
        multi_seconds=multi_seconds,
        single_seconds=single_seconds,
        parity_matched=parity_matched,
        parity_total=parity_total,
        ryw_ok=ryw_ok,
        lag_exclusion_ok=lag_exclusion_ok,
        readmitted_ok=readmitted_ok,
        epochs=epochs,
    )
