""":class:`ClusterSpec` — one declarative description of a deployment.

Four PRs of scaling work left the repo with four parallel construction
idioms: ``QueryEngine(facade, EngineConfig(...))``,
``ShardRouter(database, shards, backend, dispatch)``,
``ReplicaFollower(wal, over_engine=...)`` and
``SnapshotStore(copy_mode=..., wal=...)`` — each with its own kwargs
and its own hand-rolled flag conflicts in ``banks serve``.  The spec
replaces all of that with one frozen dataclass: *what* to stand up
(the topology), *how* it serves (worker/admission knobs), *how* it
writes (copy mode + WAL), and *how* replicas behave (balancing policy,
staleness bound).

Validation is centralised: every conflicting combination — the old
``--replica`` + ``--shards``/``--live``/``--no-engine`` matrix, a
WAL-less follower, a durable log over the deep-copy write path, … —
fails through :class:`~repro.errors.ClusterError` with one message
format (``invalid cluster spec: <detail>``), at construction time,
before any engine exists.

Topologies::

    single              one QueryEngine over one facade (cached, or a
                        live IncrementalBANKS with --live; optionally
                        inline with engine=False — the old --no-engine)
    sharded             a ShardRouter over N graph shards
    replicated          a ReplicaSet: one WAL-writing primary plus N
                        WAL-following replica engines behind a
                        load-balancing front end
    sharded_replicated  a ReplicaSet whose replicas are whole
                        ShardRouters, each kept caught up from the
                        primary's WAL

``follow=True`` (the old ``banks serve --replica``) is the external
half of replication: a read-only single-engine follower of *another
process's* WAL, valid only on the ``single`` topology.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields, replace
from typing import Any, Callable, Optional, Tuple, Union

from repro.errors import ClusterError, ReproError
from repro.obs import parse_sample

#: The deployments the cluster layer can stand up.
TOPOLOGIES = ("single", "sharded", "replicated", "sharded_replicated")

#: Replica-set load-balancing policies.
BALANCE_POLICIES = ("round_robin", "least_inflight")

#: Per-request consistency levels (see repro.cluster.api.QueryRequest).
CONSISTENCY_LEVELS = (
    "eventual",
    "read_your_writes",
    "bounded_staleness",
    "monotonic_reads",
    "primary",
)

_COPY_MODES = ("auto", "delta", "deep")
_FSYNC_POLICIES = ("always", "rotate", "never")
_DISPATCHES = ("gather", "route")
_BACKENDS = ("thread", "process", "auto")


def _invalid(detail: str) -> ClusterError:
    """The one error path every bad spec combination exits through."""
    return ClusterError(f"invalid cluster spec: {detail}")


@dataclass(frozen=True)
class ClusterSpec:
    """Declarative description of one cluster deployment.

    Attributes:
        topology: ``"single"`` | ``"sharded"`` | ``"replicated"`` |
            ``"sharded_replicated"``.
        db: optional data source — a loaded
            :class:`~repro.relational.database.Database` or a CLI
            specifier string (``"demo:bibliography"``,
            ``"sqlite:/path"``); :class:`~repro.cluster.api.Cluster`
            resolves it when no database is passed explicitly.
        shards: shard count (sharded topologies only).
        replicas: replica count (replicated topologies only).
        workers: worker threads for the (primary) engine.
        queue_bound: admission-queue bound before shedding
            (0 = unbounded).
        deadline: per-request queueing deadline in seconds.
        dedup: single-flight deduplication of identical in-flight
            queries.
        engine: ``False`` dispatches searches inline on the facade
            (the old ``--no-engine``; single topology only).
        live: serve a mutable :class:`IncrementalBANKS` facade (single
            topology; replicated topologies are always live — the
            primary owns the write path).
        copy_mode: snapshot capture mode for mutations (``"auto"`` |
            ``"delta"`` | ``"deep"``).
        wal_path: durable epoch-log directory.  Required with
            ``follow``; optional for replicated topologies (an
            ephemeral log is created when omitted); with
            ``live`` it makes the single primary durable.
        wal_fsync: WAL durability policy.
        follow: read-only follower of an external primary's WAL (the
            old ``--replica``); single topology only.
        checkpoint_every: persist a facade checkpoint next to the WAL
            every N epochs (0 = off), so recovery and replica heal
            replay only the tail past the newest checkpoint instead of
            the full history.  Needs a WAL-writing primary: ``live``
            with ``wal_path``, or a replicated topology.
        checkpoint_path: checkpoint directory (default:
            ``<wal_path>/checkpoints``).  Setting it without
            ``checkpoint_every`` enables checkpoint-aware recovery and
            WAL prune clamping without a write cadence.
        shard_backend: ``"thread"`` | ``"process"`` | ``"auto"`` shard
            workers.
        dispatch: shard dispatch policy (``"gather"`` | ``"route"``).
        shard_strategy: placement strategy (name or callable) for the
            graph partitioner.
        replica_backend: how replica workers run — ``"process"``
            (forked, CPU scaling), ``"thread"`` or ``"auto"``.
        balance: replica load-balancing policy (``"round_robin"`` |
            ``"least_inflight"``).
        max_lag: staleness bound in epochs; a replica trailing the WAL
            by more than this is excluded from balancing until it
            catches back up.
        remote_replicas: base URLs (``http://host:port``) of remote
            HTTP serving processes (:mod:`repro.net`) the replicated
            front end balances over instead of forking local workers;
            ``replicated`` topology only, mutually exclusive with
            ``replicas``.
        remote_token: bearer token the front end authenticates to the
            remote replicas with (when they require one).
        trace_sample: query-trace sampling — ``"always"`` (default),
            ``"off"``, ``"slow"`` (keep only slow queries) or a rate
            in (0, 1] (deterministic 1-in-N).
        slow_query_ms: queries at or above this duration are flagged
            slow, always kept in the trace store and logged at
            WARNING; ``None`` disables the slow-query log.
        trace_buffer: trace ring-buffer capacity (kept traces).
    """

    topology: str = "single"
    db: Any = None
    shards: int = 0
    replicas: int = 0
    # engine / admission knobs
    workers: int = 4
    queue_bound: int = 64
    deadline: Optional[float] = None
    dedup: bool = True
    engine: bool = True
    # write path
    live: bool = False
    copy_mode: str = "auto"
    wal_path: Optional[str] = None
    wal_fsync: str = "always"
    follow: bool = False
    checkpoint_every: int = 0
    checkpoint_path: Optional[str] = None
    # shard knobs
    shard_backend: str = "auto"
    dispatch: str = "gather"
    shard_strategy: Union[str, Callable] = "hash"
    # replica-set knobs
    replica_backend: str = "auto"
    balance: str = "round_robin"
    max_lag: int = 8
    # networked replicas (repro.net): base URLs of remote HTTP serving
    # processes the front end balances over instead of forking local
    # workers; each remote process keeps itself caught up (e.g. a
    # ``--follow`` follower over shared WAL storage) and reports its
    # epoch on ``/v1/health``.
    remote_replicas: Tuple[str, ...] = ()
    remote_token: Optional[str] = None
    # observability knobs
    trace_sample: Union[str, float] = "always"
    slow_query_ms: Optional[float] = 500.0
    trace_buffer: int = 256

    def __post_init__(self):
        self.validate()

    # -- the one validation path ----------------------------------------------

    def validate(self) -> "ClusterSpec":
        """Check the whole conflict matrix; raises
        :class:`~repro.errors.ClusterError` (``invalid cluster spec:
        <detail>``) on the first violation, returns ``self`` when
        clean."""
        self._validate_enums()
        self._validate_counts()
        self._validate_modes()
        return self

    def _validate_enums(self) -> None:
        if self.topology not in TOPOLOGIES:
            raise _invalid(
                f"unknown topology {self.topology!r} "
                f"(choose from {', '.join(TOPOLOGIES)})"
            )
        if self.balance not in BALANCE_POLICIES:
            raise _invalid(
                f"unknown balance policy {self.balance!r} "
                f"(choose from {', '.join(BALANCE_POLICIES)})"
            )
        if self.copy_mode not in _COPY_MODES:
            raise _invalid(
                f"unknown copy mode {self.copy_mode!r} "
                f"(choose from {', '.join(_COPY_MODES)})"
            )
        if self.wal_fsync not in _FSYNC_POLICIES:
            raise _invalid(
                f"unknown wal fsync policy {self.wal_fsync!r} "
                f"(choose from {', '.join(_FSYNC_POLICIES)})"
            )
        if self.dispatch not in _DISPATCHES:
            raise _invalid(
                f"unknown dispatch policy {self.dispatch!r} "
                f"(choose from {', '.join(_DISPATCHES)})"
            )
        if self.shard_backend not in _BACKENDS:
            raise _invalid(
                f"unknown shard backend {self.shard_backend!r} "
                f"(choose from {', '.join(_BACKENDS)})"
            )
        if self.replica_backend not in _BACKENDS:
            raise _invalid(
                f"unknown replica backend {self.replica_backend!r} "
                f"(choose from {', '.join(_BACKENDS)})"
            )

    def _validate_counts(self) -> None:
        sharded = self.topology in ("sharded", "sharded_replicated")
        replicated = self.topology in ("replicated", "sharded_replicated")
        if sharded and self.shards < 1:
            raise _invalid(
                f"topology {self.topology!r} needs shards >= 1 "
                f"(got {self.shards})"
            )
        if not sharded and self.shards:
            raise _invalid(
                f"shards={self.shards} conflicts with topology "
                f"{self.topology!r}; use topology='sharded' or "
                "'sharded_replicated'"
            )
        if replicated and self.replicas < 1 and not self.remote_replicas:
            raise _invalid(
                f"topology {self.topology!r} needs replicas >= 1 "
                f"(got {self.replicas}) or remote_replicas URLs"
            )
        if not replicated and self.replicas:
            raise _invalid(
                f"replicas={self.replicas} conflicts with topology "
                f"{self.topology!r}; use topology='replicated' or "
                "'sharded_replicated'"
            )
        if self.workers < 1:
            raise _invalid(f"workers must be >= 1 (got {self.workers})")
        if self.queue_bound < 0:
            raise _invalid(
                f"queue_bound must be >= 0 (got {self.queue_bound})"
            )
        if self.deadline is not None and self.deadline <= 0:
            raise _invalid(f"deadline must be positive (got {self.deadline})")
        if self.max_lag < 0:
            raise _invalid(f"max_lag must be >= 0 (got {self.max_lag})")
        if self.checkpoint_every < 0:
            raise _invalid(
                f"checkpoint_every must be >= 0 (got {self.checkpoint_every})"
            )
        try:
            parse_sample(self.trace_sample)
        except ReproError as error:
            raise _invalid(str(error)) from None
        if self.slow_query_ms is not None and self.slow_query_ms <= 0:
            raise _invalid(
                f"slow_query_ms must be positive or None "
                f"(got {self.slow_query_ms})"
            )
        if self.trace_buffer < 1:
            raise _invalid(
                f"trace_buffer must be >= 1 (got {self.trace_buffer})"
            )

    def _validate_modes(self) -> None:
        replicated = self.topology in ("replicated", "sharded_replicated")
        if self.follow:
            if self.topology != "single":
                raise _invalid(
                    "follow=True is its own serving mode (a read-only "
                    "WAL follower); it conflicts with topology "
                    f"{self.topology!r}"
                )
            if self.live:
                raise _invalid(
                    "follow=True conflicts with live=True: a follower's "
                    "state is owned by the primary's epoch log, a local "
                    "write path would silently diverge from it"
                )
            if not self.engine:
                raise _invalid(
                    "follow=True needs the serving engine (engine=True): "
                    "the follower applies epochs through the engine's "
                    "snapshot store"
                )
            if not self.wal_path:
                raise _invalid(
                    "follow=True needs wal_path (the primary's log to "
                    "tail)"
                )
        if not self.engine:
            if self.topology != "single":
                raise _invalid(
                    "engine=False (inline dispatch) only exists on the "
                    f"single topology, not {self.topology!r}"
                )
            if self.live:
                raise _invalid(
                    "engine=False conflicts with live=True: mutations "
                    "need the engine's snapshot store to publish "
                    "atomically"
                )
        if self.wal_path and self.topology == "sharded":
            raise _invalid(
                "wal_path is not wired into the plain sharded topology; "
                "use topology='sharded_replicated' (the primary owns the "
                "log, replica routers follow it)"
            )
        if self.wal_path and not (self.live or self.follow or replicated):
            raise _invalid(
                "wal_path needs a live primary (live=True), a follower "
                "(follow=True) or a replicated topology; the other "
                "serving modes publish no mutation epochs"
            )
        if self.checkpoint_every or self.checkpoint_path:
            if self.follow:
                raise _invalid(
                    "a follower takes no checkpoints (the primary owns "
                    "the WAL a checkpoint would re-base); drop "
                    "checkpoint_every / checkpoint_path"
                )
            if not (replicated or (self.live and self.wal_path)):
                raise _invalid(
                    "checkpoints re-base a WAL: they need a live durable "
                    "primary (live=True with wal_path) or a replicated "
                    "topology"
                )
        if self.copy_mode == "deep" and self.wal_path:
            raise _invalid(
                "wal_path needs the delta write path; copy_mode='deep' "
                "captures no deltas to serialise"
            )
        if self.copy_mode == "deep" and replicated:
            raise _invalid(
                "replicated topologies need the delta write path "
                "(replicas follow the primary's epochs); drop "
                "copy_mode='deep'"
            )
        if self.remote_replicas:
            if self.topology != "replicated":
                raise _invalid(
                    "remote_replicas (networked HTTP replicas) only "
                    "exist on topology='replicated', not "
                    f"{self.topology!r}"
                )
            if self.replicas:
                raise _invalid(
                    "remote_replicas conflicts with replicas="
                    f"{self.replicas}: a replica set balances over "
                    "local forked workers or remote HTTP processes, "
                    "not a mix"
                )
            for url in self.remote_replicas:
                if not (
                    isinstance(url, str)
                    and url.startswith(("http://", "https://"))
                ):
                    raise _invalid(
                        f"remote replica {url!r} is not an http(s) "
                        "base URL"
                    )

    # -- conveniences ----------------------------------------------------------

    @property
    def replicated(self) -> bool:
        return self.topology in ("replicated", "sharded_replicated")

    @property
    def replica_count(self) -> int:
        """How many replicas the front end balances over (local forked
        workers, or remote HTTP processes)."""
        if self.remote_replicas:
            return len(self.remote_replicas)
        return self.replicas

    @property
    def read_only(self) -> bool:
        """Whether the deployment refuses local writes (a follower)."""
        return self.follow

    def with_overrides(self, **changes) -> "ClusterSpec":
        """A re-validated copy with ``changes`` applied."""
        return replace(self, **changes)

    def describe(self) -> dict:
        """The spec as a plain dict (benchmarks, status pages)."""
        return {
            field.name: getattr(self, field.name)
            for field in fields(self)
            if field.name != "db"
        }

    # -- JSON round trip (spec-file deployments) -------------------------------

    def to_json(self, indent: Optional[int] = 2) -> str:
        """The spec as JSON, loadable by :meth:`from_json`.

        Raises :class:`~repro.errors.ClusterError` when a field cannot
        be serialised (a loaded ``db`` object, a callable
        ``shard_strategy``) — spec files carry names, not objects.
        """
        payload = {}
        for field in fields(self):
            value = getattr(self, field.name)
            if field.name == "db":
                if value is None:
                    continue
                if not isinstance(value, str):
                    raise ClusterError(
                        "cannot serialise a spec holding a loaded "
                        "database; set db to a specifier string like "
                        "'demo:bibliography'"
                    )
            if field.name == "shard_strategy" and not isinstance(value, str):
                raise ClusterError(
                    "cannot serialise a callable shard_strategy; use a "
                    "named strategy ('hash', 'table', 'round_robin')"
                )
            if isinstance(value, tuple):
                value = list(value)
            payload[field.name] = value
        return json.dumps(payload, indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ClusterSpec":
        """Parse a spec from JSON and validate it (construction runs
        the full conflict matrix).  Unknown keys fail loudly — a typo
        in a spec file must not silently deploy the default."""
        try:
            payload = json.loads(text)
        except ValueError as error:
            raise _invalid(f"not valid JSON ({error})") from None
        if not isinstance(payload, dict):
            raise _invalid("spec JSON must be an object")
        known = {field.name for field in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise _invalid(
                f"unknown spec field(s) {', '.join(map(repr, unknown))}"
            )
        if isinstance(payload.get("remote_replicas"), list):
            payload["remote_replicas"] = tuple(payload["remote_replicas"])
        return cls(**payload)

    @classmethod
    def from_json_file(cls, path: str) -> "ClusterSpec":
        """Load and validate a spec file (``banks serve --spec``)."""
        try:
            with open(path, "r", encoding="utf-8") as handle:
                return cls.from_json(handle.read())
        except OSError as error:
            raise _invalid(f"cannot read spec file {path!r}: {error}") from None

    # -- the ``banks serve`` bridge -------------------------------------------

    @classmethod
    def from_serve_args(cls, args) -> "ClusterSpec":
        """Translate a ``banks serve`` argparse namespace into a spec.

        This is where the old flag surface funnels into the one
        validation path: any conflicting combination raises
        :class:`~repro.errors.ClusterError` from the spec constructor,
        with the same message a programmatic caller would get.
        """
        follow = bool(getattr(args, "follow", False))
        inline = bool(getattr(args, "inline", False))
        shards = int(getattr(args, "shards", 0) or 0)
        replicas = int(getattr(args, "replicas", 0) or 0)
        remote_replicas = tuple(getattr(args, "remote_replicas", ()) or ())
        if remote_replicas:
            topology = "replicated"
            return cls(
                topology=topology,
                db=getattr(args, "db", None),
                workers=getattr(args, "workers", 4),
                queue_bound=getattr(args, "queue_bound", 64),
                deadline=getattr(args, "deadline", None),
                wal_path=getattr(args, "wal", None),
                wal_fsync=getattr(args, "wal_fsync", "always"),
                checkpoint_every=int(
                    getattr(args, "checkpoint_every", 0) or 0
                ),
                checkpoint_path=getattr(args, "checkpoint_path", None),
                balance=getattr(args, "balance", "round_robin"),
                max_lag=getattr(args, "max_lag", 8),
                remote_replicas=remote_replicas,
                remote_token=getattr(args, "remote_token", None),
                trace_sample=getattr(args, "trace_sample", None) or "always",
                slow_query_ms=getattr(args, "slow_query_ms", None) or 500.0,
                trace_buffer=getattr(args, "trace_buffer", None) or 256,
            )
        if shards and replicas:
            topology = "sharded_replicated"
        elif shards:
            topology = "sharded"
        elif replicas:
            topology = "replicated"
        else:
            topology = "single"
        return cls(
            topology=topology,
            db=getattr(args, "db", None),
            shards=shards,
            replicas=replicas,
            workers=getattr(args, "workers", 4),
            queue_bound=getattr(args, "queue_bound", 64),
            deadline=getattr(args, "deadline", None),
            engine=not inline,
            live=bool(getattr(args, "live", False)),
            copy_mode=getattr(args, "copy_mode", "auto"),
            wal_path=getattr(args, "wal", None),
            wal_fsync=getattr(args, "wal_fsync", "always"),
            follow=follow,
            checkpoint_every=int(getattr(args, "checkpoint_every", 0) or 0),
            checkpoint_path=getattr(args, "checkpoint_path", None),
            shard_backend=getattr(args, "shard_backend", "auto"),
            dispatch=getattr(args, "dispatch", "gather"),
            replica_backend=getattr(args, "replica_backend", "auto"),
            balance=getattr(args, "balance", "round_robin"),
            max_lag=getattr(args, "max_lag", 8),
            trace_sample=getattr(args, "trace_sample", None) or "always",
            slow_query_ms=getattr(args, "slow_query_ms", None) or 500.0,
            trace_buffer=getattr(args, "trace_buffer", None) or 256,
        )
