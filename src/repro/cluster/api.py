""":class:`Cluster` — one facade, one request/response contract.

The public construction path for every deployment shape the repo has
grown: hand a validated :class:`~repro.cluster.spec.ClusterSpec` to
:class:`Cluster` and it owns composition (engines, routers, replica
sets, WALs, followers), lifecycle (``start``/``close``, context
manager) and a single typed query surface::

    from repro.cluster import Cluster, ClusterSpec, QueryRequest

    with Cluster(ClusterSpec(topology="replicated", replicas=3,
                             db="demo:bibliography")) as cluster:
        cluster.insert("paper", ["p9", "epoch replication study"])
        result = cluster.query(QueryRequest(
            "epoch replication", k=5, consistency="read_your_writes"))
        print(result.served_by, result.epoch, result.answers[0].render())

Whatever the topology, :meth:`Cluster.query` returns a
:class:`QueryResult` carrying the answers **plus provenance** (which
replica / which shards served it) **and the epoch** the read observed;
:meth:`Cluster.submit` is the future-returning form.  Mutations route
to whichever component owns the write path — the live engine's
snapshot store, the shard router's delta routing, or the replica set's
primary.

Consistency levels (per request, ``QueryRequest.consistency``):

* ``"eventual"`` (default) — any eligible replica may serve; the
  answer reflects *some* published epoch at most ``max_lag`` behind.
* ``"read_your_writes"`` — the read observes at least the epoch of the
  last mutation made through this cluster; the replica set waits for
  the chosen replica (bounded) or falls back to the primary.
* ``"bounded_staleness"`` — the read skips replicas trailing the WAL
  by more than ``QueryRequest.staleness_bound`` epochs (default: the
  spec's ``max_lag``), falling back to the primary when none qualify.
* ``"monotonic_reads"`` — successive reads through one cluster never
  observe an older epoch than an earlier read did.
* ``"primary"`` — the read goes to the authoritative copy.

On unreplicated topologies every level is trivially satisfied (reads
and writes share one published state), so the levels are accepted —
and recorded in the result — everywhere.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from repro.deprecation import internal_construction
from repro.errors import ClusterError
from repro.obs import Observability, SearchProfile, TraceRecord
from repro.relational.database import Database, RID

from repro.cluster.replicaset import ReplicaSet
from repro.cluster.spec import CONSISTENCY_LEVELS, ClusterSpec


@dataclass(frozen=True)
class QueryRequest:
    """One keyword read, fully described.

    Attributes:
        keywords: the keyword query (a string, or a pre-parsed
            :class:`~repro.core.query.ParsedQuery`).
        k: how many answers to return.
        deadline: seconds the request may wait queued before it is
            failed (engine-backed topologies).
        consistency: ``"eventual"`` | ``"read_your_writes"`` |
            ``"bounded_staleness"`` | ``"monotonic_reads"`` |
            ``"primary"`` (see the module docstring).
        staleness_bound: with ``consistency="bounded_staleness"``, the
            per-request lag ceiling in epochs (default: the spec's
            ``max_lag``); ignored by the other levels.
        trace_id: adopt this correlation id for the request's trace
            (the HTTP tier forwards ``X-Trace-Id`` headers here), so
            the stored :class:`~repro.obs.TraceRecord` is findable
            under the id the client knows.
    """

    keywords: Any
    k: int = 10
    deadline: Optional[float] = None
    consistency: str = "eventual"
    staleness_bound: Optional[int] = None
    trace_id: Optional[str] = None

    def __post_init__(self):
        if self.consistency not in CONSISTENCY_LEVELS:
            raise ClusterError(
                f"unknown consistency level {self.consistency!r} "
                f"(choose from {', '.join(CONSISTENCY_LEVELS)})"
            )
        if self.k < 1:
            raise ClusterError(f"k must be >= 1 (got {self.k})")
        if self.staleness_bound is not None and self.staleness_bound < 0:
            raise ClusterError(
                f"staleness_bound must be >= 0 (got {self.staleness_bound})"
            )


@dataclass
class QueryResult:
    """What every topology answers with.

    Attributes:
        answers: the ranked answer list (objects with ``tree``,
            ``relevance``, ``rank`` and ``render()``, whatever the
            backend).
        topology: the spec topology that served the read.
        served_by: human-readable provenance — ``"engine"``,
            ``"inline"``, ``"router"``, ``"primary"`` or
            ``"replica-N"``.
        replica: replica index (replicated topologies; ``None`` when
            the primary or an unreplicated backend served).
        shards: shard ids contributing nodes to the answers (sharded
            topologies; empty elsewhere).
        epoch: the mutation epoch the read observed.
        consistency: the level the request asked for.
        latency: request-to-answer seconds at the cluster surface.
        trace: the finished :class:`repro.obs.TraceRecord` (one rooted
            span tree across every layer and process the read touched)
            when the cluster samples traces; ``None`` with
            ``trace_sample="off"`` and no slow-query threshold.
        profile: the merged :class:`repro.obs.SearchProfile` kernel
            counters for the read (same condition).
    """

    answers: List[Any]
    topology: str
    served_by: str
    replica: Optional[int]
    shards: Tuple[int, ...]
    epoch: int
    consistency: str
    latency: float
    trace: Optional[TraceRecord] = None
    profile: Optional[SearchProfile] = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"QueryResult({len(self.answers)} answers via {self.served_by}, "
            f"epoch {self.epoch}, {1000 * self.latency:.1f} ms)"
        )


class Cluster:
    """Own one deployment: construction, lifecycle, queries, writes.

    Args:
        spec: the validated deployment description.
        database: the data to serve; optional when ``spec.db`` names it
            (a loaded :class:`~repro.relational.database.Database` or a
            CLI specifier string like ``"demo:bibliography"``).
    """

    def __init__(
        self, spec: ClusterSpec, database: Optional[Database] = None
    ):
        spec.validate()
        self.spec = spec
        #: The cluster-wide observability bundle: trace store, event
        #: log and sampling knobs.  Shared with the backend (router /
        #: replica set / engine) so every layer's spans and the
        #: ``/trace`` pages read from one place.
        self.obs = Observability(
            sample=spec.trace_sample,
            slow_query_ms=spec.slow_query_ms,
            buffer=spec.trace_buffer,
        )
        self.database = self._resolve_database(spec, database)
        #: Epochs replayed from an existing WAL at startup (live
        #: recovery), for operator output.
        self.recovered_epochs = 0
        #: The follower tailing an external primary (follow mode only).
        self.follower = None
        self._pool = None
        self._started = False
        self._closed = False
        with internal_construction():
            self._build()

    @staticmethod
    def _resolve_database(spec: ClusterSpec, database) -> Database:
        if database is not None:
            return database
        source = spec.db
        if isinstance(source, Database):
            return source
        if isinstance(source, str):
            from repro.cli import load_database

            return load_database(source)
        raise ClusterError(
            "no database: pass one to Cluster(...) or set ClusterSpec.db "
            "to a Database or a specifier string like 'demo:bibliography'"
        )

    # -- composition -----------------------------------------------------------

    def _build(self) -> None:
        spec = self.spec
        self.backend: Any = None  # the engine-like component
        self.banks: Any = None  # the facade browse pages read
        if spec.replicated:
            replica_set = ReplicaSet(self.database, spec, obs=self.obs)
            self.backend = replica_set
            self.banks = replica_set  # facade property resolves per read
        elif spec.topology == "sharded":
            from repro.serve.engine import EngineConfig
            from repro.shard.router import ShardRouter

            router = ShardRouter(
                self.database,
                shards=spec.shards,
                strategy=spec.shard_strategy,
                backend=spec.shard_backend,
                dispatch=spec.dispatch,
                engine_config=EngineConfig(
                    queue_bound=spec.queue_bound,
                    default_deadline=spec.deadline,
                ),
                obs=self.obs,
            )
            self.backend = router
            self.banks = router
        elif not spec.engine:
            from repro.core.banks import BANKS

            self.banks = BANKS(self.database)
        elif spec.follow:
            self._build_follower()
        elif spec.live:
            self._build_live()
        else:
            from repro.core.cache import CachedBanks
            from repro.serve.engine import EngineConfig, QueryEngine

            self.banks = CachedBanks(self.database)
            self.backend = QueryEngine(
                self.banks, self._engine_config(), obs=self.obs
            )

    def _engine_config(self, **overrides):
        from repro.serve.engine import EngineConfig

        spec = self.spec
        settings = dict(
            workers=spec.workers,
            queue_bound=spec.queue_bound,
            default_deadline=spec.deadline,
            dedup=spec.dedup,
        )
        settings.update(overrides)
        return EngineConfig(**settings)

    def _build_live(self) -> None:
        import os

        from repro.core.incremental import IncrementalBANKS
        from repro.serve.engine import QueryEngine

        spec = self.spec
        checkpoints = None
        if spec.checkpoint_every or spec.checkpoint_path:
            from repro.ops.checkpoint import CheckpointManager

            checkpoints = CheckpointManager(
                spec.checkpoint_path
                or os.path.join(spec.wal_path, "checkpoints"),
                every=0,
            )
        if spec.wal_path and os.path.isdir(spec.wal_path):
            # Restarting over an existing log: recover the exact
            # pre-crash facade before serving (pruned history refuses
            # loudly inside recover).  With checkpointing configured,
            # recovery starts from the newest valid checkpoint and
            # replays only the tail.
            self.banks = IncrementalBANKS.recover(
                self.database, spec.wal_path, checkpoints=checkpoints
            )
            # Checkpoint recovery adopts the checkpoint's database copy;
            # keep the cluster handle pointing at the served one.
            self.database = self.banks.database
            self.recovered_epochs = self.banks.applied_epoch
        else:
            self.banks = IncrementalBANKS(self.database)
        self.backend = QueryEngine(
            self.banks,
            self._engine_config(
                copy_mode=spec.copy_mode,
                wal_path=spec.wal_path,
                wal_fsync=spec.wal_fsync,
                checkpoint_every=spec.checkpoint_every,
                checkpoint_path=spec.checkpoint_path,
            ),
            obs=self.obs,
        )

    def _build_follower(self) -> None:
        from repro.core.incremental import IncrementalBANKS
        from repro.serve.engine import QueryEngine
        from repro.store.wal import ReplicaFollower

        # A follower serves reads only: the loaded database is the base
        # snapshot, the external primary's WAL is the source of truth,
        # and epochs apply through the engine so readers keep snapshot
        # isolation.
        self.banks = IncrementalBANKS(self.database)
        self.backend = QueryEngine(
            self.banks, self._engine_config(), obs=self.obs
        )
        self.follower = ReplicaFollower.over_engine(
            self.spec.wal_path, self.backend, metrics=self.backend.metrics
        )
        self.follower.poll()

    # -- the public read surface -----------------------------------------------

    def query(self, request: Any, on_answer=None, **overrides) -> QueryResult:
        """Serve one read; accepts a :class:`QueryRequest` or a plain
        keyword string (``overrides``: ``k``, ``deadline``,
        ``consistency``).

        ``on_answer`` (when the deployment streams inline — see
        :meth:`streams_inline`) fires with each answer as the search
        kernel emits it, strictly before the call returns; the final
        returned list stays authoritative.  Backends whose workers live
        across a process boundary cannot carry the callback and simply
        ignore it.
        """
        if not isinstance(request, QueryRequest):
            request = QueryRequest(request, **overrides)
        elif overrides:
            raise ClusterError(
                "pass either a QueryRequest or keyword overrides, not both"
            )
        self._check_open()
        started = time.monotonic()
        spec = self.spec
        if on_answer is not None and not self.streams_inline():
            on_answer = None
        stream_kwargs = {} if on_answer is None else {"on_answer": on_answer}
        # The cluster surface originates the trace: one root ``query``
        # span per request, with every layer below (replica set, shard
        # router, engine, kernel) parenting its spans under it — across
        # forked workers too.  A handed-down trace suppresses the inner
        # layers' own origination, so exactly one record is finished.
        trace = self.obs.begin(request.trace_id)
        profile = SearchProfile() if trace is not None else None
        root = (
            trace.begin(
                "query",
                topology=spec.topology,
                consistency=request.consistency,
                k=request.k,
            )
            if trace is not None
            else None
        )
        obs_kwargs = (
            {
                "trace": trace,
                "trace_parent": root.span_id,
                "profile": profile,
            }
            if trace is not None
            else {}
        )
        record = None
        try:
            if spec.replicated:
                answers, replica, epoch = self.backend.query(
                    request.keywords,
                    max_results=request.k,
                    deadline=request.deadline,
                    consistency=request.consistency,
                    staleness_bound=request.staleness_bound,
                    **obs_kwargs,
                    **stream_kwargs,
                )
                served_by = (
                    "primary" if replica is None else f"replica-{replica}"
                )
                shards = tuple(
                    sorted(
                        {s for a in answers for s in getattr(a, "shards", ())}
                    )
                )
            elif spec.topology == "sharded":
                answers = self.backend.search(
                    request.keywords,
                    max_results=request.k,
                    **obs_kwargs,
                    **stream_kwargs,
                )
                replica, epoch = None, self.backend.epoch
                served_by = "router"
                shards = tuple(
                    sorted({s for a in answers for s in a.shards()})
                )
            elif self.backend is not None:
                outcome = self.backend.submit(
                    request.keywords,
                    deadline=request.deadline,
                    max_results=request.k,
                    **obs_kwargs,
                    **stream_kwargs,
                ).result()
                answers = outcome.answers
                if self.follower is not None:
                    # The follower's local delta log renumbers per poll
                    # batch; the primary's WAL epoch is the one that means
                    # something to the operator.
                    replica, epoch = None, self.follower.applied_epoch
                    served_by = "follower"
                else:
                    replica, epoch = None, self.backend.snapshots.epoch
                    served_by = "engine"
                shards = ()
            else:
                answers = self.banks.search(
                    request.keywords,
                    max_results=request.k,
                    **obs_kwargs,
                    **stream_kwargs,
                )
                replica, epoch, served_by, shards = None, 0, "inline", ()
        except BaseException as error:
            if trace is not None:
                root.attrs["error"] = type(error).__name__
                trace.end(root)
                self.obs.finish(
                    trace,
                    query=request.keywords,
                    topology=spec.topology,
                    duration_ms=(time.monotonic() - started) * 1000.0,
                    profile=profile,
                    consistency=request.consistency,
                    error=type(error).__name__,
                )
            raise
        latency = time.monotonic() - started
        if trace is not None:
            root.attrs["answers"] = len(answers)
            root.attrs["served_by"] = served_by
            trace.end(root)
            record = self.obs.finish(
                trace,
                query=request.keywords,
                topology=spec.topology,
                duration_ms=latency * 1000.0,
                profile=profile,
                served_by=served_by,
                consistency=request.consistency,
            )
        return QueryResult(
            answers=answers,
            topology=spec.topology,
            served_by=served_by,
            replica=replica,
            shards=shards,
            epoch=epoch,
            consistency=request.consistency,
            latency=latency,
            trace=record,
            profile=profile,
        )

    def submit(self, request: Any, **overrides) -> "Future[QueryResult]":
        """Admit one read asynchronously; the future resolves to the
        same :class:`QueryResult` :meth:`query` returns."""
        if not isinstance(request, QueryRequest):
            request = QueryRequest(request, **overrides)
        elif overrides:
            raise ClusterError(
                "pass either a QueryRequest or keyword overrides, not both"
            )
        self._check_open()
        if self._pool is None:
            from repro.serve.pool import WorkerPool

            self._pool = WorkerPool(
                workers=max(4, self.spec.workers, 2 * self.spec.replicas),
                queue_bound=0,
                name="cluster-submit",
            )
        future: Future = Future()
        self._pool.submit(lambda: self.query(request), future=future)
        return future

    def search(self, query: Any, max_results: int = 10, **kwargs) -> List[Any]:
        """Engine-compatible convenience: the bare answer list."""
        return self.query(QueryRequest(query, k=max_results, **kwargs)).answers

    def streams_inline(self) -> bool:
        """Whether this deployment can flush answers as the kernel
        finds them (the ``on_answer`` hook / SSE streaming).  True for
        every in-process backend; false when the serving workers live
        across a process boundary (forked shard or replica workers,
        remote HTTP replicas) — a Python callback cannot cross a pipe
        or a socket, so those deployments deliver all answers at
        completion instead."""
        backend = self.backend
        worker_backend = getattr(backend, "backend", None)
        if worker_backend is not None:
            return worker_backend == "thread"
        return True

    def query_stream(self, request: Any, **overrides):
        """Serve one read incrementally: a generator of ``(kind,
        payload)`` events — ``("answer", answer)`` for each answer as
        the kernel emits it, then exactly one ``("result", QueryResult)``
        carrying the authoritative ranked list (identical to what
        :meth:`query` returns for the same request).

        On deployments that cannot stream inline (see
        :meth:`streams_inline`) the answer events arrive only once the
        search completes — the event shape is the same either way.
        The underlying query runs on a worker thread; an error raises
        out of the generator, not into the void.
        """
        import queue as queue_module

        if not isinstance(request, QueryRequest):
            request = QueryRequest(request, **overrides)
        elif overrides:
            raise ClusterError(
                "pass either a QueryRequest or keyword overrides, not both"
            )
        self._check_open()
        events: "queue_module.Queue" = queue_module.Queue()
        streamed = self.streams_inline()

        def run() -> None:
            try:
                result = self.query(
                    request,
                    on_answer=lambda a: events.put(("answer", a)),
                )
                if not streamed:
                    for answer in result.answers:
                        events.put(("answer", answer))
                events.put(("result", result))
            except BaseException as error:  # noqa: BLE001 - re-raised below
                events.put(("error", error))

        worker = threading.Thread(
            target=run, name="cluster-query-stream", daemon=True
        )
        worker.start()
        while True:
            kind, payload = events.get()
            if kind == "error":
                raise payload
            yield kind, payload
            if kind == "result":
                return

    # -- the public write surface ----------------------------------------------

    def insert(self, table_name: str, values) -> RID:
        writer = self._writer()
        if hasattr(writer, "insert"):
            return writer.insert(table_name, values)
        return writer.mutate(lambda f: f.insert(table_name, values))

    def delete(self, rid: RID) -> None:
        writer = self._writer()
        if hasattr(writer, "insert"):
            writer.delete(rid)
        else:
            writer.mutate(lambda f: f.delete(rid))

    def update(self, rid: RID, changes) -> None:
        writer = self._writer()
        if hasattr(writer, "insert"):
            writer.update(rid, changes)
        else:
            writer.mutate(lambda f: f.update(rid, changes))

    def mutate(self, fn) -> Any:
        """Apply a mutation batch function on the write path's facade
        (engine-backed topologies; the shard router exposes only the
        typed insert/delete/update surface)."""
        writer = self._writer()
        if not hasattr(writer, "mutate"):
            raise ClusterError(
                f"topology {self.spec.topology!r} routes typed mutations "
                "(insert/delete/update); it has no facade-function write "
                "path"
            )
        return writer.mutate(fn)

    def _writer(self):
        spec = self.spec
        if spec.follow:
            raise ClusterError(
                "this cluster is a read-only follower: its state is owned "
                "by the primary's epoch log (mutate through the primary)"
            )
        if spec.replicated or spec.topology == "sharded":
            return self.backend
        if spec.live:
            return self.backend
        raise ClusterError(
            f"topology {self.spec.topology!r} serves an immutable facade; "
            "set live=True (or a replicated topology) for a write path"
        )

    # -- introspection ---------------------------------------------------------

    @property
    def engine(self) -> Any:
        """The engine-like backend (``None`` for inline dispatch)."""
        return self.backend

    @property
    def metrics(self):
        return getattr(self.backend, "metrics", None)

    @property
    def read_only(self) -> bool:
        return self.spec.read_only

    @property
    def epoch(self) -> int:
        if self.follower is not None:
            return int(self.follower.applied_epoch)
        backend = self.backend
        if backend is None:
            return 0
        epoch = getattr(backend, "epoch", None)
        if epoch is not None:
            return int(epoch)
        return int(backend.snapshots.epoch)

    def describe(self) -> dict:
        facts = {"topology": self.spec.topology, "spec": self.spec.describe()}
        describe = getattr(self.backend, "describe", None)
        if callable(describe):
            facts["backend"] = describe()
        return facts

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> "Cluster":
        """Begin background work: WAL tailing (follower / replica
        set).  Idempotent; querying before ``start`` is fine — the
        backends are live from construction."""
        self._check_open()
        if self._started:
            return self
        self._started = True
        if self.follower is not None:
            self.follower.start(interval=0.5)
        if self.spec.replicated:
            self.backend.start()
        return self

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self.follower is not None:
            self.follower.stop()
        if self._pool is not None:
            self._pool.stop(wait=False)
        stop = getattr(self.backend, "stop", None)
        if callable(stop):
            stop()

    #: Engine-compatible alias.
    stop = close

    def _check_open(self) -> None:
        if self._closed:
            raise ClusterError("cluster is closed")

    def __enter__(self) -> "Cluster":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Cluster({self.spec.topology}, {self.database.name}, "
            f"epoch {self.epoch})"
        )
