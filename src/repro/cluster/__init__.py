"""``repro.cluster`` — one public API over engine, shards, replicas, WAL.

BANKS is one system — keyword search served over a browsable database —
and this package is its one construction surface.  The subsystem
contract:

* :mod:`repro.cluster.spec` — :class:`ClusterSpec`, the declarative
  description of a deployment (topology ``single`` | ``sharded`` |
  ``replicated`` | ``sharded_replicated``, plus the write-path, WAL,
  admission and balancing knobs) with **centralised validation**:
  every conflicting combination fails through
  :class:`~repro.errors.ClusterError` with one message format, at
  construction time.
* :mod:`repro.cluster.api` — :class:`Cluster`, the facade owning
  composition and lifecycle, and the typed request/response contract:
  :class:`QueryRequest` (keywords, k, deadline, consistency) →
  :class:`QueryResult` (answers + shard/replica provenance + the
  observed epoch + timing), via sync :meth:`~Cluster.query` or
  future-returning :meth:`~Cluster.submit`.
* :mod:`repro.cluster.replicaset` — :class:`ReplicaSet`, the serving
  half of replication the ROADMAP promised: N WAL-following replicas
  forked from one primary, load-balanced (``round_robin`` /
  ``least_inflight``), laggards excluded past a staleness bound,
  mutations routed to the primary, failover + re-admission surfaced on
  ``/metrics``.
* :mod:`repro.cluster.bench` — the ``banks bench-replicaset``
  measurement (:func:`run_replicaset_benchmark`).

:class:`~repro.serve.engine.QueryEngine`,
:class:`~repro.shard.router.ShardRouter` and
:class:`~repro.store.wal.ReplicaFollower` remain the internal layers
the cluster composes; constructing them directly still works but is
deprecated (see :mod:`repro.deprecation` and ``docs/API.md``, which
carries the migration table).
"""

from repro.cluster.api import Cluster, QueryRequest, QueryResult
from repro.cluster.bench import ReplicaSetBenchReport, run_replicaset_benchmark
from repro.cluster.replicaset import ReplicaAnswer, ReplicaSet
from repro.cluster.spec import (
    BALANCE_POLICIES,
    CONSISTENCY_LEVELS,
    TOPOLOGIES,
    ClusterSpec,
)

__all__ = [
    "BALANCE_POLICIES",
    "CONSISTENCY_LEVELS",
    "Cluster",
    "ClusterSpec",
    "QueryRequest",
    "QueryResult",
    "ReplicaAnswer",
    "ReplicaSet",
    "ReplicaSetBenchReport",
    "TOPOLOGIES",
    "run_replicaset_benchmark",
]
