""":class:`ReplicaSet` — N WAL-following replicas behind one front end.

The ROADMAP's missing serving half of replication: PR 4 shipped the
*primitive* (a :class:`~repro.store.wal.ReplicaFollower` keeps one
forked engine or router caught up from a primary's WAL); this module
ships the deployment — one **primary** that owns the write path and N
**replicas** that serve reads, load-balanced behind a single query
surface.

Mechanics:

* the primary is a :class:`~repro.serve.engine.QueryEngine` over an
  :class:`~repro.core.incremental.IncrementalBANKS` facade with a WAL
  attached: every mutation publishes an epoch durably before readers
  see it (the PR 4 write-ahead contract);
* each replica starts from a fork of the *base* database and is kept
  caught up by a :class:`~repro.store.wal.ReplicaFollower` tailing the
  primary's WAL — ``replica_backend="process"`` (the default where
  fork exists) runs each replica facade in a forked worker process so
  N replicas genuinely search N-way parallel on N cores, exactly the
  trick :mod:`repro.shard.process` plays for shards;
* queries pick a replica by the configured **balancing policy**
  (``round_robin`` or ``least_inflight``) among the *eligible* ones:
  alive, and trailing the WAL by at most ``max_lag`` epochs.  A
  laggard is excluded until it catches back up (the exclusion and the
  re-admission are both counted on ``/metrics``); when no replica is
  eligible the primary serves the read itself — the front end degrades,
  it never goes dark;
* ``consistency="read_your_writes"`` waits (bounded) for the chosen
  replica to reach the epoch of the last local write, falling back to
  the primary — which trivially has it — when the wait would exceed
  the bound;
* a replica that dies mid-query (killed process, stopped engine) is
  marked dead and the query retries elsewhere; :meth:`ReplicaSet.heal`
  rebuilds dead replicas from the base snapshot plus the WAL and
  re-admits them once caught up.

For ``topology="sharded_replicated"`` each replica is a whole
thread-backed :class:`~repro.shard.router.ShardRouter` replaying
epochs via ``apply_epochs`` (per-shard delta routing); thread backing
is deliberate — forking shard workers *after* the primary engine's
threads exist would clone held locks, and the topology's point is
partitioned mechanics behind the replicated front end, not double
process fan-out.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import threading
import time
from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence, Set, Tuple

from repro.core.incremental import IncrementalBANKS
from repro.deprecation import internal_construction
from repro.errors import (
    ClusterError,
    EngineStoppedError,
    ReproError,
    ShardError,
)
from repro.obs import Observability, SearchProfile, Trace
from repro.relational.database import RID
from repro.serve.engine import EngineConfig, QueryEngine
from repro.serve.metrics import MetricsRegistry
from repro.shard.process import ProcessWorkerProxy, fork_available
from repro.store.wal import ReplicaFollower, WalReader

from repro.cluster.spec import ClusterSpec


#: How long a read_your_writes request may wait for a replica to catch
#: up before falling back to the primary.
_RYW_WAIT_SECONDS = 2.0

#: Replica handle states (reported by :meth:`ReplicaSet.replica_status`).
_ACTIVE, _EXCLUDED, _DEAD = "active", "excluded", "dead"


@dataclass
class ReplicaAnswer:
    """One ranked answer with replica provenance.

    Attributes:
        tree: the connection tree.
        relevance: overall relevance in [0, 1].
        rank: position in the result list (0-based).
        replica: index of the replica that served it (``None`` when
            the primary served the read).
        shards: shard ids contributing nodes (sharded_replicated only).
    """

    tree: Any
    relevance: float
    rank: int
    replica: Optional[int]
    _banks: "ReplicaSet"
    shards: Tuple[int, ...] = ()

    @property
    def root(self) -> RID:
        return self.tree.root

    def render(self) -> str:
        labels = {node: self._banks.node_label(node) for node in self.tree.nodes}
        return self.tree.render_indented(labels)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        where = "primary" if self.replica is None else f"replica {self.replica}"
        return (
            f"ReplicaAnswer(rank={self.rank}, "
            f"relevance={self.relevance:.4f}, {where})"
        )


class _RemoteQueryFailure:
    """A query-level error from the forked replica, shipped back as a
    value.

    The transport reserves exceptions for *worker* failures (dead
    process, remote crash) — those mark the replica dead and fail
    over.  A bad query is not a bad replica: the child wraps the
    original exception here, the parent re-raises it, and the worker
    stays in rotation.  An exception that cannot round-trip through
    pickle travels as a :class:`~repro.errors.ReproError` carrying its
    repr instead.
    """

    def __init__(self, error: BaseException):
        try:
            pickle.loads(pickle.dumps(error))
        except Exception:
            error = ReproError(f"{type(error).__name__}: {error}")
        self.error = error


class _ReplicaSearchTarget:
    """Child-side adapter around a replica facade.

    Lives in the forked worker process: searches return lightweight
    ``(tree, relevance)`` pairs (never facade-backed ``Answer`` objects,
    whose back-reference would drag the whole replica through the
    pipe), and ``apply_epochs`` replays WAL history pushed from the
    parent.
    """

    def __init__(self, facade: IncrementalBANKS):
        self.facade = facade

    def search_scored(
        self,
        query,
        timeout: Optional[float] = None,
        trace=None,
        profile=None,
        **kwargs,
    ):
        # ``timeout`` bounds the caller's wait, not the search itself;
        # the single-threaded child just runs to completion.
        # Tracing arrives over the pipe as a context dict (and
        # ``profile=True``); the reply becomes an (answers, obs)
        # envelope the parent-side proxy absorbs.
        envelope = isinstance(trace, dict) or profile is True
        local_trace = Trace.from_ctx(trace) if isinstance(trace, dict) else trace
        local_profile = SearchProfile() if profile is True else profile
        span = (
            local_trace.begin(
                "replica.search", parent_id=local_trace.parent_hint
            )
            if local_trace is not None
            else None
        )
        try:
            result = [
                (answer.tree, answer.relevance)
                for answer in self.facade.search(
                    query,
                    trace=local_trace,
                    trace_parent=span.span_id if span is not None else None,
                    profile=local_profile,
                    **kwargs,
                )
            ]
            if span is not None:
                span.attrs["answers"] = len(result)
        except Exception as error:
            if span is not None:
                span.attrs["error"] = type(error).__name__
            result = _RemoteQueryFailure(error)
        if span is not None:
            local_trace.end(span)
        if envelope:
            return result, {
                "spans": local_trace.export() if local_trace else [],
                "profile": (
                    local_profile.to_dict() if local_profile else {}
                ),
            }
        return result

    def apply_epochs(self, epochs) -> int:
        return self.facade.apply_epochs(epochs)


class ProcessReplicaWorker(ProcessWorkerProxy):
    """Parent-side proxy for one forked replica worker.

    The shard workers' pipe transport (:class:`ProcessWorkerProxy`)
    with replica semantics on top: transport failures raise
    :class:`~repro.errors.ClusterError` (the front end marks the
    replica dead and retries elsewhere), query-level errors re-raise
    as themselves (see :class:`_RemoteQueryFailure`), and ``kill()``
    terminates the child without a handshake — the crash-simulation
    hook the failover tests and runbooks use.
    """

    error_type = ClusterError

    def __init__(self, target: _ReplicaSearchTarget, index: int):
        self.index = index
        self.applied_epoch = int(getattr(target.facade, "applied_epoch", 0))
        super().__init__(
            target, label=f"replica {index}", name=f"replica-worker-{index}"
        )

    def search_scored(
        self, query, trace=None, trace_parent=None, profile=None, **kwargs
    ) -> List[Tuple[Any, float]]:
        # A live trace cannot cross the fork: ship the serialized
        # context, absorb the child's spans from the reply envelope.
        if trace is not None:
            kwargs["trace"] = trace.ctx(trace_parent)
        if profile is not None:
            kwargs["profile"] = True
        result = self._call("search_scored", query, **kwargs)
        if trace is not None or profile is not None:
            result, obs = result
            if trace is not None:
                trace.absorb(obs.get("spans") or [])
            if profile is not None:
                profile.merge_dict(obs.get("profile") or {})
        if isinstance(result, _RemoteQueryFailure):
            raise result.error
        return result

    def apply_epochs(self, epochs) -> int:
        epochs = list(epochs)
        applied = self._call("apply_epochs", epochs)
        if epochs:
            self.applied_epoch = epochs[-1].number
        return applied

    def kill(self) -> None:
        """Simulate a crash: SIGTERM the child, no shutdown handshake."""
        self._stopped = True
        self._process.terminate()


class _ThreadReplica:
    """One in-process replica: a forked facade behind its own engine.

    Portability fallback (and the deterministic test backend): results
    are identical to the process worker, reads do not scale past the
    GIL.  Epochs apply through the engine
    (:meth:`~repro.store.wal.ReplicaFollower.over_engine` semantics:
    one poll batch publishes as one snapshot version).
    """

    def __init__(self, facade: IncrementalBANKS, spec: ClusterSpec):
        self.engine = QueryEngine(
            facade,
            EngineConfig(
                workers=1,
                queue_bound=spec.queue_bound,
                default_deadline=spec.deadline,
                dedup=False,
                copy_mode="delta",
            ),
        )

    @property
    def applied_epoch(self) -> int:
        facade = self.engine.snapshots.current().facade
        return int(getattr(facade, "applied_epoch", 0) or 0)

    def search_scored(
        self, query, timeout: Optional[float] = None, **kwargs
    ) -> List[Tuple[Any, float]]:
        outcome = self.engine.submit(query, **kwargs).result(timeout=timeout)
        return [(answer.tree, answer.relevance) for answer in outcome.answers]

    def apply_epochs(self, epochs) -> int:
        def apply(facade: Any) -> int:
            return facade.apply_epochs(epochs)

        return self.engine.mutate(apply)

    @property
    def alive(self) -> bool:
        return not self.engine.pool.stopped

    def kill(self) -> None:
        self.engine.stop(wait=False)

    def stop(self) -> None:
        self.engine.stop(wait=False)


class _RouterReplica:
    """One sharded replica: a whole thread-backed
    :class:`~repro.shard.router.ShardRouter` replaying WAL epochs via
    per-shard delta routing."""

    def __init__(self, database, spec: ClusterSpec):
        from repro.shard.router import ShardRouter

        self.router = ShardRouter(
            database,
            shards=spec.shards,
            strategy=spec.shard_strategy,
            backend="thread",
            dispatch=spec.dispatch,
            engine_config=EngineConfig(
                queue_bound=spec.queue_bound,
                default_deadline=spec.deadline,
            ),
        )
        self.applied_epoch = 0
        self._alive = True

    def search_scored(
        self, query, timeout: Optional[float] = None, **kwargs
    ) -> List[Tuple[Any, float, Tuple[int, ...]]]:
        return [
            (answer.tree, answer.relevance, tuple(sorted(answer.shards())))
            for answer in self.router.search(query, timeout=timeout, **kwargs)
        ]

    def apply_epochs(self, epochs) -> int:
        epochs = list(epochs)
        applied = self.router.apply_epochs(epochs)
        if epochs:
            self.applied_epoch = epochs[-1].number
        return applied

    @property
    def alive(self) -> bool:
        return self._alive

    def kill(self) -> None:
        self._alive = False
        self.router.stop()

    def stop(self) -> None:
        self._alive = False
        self.router.stop()


@dataclass
class _ReplicaHandle:
    """Front-end bookkeeping for one replica."""

    index: int
    worker: Any
    follower: Optional[ReplicaFollower] = None
    dead: bool = False
    excluded: bool = False
    inflight: int = 0
    served: int = 0
    lock: threading.Lock = field(default_factory=threading.Lock)

    @property
    def applied_epoch(self) -> int:
        if self.follower is not None:
            return self.follower.applied_epoch
        return int(getattr(self.worker, "applied_epoch", 0))

    @property
    def alive(self) -> bool:
        return not self.dead and bool(getattr(self.worker, "alive", True))


class ReplicaSet:
    """One primary plus N WAL-following replicas behind one front end.

    Args:
        database: the *base* database.  The primary serves a fork of
            it (recovered through the WAL when the log already holds
            epochs) and every replica starts from its own fork; the
            caller's database is never mutated.
        spec: the validated :class:`~repro.cluster.spec.ClusterSpec`
            (``topology="replicated"`` or ``"sharded_replicated"``).
        metrics: external registry to record into (one per set).
    """

    def __init__(
        self,
        database,
        spec: ClusterSpec,
        metrics: Optional[MetricsRegistry] = None,
        obs: Optional[Observability] = None,
    ):
        if not spec.replicated:
            raise ClusterError(
                f"ReplicaSet needs a replicated topology, got "
                f"{spec.topology!r}"
            )
        self.spec = spec
        self._base = database
        self._wal_dir = spec.wal_path or tempfile.mkdtemp(
            prefix="banks-replicaset-"
        )
        self._owns_wal = spec.wal_path is None
        backend = spec.replica_backend
        if spec.topology == "sharded_replicated":
            backend = "thread"  # see the module docstring
        elif backend == "auto":
            backend = "process" if fork_available() else "thread"
        self.backend = backend

        if spec.remote_replicas:
            self.backend = "remote"
        with internal_construction():
            # Replica workers first: the process backend must fork
            # before the primary engine starts any thread.
            self._handles: List[_ReplicaHandle] = [
                _ReplicaHandle(index, self._build_worker(index))
                for index in range(spec.replica_count)
            ]
            self.primary = QueryEngine(
                self._primary_facade(),
                EngineConfig(
                    workers=spec.workers,
                    queue_bound=spec.queue_bound,
                    default_deadline=spec.deadline,
                    dedup=spec.dedup,
                    copy_mode=spec.copy_mode,
                    wal_path=self._wal_dir,
                    wal_fsync=spec.wal_fsync,
                    checkpoint_every=spec.checkpoint_every,
                    checkpoint_path=spec.checkpoint_path,
                ),
            )
        self.reader = WalReader(self._wal_dir)
        if not spec.remote_replicas:
            for handle in self._handles:
                # Each follower owns a private reader: its segment-range
                # cache is then only ever touched by that replica's
                # threads.  Remote replicas keep themselves caught up
                # (their own follower over shared WAL storage) — the
                # front end only observes their epoch.
                handle.follower = ReplicaFollower(self._wal_dir, handle.worker)

        self.last_write_epoch = self.primary.snapshots.epoch
        self._rr_lock = threading.Lock()
        self._rr_next = 0
        # monotonic_reads floor: the newest epoch any read served
        # through this front end has observed.
        self._read_lock = threading.Lock()
        self._read_floor = 0

        # Disabled unless the cluster front end hands its bundle in
        # (the cluster is the originator; the set only records spans).
        self.obs = obs or Observability()

        self.metrics = metrics or MetricsRegistry(prefix="banks_replicaset")
        m = self.metrics
        self._queries = m.counter("queries_total", "front-end reads admitted")
        self._primary_reads = m.counter(
            "primary_reads_total",
            "reads the primary served (consistency or fallback)",
        )
        self._mutations = m.counter("mutations_total", "writes to the primary")
        self._stale_skips = m.counter(
            "replica_stale_skips_total",
            "dispatches that skipped a replica past the staleness bound",
        )
        self._excluded_events = m.counter(
            "replica_excluded_total",
            "replicas newly excluded from balancing (lag past max_lag)",
        )
        self._readmitted = m.counter(
            "replica_readmitted_total",
            "replicas re-admitted to balancing after catching up or healing",
        )
        self._deaths = m.counter(
            "replica_deaths_total", "replicas observed dead (killed or failed)"
        )
        self._failovers = m.counter(
            "replica_failovers_total",
            "queries retried elsewhere after a replica failed mid-flight",
        )
        m.gauge("replicas", "configured replica count",
                fn=lambda: len(self._handles))
        m.gauge("replicas_active", "replicas alive and inside the lag bound",
                fn=self.active_replicas)
        m.gauge("primary_epoch", "the primary's published epoch",
                fn=lambda: self.primary.snapshots.epoch)
        self._latency = m.latency(
            "latency_seconds", "front-end read latency"
        )
        for handle in self._handles:
            m.gauge(
                "replica_lag_epochs",
                "epochs a replica trails the WAL by",
                fn=lambda i=handle.index: self.lag_epochs(i),
                labels={"replica": str(handle.index)},
            )
            m.gauge(
                "replica_served_total",
                "reads served by a replica",
                fn=lambda i=handle.index: self._handles[i].served,
                labels={"replica": str(handle.index)},
            )
        self._tail_interval: Optional[float] = None

    # -- construction helpers --------------------------------------------------

    def _checkpoint_manager(self):
        """A read-side manager over the primary's checkpoint directory
        (``None`` when the spec takes no checkpoints).  The *writing*
        manager lives inside the primary engine; this one only loads."""
        spec = self.spec
        if not (spec.checkpoint_every or spec.checkpoint_path):
            return None
        from repro.ops.checkpoint import CheckpointManager

        path = spec.checkpoint_path or os.path.join(
            self._wal_dir, "checkpoints"
        )
        return CheckpointManager(path, every=0)

    def _replica_base(self) -> Tuple[int, Any]:
        """Where a (re)built replica starts: ``(epoch, database)`` from
        the newest valid checkpoint when the spec takes them — so a
        build or heal replays only the WAL tail — else epoch 0 and a
        fork of the base database (full-history replay).  Each call
        unpickles a fresh copy, so replicas never share state."""
        manager = self._checkpoint_manager()
        if manager is not None:
            loaded = manager.newest_valid()
            if loaded is not None:
                return loaded
        return 0, self._base.fork()

    def _primary_facade(self) -> IncrementalBANKS:
        if os.path.isdir(self._wal_dir):
            # Resuming an existing log: the primary recovers to the
            # exact pre-restart state before serving (replicas replay
            # the same history through their followers).  With
            # checkpointing configured, recovery starts from the
            # newest valid checkpoint and replays only the tail.
            return IncrementalBANKS.recover(
                self._base.fork,
                self._wal_dir,
                checkpoints=self._checkpoint_manager(),
            )
        return IncrementalBANKS(self._base.fork())

    def _build_worker(self, index: int) -> Any:
        if self.spec.remote_replicas:
            from repro.net.client import RemoteReplica

            return RemoteReplica(
                self.spec.remote_replicas[index],
                index=index,
                token=self.spec.remote_token,
            )
        start_epoch, database = self._replica_base()
        if self.spec.topology == "sharded_replicated":
            replica = _RouterReplica(database, self.spec)
            replica.applied_epoch = start_epoch
            return replica
        facade = IncrementalBANKS(database)
        facade.applied_epoch = start_epoch
        if self.backend == "process":
            return ProcessReplicaWorker(_ReplicaSearchTarget(facade), index)
        return _ThreadReplica(facade, self.spec)

    # -- replication state -----------------------------------------------------

    def lag_epochs(self, index: int) -> int:
        """Epochs replica ``index`` trails the WAL by."""
        handle = self._handles[index]
        return max(0, self.reader.last_epoch() - handle.applied_epoch)

    def sync(self, timeout: float = 10.0) -> int:
        """Poll every live replica up to the newest WAL epoch; returns
        the worst remaining lag."""
        target = self.reader.last_epoch()
        worst = 0
        for handle in self._handles:
            if not handle.alive or handle.follower is None:
                continue
            worst = max(worst, handle.follower.catch_up(target, timeout=timeout))
        return worst

    def start(self, interval: float = 0.1) -> "ReplicaSet":
        """Tail the WAL on background threads, one per replica."""
        self._tail_interval = interval
        for handle in self._handles:
            if handle.alive and handle.follower is not None:
                if not handle.follower.tailing:
                    handle.follower.start(interval)
        return self

    def suspend_replica(self, index: int) -> None:
        """Stop replica ``index``'s WAL tailing (it keeps serving and
        falls behind — the laggard-exclusion hook tests and drills use)."""
        follower = self._handles[index].follower
        if follower is not None:
            follower.stop()

    def resume_replica(self, index: int, timeout: float = 10.0) -> int:
        """Catch replica ``index`` back up (and resume tailing when the
        set is started); returns its remaining lag."""
        handle = self._handles[index]
        if handle.follower is None or not handle.alive:
            return self.lag_epochs(index)
        handle.follower.catch_up(self.reader.last_epoch(), timeout=timeout)
        if self._tail_interval is not None and not handle.follower.tailing:
            handle.follower.start(self._tail_interval)
        return self.lag_epochs(index)

    # -- failure and repair ----------------------------------------------------

    def kill_replica(self, index: int) -> None:
        """Take replica ``index`` down hard (crash simulation / drain)."""
        self._mark_dead(self._handles[index])

    def _mark_dead(self, handle: _ReplicaHandle) -> None:
        if handle.dead:
            return
        handle.dead = True
        self._deaths.inc()
        if handle.follower is not None:
            handle.follower.stop()
        try:
            handle.worker.kill()
        except Exception:  # pragma: no cover - defensive
            pass

    def heal(self, timeout: float = 30.0) -> int:
        """Rebuild every dead replica and re-admit each once it has
        caught up; returns how many were re-admitted.  The rebuilt
        replica starts from the newest valid checkpoint when the spec
        takes them (``checkpoint_every`` / ``checkpoint_path``) and its
        follower replays only the WAL tail past it — O(tail), not
        O(history); without checkpoints it starts from the base
        snapshot and replays the full log.

        Process-backend healing forks while the primary's threads are
        live — unlike construction, which forks first.  The child only
        touches its own pre-forked facade (no registry, pool or log
        locks), so the cloned-lock hazard the module docstring
        describes is confined to interpreter-internal locks; the
        thread backend is immune."""
        healed = 0
        for handle in self._handles:
            if handle.alive:
                continue
            with internal_construction():
                handle.worker = self._build_worker(handle.index)
            if not self.spec.remote_replicas:
                handle.follower = ReplicaFollower(self._wal_dir, handle.worker)
                handle.follower.catch_up(
                    self.reader.last_epoch(), timeout=timeout
                )
                if self._tail_interval is not None:
                    handle.follower.start(self._tail_interval)
            handle.dead = False
            handle.excluded = False
            self._readmitted.inc()
            healed += 1
        return healed

    # -- balancing -------------------------------------------------------------

    def _eligible(self, handle: _ReplicaHandle, wal_epoch: int) -> bool:
        """Side-effect-free eligibility: alive, inside the staleness
        bound.  Gauges and status pages read through this — observing
        the set must never move counters or exclusion state."""
        if not handle.alive:
            return False
        return (wal_epoch - handle.applied_epoch) <= self.spec.max_lag

    def active_replicas(self) -> int:
        wal_epoch = self.reader.last_epoch()
        return sum(1 for h in self._handles if self._eligible(h, wal_epoch))

    def _dispatchable(self, handle: _ReplicaHandle, wal_epoch: int) -> bool:
        """Eligibility as the balancer observes it: the dispatch path
        (and only it) records stale skips and the exclusion /
        re-admission transitions."""
        if not handle.alive:
            return False
        if not self._eligible(handle, wal_epoch):
            self._stale_skips.inc()
            if not handle.excluded:
                handle.excluded = True
                self._excluded_events.inc()
            return False
        if handle.excluded:
            handle.excluded = False
            self._readmitted.inc()
        return True

    def _within_bound(
        self,
        handle: _ReplicaHandle,
        wal_epoch: int,
        bound: Optional[int],
    ) -> bool:
        """Per-request staleness filter (``bounded_staleness``); a
        tighter bound than the spec's ``max_lag`` skips laggards for
        this read only — it moves no exclusion state."""
        if bound is None:
            return True
        if (wal_epoch - handle.applied_epoch) <= bound:
            return True
        self._stale_skips.inc()
        return False

    def _catch_up(self, handle: _ReplicaHandle, want_epoch: int) -> None:
        """Bounded wait for ``handle`` to reach ``want_epoch`` — via
        its local follower, or the worker's own mechanism (remote
        replicas poll their serving process)."""
        if handle.follower is not None:
            handle.follower.catch_up(want_epoch, timeout=_RYW_WAIT_SECONDS)
            return
        catch_up = getattr(handle.worker, "catch_up", None)
        if catch_up is not None:
            catch_up(want_epoch, timeout=_RYW_WAIT_SECONDS)

    def _note_read(self, epoch: int) -> None:
        """Advance the monotonic_reads floor to the epoch just served."""
        with self._read_lock:
            if epoch > self._read_floor:
                self._read_floor = epoch

    def _pick(self, eligible: Sequence[_ReplicaHandle]) -> _ReplicaHandle:
        if self.spec.balance == "least_inflight":
            return min(eligible, key=lambda h: (h.inflight, h.index))
        with self._rr_lock:
            choice = eligible[self._rr_next % len(eligible)]
            self._rr_next += 1
        return choice

    # -- the read path ---------------------------------------------------------

    def query(
        self,
        query: Any,
        max_results: int = 10,
        timeout: Optional[float] = None,
        deadline: Optional[float] = None,
        consistency: str = "eventual",
        staleness_bound: Optional[int] = None,
        trace=None,
        trace_parent=None,
        profile=None,
        **search_kwargs,
    ) -> Tuple[List[ReplicaAnswer], Optional[int], int]:
        """Serve one read; returns ``(answers, replica, epoch)`` where
        ``replica`` is ``None`` when the primary served it.

        Consistency dispatch:

        * ``eventual`` — any balancer-eligible replica;
        * ``read_your_writes`` — the chosen replica must reach the
          epoch of the last local write (bounded wait, then primary);
        * ``bounded_staleness`` — replicas trailing the WAL by more
          than ``staleness_bound`` epochs (default: the spec's
          ``max_lag``) are skipped for this request;
        * ``monotonic_reads`` — the read observes at least the newest
          epoch any earlier read through this front end observed
          (bounded wait, then primary), so successive reads never step
          backwards in time;
        * ``primary`` — straight to the authoritative copy.

        With a ``trace``, balancing records a ``replicaset.query`` span
        with one ``replicaset.dispatch`` child per attempt (failovers
        included), each covering the chosen replica's or the primary's
        execution subtree — forked replicas' spans come back in the
        response envelope and re-parent under their dispatch span.
        """
        started = time.monotonic()
        originated = False
        if trace is None and profile is None and self.obs.enabled:
            trace = self.obs.begin()
            if trace is not None:
                originated = True
                profile = SearchProfile()
        query_span = (
            trace.begin(
                "replicaset.query",
                parent_id=trace_parent,
                consistency=consistency,
            )
            if trace is not None
            else None
        )
        parent_id = query_span.span_id if query_span is not None else None
        self._queries.inc()
        try:
            if consistency == "primary":
                self._primary_reads.inc()
                return self._query_primary(
                    query, max_results, timeout, deadline, search_kwargs,
                    trace, parent_id, profile,
                )
            want_epoch = None
            bound: Optional[int] = None
            if consistency == "read_your_writes":
                want_epoch = self.last_write_epoch
            elif consistency == "monotonic_reads":
                want_epoch = self._read_floor
            elif consistency == "bounded_staleness":
                bound = (
                    self.spec.max_lag
                    if staleness_bound is None
                    else staleness_bound
                )
            attempted: Set[int] = set()
            while True:
                # One WAL probe per dispatch round, not one per replica.
                wal_epoch = self.reader.last_epoch()
                eligible = [
                    h
                    for h in self._handles
                    if h.index not in attempted
                    and self._dispatchable(h, wal_epoch)
                    and self._within_bound(h, wal_epoch, bound)
                ]
                if not eligible:
                    self._primary_reads.inc()
                    return self._query_primary(
                        query, max_results, timeout, deadline, search_kwargs,
                        trace, parent_id, profile,
                    )
                handle = self._pick(eligible)
                if want_epoch and handle.applied_epoch < want_epoch:
                    self._catch_up(handle, want_epoch)
                    if handle.applied_epoch < want_epoch:
                        # The primary trivially has the wanted epoch.
                        self._primary_reads.inc()
                        return self._query_primary(
                            query, max_results, timeout, deadline,
                            search_kwargs, trace, parent_id, profile,
                        )
                attempted.add(handle.index)
                dispatch_span = (
                    trace.begin(
                        "replicaset.dispatch",
                        parent_id=parent_id,
                        replica=handle.index,
                        lag_epochs=max(0, wal_epoch - handle.applied_epoch),
                    )
                    if trace is not None
                    else None
                )
                with handle.lock:
                    handle.inflight += 1
                try:
                    scored = handle.worker.search_scored(
                        query,
                        timeout=timeout,
                        max_results=max_results,
                        trace=trace,
                        trace_parent=(
                            dispatch_span.span_id
                            if dispatch_span is not None
                            else None
                        ),
                        profile=profile,
                        **search_kwargs,
                    )
                except (ClusterError, EngineStoppedError, ShardError):
                    # The replica itself failed (dead process, stopped
                    # engine) — never the query: mark it down and retry
                    # elsewhere.  Query errors propagate unchanged.
                    if dispatch_span is not None:
                        dispatch_span.attrs["error"] = "failover"
                        trace.end(dispatch_span)
                    self._mark_dead(handle)
                    self._failovers.inc()
                    continue
                finally:
                    with handle.lock:
                        handle.inflight -= 1
                if dispatch_span is not None:
                    dispatch_span.attrs["answers"] = len(scored)
                    trace.end(dispatch_span)
                handle.served += 1
                epoch = handle.applied_epoch
                self._note_read(epoch)
                return (self._wrap(scored, handle.index), handle.index, epoch)
        finally:
            duration = time.monotonic() - started
            self._latency.observe(duration)
            if query_span is not None:
                trace.end(query_span)
                if originated:
                    self.obs.finish(
                        trace,
                        query=query,
                        topology=self.spec.topology,
                        duration_ms=duration * 1000.0,
                        profile=profile,
                        consistency=consistency,
                    )

    def _query_primary(
        self, query, max_results, timeout, deadline, search_kwargs,
        trace=None, parent_id=None, profile=None,
    ) -> Tuple[List[ReplicaAnswer], Optional[int], int]:
        dispatch_span = (
            trace.begin(
                "replicaset.dispatch", parent_id=parent_id, target="primary"
            )
            if trace is not None
            else None
        )
        outcome = self.primary.submit(
            query,
            deadline=deadline,
            max_results=max_results,
            trace=trace,
            trace_parent=(
                dispatch_span.span_id if dispatch_span is not None else None
            ),
            profile=profile,
            **search_kwargs,
        ).result(timeout=timeout)
        if dispatch_span is not None:
            dispatch_span.attrs["answers"] = len(outcome.answers)
            trace.end(dispatch_span)
        scored = [(a.tree, a.relevance) for a in outcome.answers]
        epoch = self.primary.snapshots.epoch
        self._note_read(epoch)
        return self._wrap(scored, None), None, epoch

    def _wrap(self, scored, replica: Optional[int]) -> List[ReplicaAnswer]:
        answers = []
        for rank, entry in enumerate(scored):
            tree, relevance = entry[0], entry[1]
            shards = tuple(entry[2]) if len(entry) > 2 else ()
            answers.append(
                ReplicaAnswer(tree, relevance, rank, replica, self, shards)
            )
        return answers

    def search(
        self,
        query: Any,
        max_results: int = 10,
        timeout: Optional[float] = None,
        **search_kwargs,
    ) -> List[ReplicaAnswer]:
        """The plain engine-compatible read surface (browse app)."""
        answers, _replica, _epoch = self.query(
            query, max_results=max_results, timeout=timeout, **search_kwargs
        )
        return answers

    def search_on(
        self,
        index: int,
        query: Any,
        max_results: int = 10,
        timeout: Optional[float] = None,
        **search_kwargs,
    ) -> List[ReplicaAnswer]:
        """Probe one specific replica (parity checks, benchmarks)."""
        scored = self._handles[index].worker.search_scored(
            query, timeout=timeout, max_results=max_results, **search_kwargs
        )
        return self._wrap(scored, index)

    # -- the write path (routed to the primary) --------------------------------

    def mutate(self, fn) -> Any:
        result = self.primary.mutate(fn)
        self._note_write()
        return result

    def insert(self, table_name: str, values: Sequence[Any]) -> RID:
        rid = self.primary.mutate(lambda f: f.insert(table_name, values))
        self._note_write()
        return rid

    def delete(self, rid: RID) -> None:
        self.primary.mutate(lambda f: f.delete(rid))
        self._note_write()

    def update(self, rid: RID, changes) -> None:
        self.primary.mutate(lambda f: f.update(rid, changes))
        self._note_write()

    def _note_write(self) -> None:
        self.last_write_epoch = self.primary.snapshots.epoch
        self._mutations.inc()

    # -- introspection ---------------------------------------------------------

    @property
    def facade(self) -> Any:
        """The primary's current facade (browse pages read it)."""
        return self.primary.facade

    @property
    def database(self):
        """The primary's current database (browse pages read it)."""
        return self.facade.database

    @property
    def epoch(self) -> int:
        return self.primary.snapshots.epoch

    def node_label(self, node: RID) -> str:
        return self.facade.node_label(node)

    def replica_status(self) -> List[dict]:
        """Per-replica facts for ``/replicas`` and benchmarks
        (read-only: one WAL probe, no counter or state movement)."""
        wal_epoch = self.reader.last_epoch()
        return [
            {
                "replica": handle.index,
                "state": (
                    _DEAD
                    if not handle.alive
                    else (_EXCLUDED if handle.excluded else _ACTIVE)
                ),
                "applied_epoch": handle.applied_epoch,
                "lag_epochs": max(0, wal_epoch - handle.applied_epoch),
                "served": handle.served,
                "inflight": handle.inflight,
            }
            for handle in self._handles
        ]

    def describe(self) -> dict:
        return {
            "topology": self.spec.topology,
            "replicas": len(self._handles),
            "backend": self.backend,
            "balance": self.spec.balance,
            "max_lag": self.spec.max_lag,
            "epoch": self.epoch,
            "wal_path": self._wal_dir,
            "replica_status": self.replica_status(),
        }

    # -- lifecycle -------------------------------------------------------------

    def stop(self) -> None:
        for handle in self._handles:
            if handle.follower is not None:
                handle.follower.stop()
            try:
                handle.worker.stop()
            except Exception:  # pragma: no cover - defensive
                pass
        self.primary.stop()
        if self._owns_wal:
            import shutil

            shutil.rmtree(self._wal_dir, ignore_errors=True)

    def __enter__(self) -> "ReplicaSet":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        active = sum(1 for h in self._handles if h.alive)
        return (
            f"ReplicaSet({len(self._handles)} replicas ({active} alive), "
            f"{self.backend}, {self.spec.balance}, epoch {self.epoch})"
        )
