"""CSR-kernel acceptance benchmark: speedup with bit-exact parity.

Builds two facades over the same database — ``freeze=True`` (the
compact CSR snapshot searched through the array kernel) and
``freeze=False`` (the dict-of-dicts reference) — and runs a query
battery through both:

* **parity** — the top-``k`` answers must match *strictly*: same roots,
  same relevance scores (float equality, not tolerance), same order, on
  every query.  The kernels share one scoring arithmetic
  (:meth:`repro.core.scoring.Scorer.relevance_parts` replicates
  :meth:`~repro.core.scoring.Scorer.relevance` operation for
  operation), so any drift is a bug, not noise.
* **speedup** — ratio of median per-query latency (best of ``repeats``
  runs each, so one GC pause cannot decide the gate).  The dimensionless
  ratio transfers between machines; absolute latencies ride along as
  artifacts.
* **throughput** — answers per second for each kernel over the whole
  battery, the figure the streaming tier experiences.

``benchmarks/bench_kernel.py`` asserts the ISSUE 8 criteria on this
report (>= 2x on the bibliography battery, parity == 1.0 everywhere)
and records ``BENCH_kernel.json`` for the CI regression gate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import median
from time import perf_counter
from typing import List, Sequence, Tuple

from repro.core.banks import BANKS


@dataclass
class KernelBenchReport:
    """Outcome of one CSR-vs-reference measurement."""

    dataset: str
    k: int
    repeats: int
    parity_matched: int
    parity_total: int
    ref_latencies: List[float] = field(default_factory=list)
    csr_latencies: List[float] = field(default_factory=list)
    ref_answers: int = 0
    csr_answers: int = 0
    mismatches: List[str] = field(default_factory=list)

    @property
    def parity(self) -> float:
        return self.parity_matched / max(1, self.parity_total)

    @property
    def median_ref_seconds(self) -> float:
        return median(self.ref_latencies) if self.ref_latencies else 0.0

    @property
    def median_csr_seconds(self) -> float:
        return median(self.csr_latencies) if self.csr_latencies else 0.0

    @property
    def speedup(self) -> float:
        csr = self.median_csr_seconds
        return self.median_ref_seconds / csr if csr > 0.0 else 0.0

    @property
    def ref_answers_per_second(self) -> float:
        total = sum(self.ref_latencies)
        return self.ref_answers / total if total > 0.0 else 0.0

    @property
    def csr_answers_per_second(self) -> float:
        total = sum(self.csr_latencies)
        return self.csr_answers / total if total > 0.0 else 0.0

    def render(self) -> str:
        parity = (
            f"{self.parity_matched}/{self.parity_total} "
            f"{'exact' if self.parity == 1.0 else 'MISMATCH'}"
        )
        lines = [
            f"dataset             : {self.dataset}",
            f"queries x repeats   : {self.parity_total} x {self.repeats}",
            f"top-{self.k} parity        : {parity}",
            f"median latency ref  : {self.median_ref_seconds * 1000.0:.2f} ms",
            f"median latency csr  : {self.median_csr_seconds * 1000.0:.2f} ms",
            f"speedup             : {self.speedup:.2f}x",
            f"answers/sec ref     : {self.ref_answers_per_second:.0f}",
            f"answers/sec csr     : {self.csr_answers_per_second:.0f}",
        ]
        lines.extend(f"  mismatch: {entry}" for entry in self.mismatches)
        return "\n".join(lines)


def _top_k(banks: BANKS, query: str, k: int) -> Tuple:
    return tuple(
        (answer.root, answer.relevance)
        for answer in banks.search(query, max_results=k)
    )


def run_kernel_benchmark(
    database,
    queries: Sequence[str],
    dataset: str = "",
    k: int = 5,
    repeats: int = 3,
) -> KernelBenchReport:
    """Measure the CSR kernel against the reference on one battery.

    Args:
        database: the dataset to index (both facades build from it).
        queries: the query battery (e.g. ``DEMO_QUERY_SETS[name]``).
        dataset: label for the report.
        k: answers compared for parity and timed per query.
        repeats: timing runs per query per kernel; the best is kept.
    """
    reference = BANKS(database, freeze=False)
    frozen = BANKS(database, freeze=True)
    report = KernelBenchReport(
        dataset=dataset,
        k=k,
        repeats=repeats,
        parity_matched=0,
        parity_total=len(queries),
    )
    for query in queries:
        ref_top = _top_k(reference, query, k)
        csr_top = _top_k(frozen, query, k)
        if ref_top == csr_top:
            report.parity_matched += 1
        else:
            report.mismatches.append(
                f"{query!r}: ref={ref_top} csr={csr_top}"
            )
        report.ref_answers += len(ref_top)
        report.csr_answers += len(csr_top)
        best_ref = best_csr = float("inf")
        for _ in range(repeats):
            start = perf_counter()
            _top_k(reference, query, k)
            best_ref = min(best_ref, perf_counter() - start)
            start = perf_counter()
            _top_k(frozen, query, k)
            best_csr = min(best_csr, perf_counter() - start)
        report.ref_latencies.append(best_ref)
        report.csr_latencies.append(best_csr)
    return report
