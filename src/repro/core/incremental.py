"""Incremental maintenance of the data graph and keyword index.

BANKS assumes "the graph fits in memory" and the paper reports a ~2
minute initial load for the 100K-node DBLP graph — affordable once, but
not per update.  A deployed system (the paper's target is live Web
publishing of organisational data) needs inserts, deletes and updates
to flow into the graph without a rebuild.  This module provides that:
:class:`IncrementalBANKS` wraps the standard facade with mutation
methods that apply *deltas*:

* **insert** — add the node, its reference edges, and re-weigh the
  back edges of every sibling referrer (the new reference changes
  ``IN_R(v)`` for its targets, which is exactly the Eq. 1 backward
  weight), plus the targets' prestige;
* **delete** — remove the node and its incident edges, then re-weigh
  the former targets' remaining back edges and prestige;
* **update** — combine both for the changed references, and re-index
  the changed text.

The delta arithmetic itself lives in :mod:`repro.store.delta` — one
derivation shared with the serving layer's delta-log write path and
the shard router's delta routing.  Two capabilities build on that:

* **delta capture** — between :meth:`begin_delta_capture` and
  :meth:`end_delta_capture` every mutation also *records* its
  :class:`~repro.store.delta.Delta`; the serving layer publishes those
  records through a :class:`~repro.store.log.DeltaLog` so downstream
  consumers (shard routers, replicas) can follow along;
* **copy-on-write forking** — :meth:`fork` returns a facade sharing
  all storage structurally (graph adjacency, postings lists, table
  heaps); mutating the fork copies only what it touches.  This is
  what makes publishing a snapshot O(delta) instead of O(data);
* **replication and recovery** — :meth:`apply_delta` /
  :meth:`apply_epochs` absorb *externally derived* deltas (a replica
  following a primary's epochs), and :meth:`recover` rebuilds the
  exact pre-crash facade from a base snapshot plus a durable WAL
  (:mod:`repro.store.wal`).

Equivalence to a full rebuild — identical node set, edge set, weights,
prestige and scoring normalisers — is asserted by a hypothesis property
test over random mutation sequences (``tests/core/test_incremental.py``),
which also drives the delta-log and deep-copy snapshot paths side by
side.

Limitations: prestige mode ``"pagerank"`` is global by nature and not
maintained incrementally (construction refuses it); scoring
normalisers are recomputed lazily (an O(E) scan) on the first search
after a mutation, which is still far cheaper than a rebuild.
"""

from __future__ import annotations

from typing import Any, List, Mapping, Optional, Sequence

from repro.core.banks import BANKS
from repro.core.model import GraphStats
from repro.core.scoring import Scorer
from repro.core.weights import WeightPolicy
from repro.errors import GraphError, StoreError
from repro.relational.database import Database, RID
from repro.store.delta import (
    Delta,
    apply_graph_delta,
    derive_delete,
    derive_insert,
    derive_insert_dict,
    derive_update,
    replay_delta,
)
from repro.store.versioned import fork_graph


class IncrementalBANKS(BANKS):
    """A BANKS facade whose graph and index follow data mutations.

    Use the :meth:`insert`, :meth:`delete` and :meth:`update` methods
    instead of mutating the database directly; each applies the
    corresponding graph/index delta.  All search functionality is
    inherited unchanged.
    """

    def __init__(self, database: Database, **banks_options):
        policy = banks_options.get("weight_policy") or WeightPolicy()
        if policy.prestige == "pagerank":
            raise GraphError(
                "IncrementalBANKS does not maintain PageRank prestige "
                "incrementally; use prestige='indegree' or 'none'"
            )
        super().__init__(database, **banks_options)
        self._stats_dirty = False
        self._captured: Optional[List[Delta]] = None
        #: Newest WAL epoch this facade has absorbed (0 = base
        #: snapshot).  Only replicas and recovered facades advance it.
        self.applied_epoch = 0

    # -- stats refresh ---------------------------------------------------------

    def _refresh_stats(self) -> None:
        if not self._stats_dirty:
            return
        graph = self.graph
        min_edge = graph.min_edge_weight() if graph.num_edges else 1.0
        max_node = graph.max_node_weight() if graph.num_nodes else 1.0
        self.stats = GraphStats(
            min_edge_weight=min_edge,
            max_node_weight=max(max_node, 1.0e-12),
            num_nodes=graph.num_nodes,
            num_edges=graph.num_edges,
        )
        self.scorer = Scorer(self.stats, self.scoring)
        self._stats_dirty = False

    def search(self, *args, **kwargs):
        self._refresh_stats()
        return super().search(*args, **kwargs)

    def search_iter(self, *args, **kwargs):
        self._refresh_stats()
        return super().search_iter(*args, **kwargs)

    # -- copy-on-write forking -------------------------------------------------

    def fork(self) -> "IncrementalBANKS":
        """A facade sharing all storage structurally with this one.

        The fork sees exactly this facade's data; mutating it copies
        only the touched adjacency dicts, postings lists and table
        heaps (see :mod:`repro.store`).  By the snapshot contract the
        parent must not be mutated once forked — the serving layer
        always mutates the newest fork and publishes it.
        """
        clone = object.__new__(type(self))
        clone.__dict__.update(self.__dict__)
        clone.database = self.database.fork()
        clone.index = self.index.fork(clone.database)
        clone.graph = fork_graph(self.graph)
        clone._captured = None
        return clone

    # -- delta capture ---------------------------------------------------------

    def begin_delta_capture(self) -> None:
        """Record every subsequent mutation's delta until
        :meth:`end_delta_capture`."""
        if self._captured is not None:
            raise StoreError("delta capture already in progress")
        self._captured = []

    def end_delta_capture(self) -> List[Delta]:
        """Stop capturing; return the recorded deltas in order."""
        if self._captured is None:
            raise StoreError("no delta capture in progress")
        captured, self._captured = self._captured, None
        return captured

    # -- mutations ----------------------------------------------------------------

    def insert(self, table_name: str, values: Sequence[Any]) -> RID:
        """Insert a tuple; graph and index follow."""
        delta = derive_insert(
            self.database,
            (self.index,),
            self.graph,
            self.weight_policy,
            table_name,
            values,
        )
        self._absorb(delta)
        return delta.node

    def insert_dict(self, table_name: str, mapping: Mapping[str, Any]) -> RID:
        delta = derive_insert_dict(
            self.database,
            (self.index,),
            self.graph,
            self.weight_policy,
            table_name,
            mapping,
        )
        self._absorb(delta)
        return delta.node

    def delete(self, rid: RID) -> None:
        """Delete a tuple; graph and index follow.

        Raises :class:`repro.errors.IntegrityError` (before any graph
        change) if other tuples still reference ``rid``.
        """
        delta = derive_delete(
            self.database, (self.index,), self.graph, self.weight_policy, rid
        )
        self._absorb(delta)

    def update(self, rid: RID, changes: Mapping[str, Any]) -> None:
        """Update a tuple in place; graph and index follow."""
        delta = derive_update(
            self.database,
            (self.index,),
            self.graph,
            self.weight_policy,
            rid,
            changes,
        )
        self._absorb(delta)

    # -- replication / recovery ------------------------------------------------

    def apply_delta(self, delta: Delta) -> None:
        """Absorb one *externally derived* delta, as a replica.

        Replays the relational + index part
        (:func:`~repro.store.delta.replay_delta` verifies insert RIDs,
        so divergence from the primary fails loudly) and applies the
        graph part.  Mirrors what the native mutation methods do with
        a locally derived delta — one arithmetic, two directions.
        """
        replay_delta(self.database, (self.index,), delta)
        self._absorb(delta)

    def apply_epoch(self, epoch) -> int:
        """Absorb one published :class:`~repro.store.log.Epoch`;
        returns the deltas applied.

        Raises :class:`~repro.errors.StoreError` unless the epoch is
        exactly the next one (``applied_epoch + 1``) — a replica fed a
        gapped history (e.g. from a WAL pruned past its position) must
        rebuild, not silently skip.
        """
        if epoch.number != self.applied_epoch + 1:
            raise StoreError(
                f"replica at epoch {self.applied_epoch} cannot apply "
                f"epoch {epoch.number}; rebuild from a current snapshot"
            )
        for delta in epoch.deltas:
            self.apply_delta(delta)
        self.applied_epoch = epoch.number
        return len(epoch.deltas)

    def apply_epochs(self, epochs) -> int:
        """Absorb a sequence of epochs in order; returns the total
        deltas applied.  This is the replica surface a
        :class:`~repro.store.wal.ReplicaFollower` tails into."""
        applied = 0
        for epoch in epochs:
            applied += self.apply_epoch(epoch)
        return applied

    @classmethod
    def recover(
        cls, db_factory, wal_path, checkpoints=None, **banks_options
    ) -> "IncrementalBANKS":
        """Rebuild the exact pre-crash facade: newest checkpoint (when
        one exists) or base snapshot, plus the WAL tail.

        Args:
            db_factory: a callable returning the *base* database (the
                state before WAL epoch 1 — e.g. the deterministic demo
                generator, or ``base.fork``), or a Database to adopt.
            wal_path: the WAL directory (or an open
                :class:`~repro.store.wal.WalReader`).
            checkpoints: a checkpoint directory path or a
                :class:`~repro.ops.checkpoint.CheckpointManager`;
                recovery starts from its newest *valid* checkpoint and
                replays only the epochs after it — O(tail) instead of
                O(history).  A torn or corrupt checkpoint is skipped;
                with none usable (or ``None`` here), recovery falls
                back to the base snapshot and full replay.

        Replays every needed complete epoch in order; a torn tail from
        the crash is ignored by the reader (no partial epoch is ever
        applied), and the returned facade's :attr:`applied_epoch` says
        how far history reached.  Raises
        :class:`~repro.errors.StoreError` when the WAL was pruned past
        the chosen starting point — from a base snapshot that means
        ``first_epoch > 1``; from a checkpoint at epoch E it means
        ``first_epoch > E + 1``, which the writer's checkpoint prune
        floor exists to prevent.
        """
        from repro.store.wal import WalReader

        reader = (
            wal_path
            if isinstance(wal_path, WalReader)
            else WalReader(str(wal_path))
        )
        first = reader.first_epoch()
        if checkpoints is not None:
            from repro.ops.checkpoint import CheckpointManager

            manager = (
                checkpoints
                if isinstance(checkpoints, CheckpointManager)
                else CheckpointManager(str(checkpoints))
            )
            loaded = manager.newest_valid()
            if loaded is not None:
                epoch, database = loaded
                if first and epoch + 1 < first:
                    raise StoreError(
                        f"WAL starts at epoch {first} but the newest "
                        f"valid checkpoint covers epoch {epoch}: the "
                        f"replay tail {epoch + 1}..{first - 1} was "
                        "pruned, so the checkpoint cannot be caught up"
                    )
                facade = cls(database, **banks_options)
                facade.applied_epoch = epoch
                facade.apply_epochs(reader.entries_since(epoch))
                return facade
        if first > 1:
            raise StoreError(
                f"WAL starts at epoch {first}: epochs 1..{first - 1} were "
                "pruned, so recovery from a base snapshot cannot replay "
                "the full history"
            )
        database = db_factory() if callable(db_factory) else db_factory
        facade = cls(database, **banks_options)
        facade.apply_epochs(reader.read_all())
        return facade

    # -- delta machinery ------------------------------------------------------------

    def _absorb(self, delta: Delta) -> None:
        """Apply the graph part of a derived delta and record it when a
        capture is running (the relational + index part was applied
        during derivation)."""
        apply_graph_delta(self.graph, delta)
        self._stats_dirty = True
        if self._captured is not None:
            self._captured.append(delta)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"IncrementalBANKS({self.database.name}: "
            f"{self.graph.num_nodes} nodes, {self.graph.num_edges} edges)"
        )
