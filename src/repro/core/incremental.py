"""Incremental maintenance of the data graph and keyword index.

BANKS assumes "the graph fits in memory" and the paper reports a ~2
minute initial load for the 100K-node DBLP graph — affordable once, but
not per update.  A deployed system (the paper's target is live Web
publishing of organisational data) needs inserts, deletes and updates
to flow into the graph without a rebuild.  This module provides that:
:class:`IncrementalBANKS` wraps the standard facade with mutation
methods that apply *deltas*:

* **insert** — add the node, its reference edges, and re-weigh the
  back edges of every sibling referrer (the new reference changes
  ``IN_R(v)`` for its targets, which is exactly the Eq. 1 backward
  weight), plus the targets' prestige;
* **delete** — remove the node and its incident edges, then re-weigh
  the former targets' remaining back edges and prestige;
* **update** — combine both for the changed references, and re-index
  the changed text.

Equivalence to a full rebuild — identical node set, edge set, weights,
prestige and scoring normalisers — is asserted by a hypothesis property
test over random mutation sequences (``tests/core/test_incremental.py``).

Limitations: prestige mode ``"pagerank"`` is global by nature and not
maintained incrementally (construction refuses it); scoring
normalisers are recomputed lazily (an O(E) scan) on the first search
after a mutation, which is still far cheaper than a rebuild.
"""

from __future__ import annotations

from typing import Any, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core.banks import BANKS
from repro.core.model import GraphStats
from repro.core.scoring import Scorer
from repro.core.weights import WeightPolicy
from repro.errors import GraphError
from repro.relational.database import Database, RID

#: A directed node pair whose edge weight must be re-derived.
_Pair = Tuple[RID, RID]


class IncrementalBANKS(BANKS):
    """A BANKS facade whose graph and index follow data mutations.

    Use the :meth:`insert`, :meth:`delete` and :meth:`update` methods
    instead of mutating the database directly; each applies the
    corresponding graph/index delta.  All search functionality is
    inherited unchanged.
    """

    def __init__(self, database: Database, **banks_options):
        policy = banks_options.get("weight_policy") or WeightPolicy()
        if policy.prestige == "pagerank":
            raise GraphError(
                "IncrementalBANKS does not maintain PageRank prestige "
                "incrementally; use prestige='indegree' or 'none'"
            )
        super().__init__(database, **banks_options)
        self._stats_dirty = False

    # -- stats refresh ---------------------------------------------------------

    def _refresh_stats(self) -> None:
        if not self._stats_dirty:
            return
        graph = self.graph
        min_edge = graph.min_edge_weight() if graph.num_edges else 1.0
        max_node = graph.max_node_weight() if graph.num_nodes else 1.0
        self.stats = GraphStats(
            min_edge_weight=min_edge,
            max_node_weight=max(max_node, 1.0e-12),
            num_nodes=graph.num_nodes,
            num_edges=graph.num_edges,
        )
        self.scorer = Scorer(self.stats, self.scoring)
        self._stats_dirty = False

    def search(self, *args, **kwargs):
        self._refresh_stats()
        return super().search(*args, **kwargs)

    # -- mutations ----------------------------------------------------------------

    def insert(self, table_name: str, values: Sequence[Any]) -> RID:
        """Insert a tuple; graph and index follow."""
        rid = self.database.insert(table_name, values)
        self._apply_insert(rid)
        return rid

    def insert_dict(self, table_name: str, mapping: Mapping[str, Any]) -> RID:
        rid = self.database.insert_dict(table_name, mapping)
        self._apply_insert(rid)
        return rid

    def delete(self, rid: RID) -> None:
        """Delete a tuple; graph and index follow.

        Raises :class:`repro.errors.IntegrityError` (before any graph
        change) if other tuples still reference ``rid``.
        """
        targets = [target for _fk, target in self.database.references_of(rid)]
        self.index.remove_row(rid[0], rid[1])
        try:
            self.database.delete(rid)
        except Exception:
            self.index.add_row(rid[0], rid[1])  # restore postings
            raise
        self.graph.remove_node(rid)
        pairs: Set[_Pair] = set()
        for target in targets:
            pairs.update(self._referrer_pairs(target))
        self._recompute_pairs(pairs)
        self._recompute_prestige(set(targets))
        self._stats_dirty = True

    def update(self, rid: RID, changes: Mapping[str, Any]) -> None:
        """Update a tuple in place; graph and index follow."""
        old_targets = {
            target for _fk, target in self.database.references_of(rid)
        }
        self.index.remove_row(rid[0], rid[1])
        try:
            self.database.update(rid, changes)
        except Exception:
            self.index.add_row(rid[0], rid[1])
            raise
        self.index.add_row(rid[0], rid[1])
        new_targets = {
            target for _fk, target in self.database.references_of(rid)
        }
        touched = old_targets | new_targets
        pairs: Set[_Pair] = set()
        for target in touched:
            pairs.add((rid, target))
            pairs.add((target, rid))
            pairs.update(self._referrer_pairs(target))
        self._recompute_pairs(pairs)
        self._recompute_prestige(touched | {rid})
        self._stats_dirty = True

    # -- delta machinery ------------------------------------------------------------

    def _apply_insert(self, rid: RID) -> None:
        self.graph.add_node(rid)
        self.index.add_row(rid[0], rid[1])
        targets = {
            target for _fk, target in self.database.references_of(rid)
        }
        pairs: Set[_Pair] = set()
        for target in targets:
            pairs.add((rid, target))
            pairs.add((target, rid))
            pairs.update(self._referrer_pairs(target))
        self._recompute_pairs(pairs)
        self._recompute_prestige(targets | {rid})
        self._stats_dirty = True

    def _referrer_pairs(self, target: RID) -> Set[_Pair]:
        """Both directed pairs between ``target`` and each tuple that
        currently references it (their Eq. 1 weights depend on the
        target's per-relation indegree, which just changed)."""
        pairs: Set[_Pair] = set()
        for _fk, referrer in self.database.referencing(target):
            if referrer != target:
                pairs.add((target, referrer))
                pairs.add((referrer, target))
        return pairs

    def _recompute_pairs(self, pairs: Set[_Pair]) -> None:
        """Re-derive each directed pair's edge weight from the database,
        replacing / removing the graph edge to match."""
        for source, target in pairs:
            if source == target:
                continue  # the graph model has no self loops
            if not (self.graph.has_node(source) and self.graph.has_node(target)):
                continue
            weight = self._pair_weight(source, target)
            if weight is None:
                if self.graph.has_edge(source, target):
                    self.graph.remove_edge(source, target)
            else:
                self.graph.add_edge(source, target, weight)

    def _pair_weight(self, source: RID, target: RID) -> Optional[float]:
        """The Eq. 1 weight the directed edge ``source -> target`` should
        carry right now, or ``None`` when no reference justifies it.

        Candidates come from forward references ``source -> target`` and
        back edges of references ``target -> source``; multiple
        candidates merge through the policy rule (min / parallel), in
        any order — both rules are associative and commutative, so the
        result matches full construction.
        """
        policy = self.weight_policy
        candidates: List[float] = []
        for fk, referenced in self.database.references_of(source):
            if referenced == target:
                candidates.append(
                    policy.forward_similarity(fk.source_table, fk.target_table)
                )
        for fk, referenced in self.database.references_of(target):
            if referenced == source:
                candidates.append(
                    policy.backward_weight(
                        fk.source_table,
                        fk.target_table,
                        self.database.indegree_from(source, fk.source_table),
                    )
                )
        if not candidates:
            return None
        weight = candidates[0]
        for candidate in candidates[1:]:
            weight = policy.merge(weight, candidate)
        return weight

    def _recompute_prestige(self, nodes: Set[RID]) -> None:
        if self.weight_policy.prestige == "none":
            for node in nodes:
                if self.graph.has_node(node):
                    self.graph.set_node_weight(node, 1.0)
            return
        for node in nodes:
            if self.graph.has_node(node):
                self.graph.set_node_weight(
                    node, float(self.database.indegree(node))
                )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"IncrementalBANKS({self.database.name}: "
            f"{self.graph.num_nodes} nodes, {self.graph.num_edges} edges)"
        )
