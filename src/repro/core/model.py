"""Build the BANKS data graph from a relational database (Sec. 2).

Every tuple becomes a node ``(table, rid)``; every foreign-key reference
``u -> v`` contributes

* a forward edge ``u -> v`` weighted ``s(R(u), R(v))``, and
* a backward edge ``v -> u`` weighted
  ``s_b(R(u), R(v)) * IN_{R(u)}(v)``,

where ``IN_{R(u)}(v)`` is the number of tuples of ``R(u)`` referencing
``v``.  When a directed pair ``(a, b)`` receives candidates from both a
forward reference and a backward reference (mutually referencing
relations), Eq. 1 merges them through the policy's rule (min by
default).  Node weights carry prestige (indegree or PageRank).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.graph.digraph import DiGraph
from repro.graph.pagerank import pagerank
from repro.core.weights import WeightPolicy
from repro.relational.database import Database, RID


def link_tables(database: Database) -> frozenset:
    """Tables that are pure relationship tables (every column is the
    source column of some foreign key), e.g. ``writes`` and ``cites``.

    The paper suggests restricting information nodes: "we may exclude
    the nodes corresponding to the tuples from a specified set of
    relations, such as Writes, which we believe are not meaningful root
    nodes".  This heuristic computes that set automatically from the
    catalog; :class:`repro.core.banks.BANKS` applies it by default.
    """
    excluded = set()
    for schema in database.schema.tables():
        if not schema.foreign_keys:
            continue
        fk_columns = set()
        for fk in schema.foreign_keys:
            fk_columns.update(fk.source_columns)
        if fk_columns == set(schema.column_names):
            excluded.add(schema.name)
    return frozenset(excluded)


@dataclass(frozen=True)
class GraphStats:
    """Normalisers the scorer needs, computed once per graph.

    Attributes:
        min_edge_weight: the paper's edge-score normaliser (``w_min``).
        max_node_weight: the paper's node-score normaliser (``w_max``).
        num_nodes: node count (reporting).
        num_edges: directed edge count, forward + backward (reporting).
    """

    min_edge_weight: float
    max_node_weight: float
    num_nodes: int
    num_edges: int


def build_data_graph(
    database: Database, policy: Optional[WeightPolicy] = None
) -> Tuple[DiGraph, GraphStats]:
    """Construct the data graph and its scoring normalisers.

    Args:
        database: a loaded relational database (FKs resolved).
        policy: weighting choices; defaults to the paper's defaults
            (all similarities 1, Eq. 1 ``min`` merge, indegree prestige).

    Returns:
        ``(graph, stats)`` where graph nodes are ``(table, rid)`` pairs.
    """
    if policy is None:
        policy = WeightPolicy()
    graph = DiGraph()

    # Nodes first so isolated tuples are still searchable.
    for table in database.tables():
        table_name = table.schema.name
        for rid in table.rids():
            graph.add_node((table_name, rid))

    # Candidate weights per directed node pair; merged via Eq. 1 when a
    # pair receives both a forward and a backward candidate.
    candidates: Dict[Tuple[RID, RID], float] = {}

    def offer(source: RID, target: RID, weight: float) -> None:
        existing = candidates.get((source, target))
        if existing is None:
            candidates[(source, target)] = weight
        else:
            candidates[(source, target)] = policy.merge(existing, weight)

    # ``s(R1, R2)``/``s_b(R1, R2)`` depend only on the relation pair and
    # ``IN_{R(u)}(v)`` only on (target, referencing table), so both are
    # computed once per distinct key instead of once per referencing row
    # — on dense reference graphs (many tuples citing one) the repeated
    # indegree scan was quadratic in the popular target's indegree.
    pair_cache: Dict[Tuple[str, str], Tuple[float, float]] = {}
    backward_cache: Dict[Tuple[RID, str], float] = {}
    scaling = policy.backward_indegree_scaling
    for table in database.tables():
        table_name = table.schema.name
        for source, fk, target in database.resolved_references(table_name):
            if source == target:
                # A tuple referencing itself (e.g. an employee who is
                # their own manager) yields no edge: the graph model
                # has no self loops.
                continue
            pair = (fk.source_table, fk.target_table)
            similarities = pair_cache.get(pair)
            if similarities is None:
                similarities = (
                    policy.forward_similarity(*pair),
                    policy.backward_similarity(*pair),
                )
                pair_cache[pair] = similarities
            offer(source, target, similarities[0])
            cache_key = (target, fk.source_table)
            backward = backward_cache.get(cache_key)
            if backward is None:
                backward = similarities[1]
                if scaling:
                    backward *= max(
                        1, database.indegree_from(target, fk.source_table)
                    )
                backward_cache[cache_key] = backward
            offer(target, source, backward)

    for (source, target), weight in candidates.items():
        graph.add_edge(source, target, weight)

    _assign_prestige(graph, database, policy)

    min_edge = graph.min_edge_weight() if graph.num_edges else 1.0
    max_node = graph.max_node_weight() if graph.num_nodes else 1.0
    stats = GraphStats(
        min_edge_weight=min_edge,
        max_node_weight=max(max_node, 1.0e-12),
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
    )
    return graph, stats


def _assign_prestige(
    graph: DiGraph, database: Database, policy: WeightPolicy
) -> None:
    """Set node weights according to the policy's prestige mode."""
    if policy.prestige == "none":
        for node in graph.nodes():
            graph.set_node_weight(node, 1.0)
        return

    if policy.prestige == "indegree":
        # Reference indegree from the database, not graph indegree: the
        # graph's back edges would make every degree symmetric.
        for node in graph.nodes():
            graph.set_node_weight(node, float(database.indegree(node)))
        return

    # PageRank over the pure reference structure (forward edges only).
    forward = DiGraph()
    for node in graph.nodes():
        forward.add_node(node)
    for table in database.tables():
        table_name = table.schema.name
        for source, _fk, target in database.resolved_references(table_name):
            if source != target:
                forward.add_edge(source, target, 1.0)
    scores = pagerank(forward, damping=policy.pagerank_damping)
    for node, score in scores.items():
        graph.set_node_weight(node, score)
