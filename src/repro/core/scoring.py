"""Relevance scoring of answer trees (paper Sec. 2.3).

The paper defines three two-valued options — log scaling of edge scores
(*EdgeLog*), log scaling of node scores (*NodeLog*), and the combination
mode (additive / multiplicative) — times a mixing factor ``lambda``:

* ``escore_norm(e) = w(e)/w_min``, or ``log2(1 + w(e)/w_min)`` with
  EdgeLog;
* ``EScore = 1 / (1 + sum_e escore_norm(e))`` — lower relevance for
  larger trees; an answer that is a single node has ``EScore = 1``;
* ``nscore_norm(v) = w(v)/w_max``, or ``log2(1 + w(v)/w_max)`` with
  NodeLog — both scale-free quantities in [0, 1];
* ``NScore`` = the average of ``nscore_norm`` over the root and the
  keyword-matching leaves, a leaf counted once per search term it
  matches;
* combination: additive ``(1-lambda)*EScore + lambda*NScore`` or
  multiplicative ``EScore^(1-lambda) * NScore^lambda`` (the weighted
  geometric mean; at ``lambda=1`` both ignore edge weights and at
  ``lambda=0`` both ignore node weights, matching the paper's reading of
  the endpoints).

Of the eight combinations the paper discards the three that mix log
scaling with multiplication ("these scores tended to become quite
small"); :func:`ScoringConfig.paper_grid` enumerates the remaining five
the way the evaluation does.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from repro.errors import QueryError
from repro.core.answer import AnswerTree
from repro.core.model import GraphStats
from repro.graph.digraph import DiGraph

_COMBINATIONS = ("additive", "multiplicative")


@dataclass(frozen=True)
class ScoringConfig:
    """One point in the paper's scoring-parameter space.

    Attributes:
        lambda_weight: node-score weight ``lambda`` in [0, 1]; the
            paper's best setting is 0.2.
        edge_log: log-scale edge scores (paper: important, best on).
        node_log: log-scale node scores (paper: no observed difference).
        combination: ``"additive"`` or ``"multiplicative"``.
    """

    lambda_weight: float = 0.2
    edge_log: bool = True
    node_log: bool = False
    combination: str = "additive"

    def __post_init__(self) -> None:
        if not 0.0 <= self.lambda_weight <= 1.0:
            raise QueryError(
                f"lambda must be in [0, 1], got {self.lambda_weight}"
            )
        if self.combination not in _COMBINATIONS:
            raise QueryError(
                f"combination must be one of {_COMBINATIONS}, "
                f"got {self.combination!r}"
            )

    @staticmethod
    def paper_grid() -> List["ScoringConfig"]:
        """The five retained option combinations, at the paper's default
        lambda; sweep lambda separately (see :mod:`repro.eval.sweep`)."""
        grid: List[ScoringConfig] = []
        for edge_log in (False, True):
            for node_log in (False, True):
                for combination in _COMBINATIONS:
                    if combination == "multiplicative" and (edge_log or node_log):
                        continue  # discarded by the paper
                    grid.append(
                        ScoringConfig(
                            edge_log=edge_log,
                            node_log=node_log,
                            combination=combination,
                        )
                    )
        return grid


class Scorer:
    """Computes relevance scores for answer trees against one graph."""

    def __init__(self, stats: GraphStats, config: Optional[ScoringConfig] = None):
        self.stats = stats
        self.config = config or ScoringConfig()
        if stats.min_edge_weight <= 0:
            raise QueryError("min edge weight must be positive for scoring")

    # -- components -----------------------------------------------------------

    def edge_score_norm(self, weight: float) -> float:
        scaled = weight / self.stats.min_edge_weight
        if self.config.edge_log:
            return math.log2(1.0 + scaled)
        return scaled

    def node_score_norm(self, weight: float) -> float:
        scaled = weight / self.stats.max_node_weight
        scaled = min(1.0, max(0.0, scaled))
        if self.config.node_log:
            return math.log2(1.0 + scaled)
        return scaled

    def edge_score(self, tree: AnswerTree) -> float:
        """Overall tree edge score in (0, 1].

        Edges are summed in sorted order: ``tree.edges`` is a frozenset
        whose iteration order follows string-hash randomisation, and
        float addition is not associative — summing in hash order makes
        relevance differ in the last ulp between processes, which is
        enough to flip exact-score ties in every ranking heap built on
        top.  Sorted summation makes a tree's score a pure function of
        the tree.
        """
        total = sum(
            self.edge_score_norm(tree.edge_weight(source, target))
            for source, target in sorted(tree.edges, key=repr)
        )
        return 1.0 / (1.0 + total)

    def node_score(self, tree: AnswerTree, graph: DiGraph) -> float:
        """Average node score over root + matched leaves, in [0, 1]."""
        scores = [self.node_score_norm(graph.node_weight(tree.root))]
        for keyword_node in tree.keyword_nodes:
            if keyword_node is None:
                # Uncovered term (partial answers): contributes zero,
                # penalising incomplete answers.
                scores.append(0.0)
            else:
                scores.append(
                    self.node_score_norm(graph.node_weight(keyword_node))
                )
        return sum(scores) / len(scores)

    # -- combined -----------------------------------------------------------------

    def relevance(self, tree: AnswerTree, graph: DiGraph) -> float:
        """Overall relevance in [0, 1]."""
        edge_score = self.edge_score(tree)
        node_score = self.node_score(tree, graph)
        lam = self.config.lambda_weight
        if self.config.combination == "additive":
            return (1.0 - lam) * edge_score + lam * node_score
        # Weighted geometric mean; 0^0 == 1 by convention so lambda
        # endpoints behave like the additive ones.
        edge_part = edge_score ** (1.0 - lam) if lam < 1.0 else 1.0
        node_part = node_score**lam if lam > 0.0 else 1.0
        return edge_part * node_part

    def relevance_parts(
        self, edge_total: float, node_norms: List[float]
    ) -> float:
        """Relevance from precomputed components — the CSR kernel's
        entry point.

        ``edge_total`` is the sum of :meth:`edge_score_norm` over the
        tree's edges *in sorted order* and ``node_norms`` the
        :meth:`node_score_norm` list for root + keyword leaves (0.0 for
        uncovered terms).  The arithmetic below replicates
        :meth:`edge_score` / :meth:`node_score` / :meth:`relevance`
        operation for operation, so a tree scored through either path
        produces the identical float — the bit-exactness the kernel
        parity gate depends on.
        """
        edge_score = 1.0 / (1.0 + edge_total)
        node_score = sum(node_norms) / len(node_norms)
        lam = self.config.lambda_weight
        if self.config.combination == "additive":
            return (1.0 - lam) * edge_score + lam * node_score
        edge_part = edge_score ** (1.0 - lam) if lam < 1.0 else 1.0
        node_part = node_score**lam if lam > 0.0 else 1.0
        return edge_part * node_part

    def with_config(self, config: ScoringConfig) -> "Scorer":
        return Scorer(self.stats, config)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Scorer({self.config})"
