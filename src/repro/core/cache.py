"""Query result caching for interactive front ends.

The paper's front end is a Web application; repeated queries (reloads,
back buttons, shared links) are the common case, and graph search is
the expensive step.  :class:`ResultCache` is a small LRU keyed by the
*semantics* of a search — normalised query text plus every knob that
affects ranking — and :class:`CachedBanks` wires it into the facade.

The cache is deliberately conservative: any knob it does not recognise
bypasses caching rather than risking a stale or mismatched entry, and
a single :meth:`ResultCache.clear` drops everything after data changes
(the incremental layer calls it on every mutation when composed).

The cache is thread-safe: the serving engine
(:mod:`repro.serve.engine`) hits one :class:`CachedBanks` from a whole
worker pool, so every read/write of the LRU order and the hit/miss
counters happens under one lock.  ``clear()`` during an in-flight
computation is safe — the late ``put`` simply re-populates the entry.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable, List, Optional, Tuple, Union

from repro.core.banks import BANKS, Answer
from repro.core.query import ParsedQuery, parse_query
from repro.core.scoring import ScoringConfig
from repro.errors import QueryError


@dataclass
class CacheStats:
    """Hit/miss counters (monotone; ratios derived)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        if not self.requests:
            return 0.0
        return self.hits / self.requests


class ResultCache:
    """A bounded LRU mapping hashable keys to answer lists.

    Safe for concurrent use from multiple threads: lookups, inserts,
    eviction and the stats counters are serialised by an internal lock.
    """

    def __init__(self, capacity: int = 128):
        if capacity < 1:
            raise QueryError("cache capacity must be >= 1")
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, object]" = OrderedDict()
        self._lock = threading.Lock()
        self.stats = CacheStats()

    def get(self, key: Hashable) -> Optional[object]:
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return self._entries[key]
            self.stats.misses += 1
            return None

    def put(self, key: Hashable, value: object) -> None:
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            if len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __deepcopy__(self, memo) -> "ResultCache":
        """Deep copies start empty.

        The snapshot store (:mod:`repro.serve.snapshot`) deep-copies a
        facade precisely because the data is about to change, so every
        cached answer list would be stale — and locks cannot be copied
        anyway.
        """
        return ResultCache(self.capacity)


def _query_key(query: Union[str, ParsedQuery]) -> Tuple:
    parsed = parse_query(query) if isinstance(query, str) else query
    return tuple(
        (term.kind, term.term, term.attribute, term.number)
        for term in parsed.terms
    )


def _scoring_key(scoring: Optional[ScoringConfig]) -> Tuple:
    if scoring is None:
        return ()
    return (
        scoring.lambda_weight,
        scoring.edge_log,
        scoring.node_log,
        scoring.combination,
    )


class CachedBanks(BANKS):
    """A BANKS facade with an LRU result cache in front of search.

    Identical queries (same terms after normalisation, same result
    count, same scoring override) return the cached answer list;
    anything else falls through.  Call :meth:`invalidate` after data
    changes.
    """

    def __init__(self, database, cache_capacity: int = 128, **banks_options):
        super().__init__(database, **banks_options)
        self.cache = ResultCache(cache_capacity)

    def search(
        self,
        query,
        max_results=None,
        scoring=None,
        bidirectional=False,
        trace=None,
        trace_parent=None,
        profile=None,
        on_answer=None,
        **config_overrides,
    ) -> List[Answer]:
        if config_overrides:
            # Unrecognised knobs: bypass rather than over-key the cache.
            return super().search(
                query,
                max_results=max_results,
                scoring=scoring,
                bidirectional=bidirectional,
                trace=trace,
                trace_parent=trace_parent,
                profile=profile,
                on_answer=on_answer,
                **config_overrides,
            )
        # Tracing/profiling does not affect ranking, so it stays out of
        # the cache key: traced and untraced requests share entries.
        key = (
            _query_key(query),
            max_results,
            _scoring_key(scoring),
            bidirectional,
        )
        cached = self.cache.get(key)
        if cached is not None:
            if trace is not None:
                with trace.span(
                    "search.cache", parent_id=trace_parent, hit=True
                ) as span:
                    span.attrs["answers"] = len(cached)
            if on_answer is not None:
                # A hit still streams: replay the cached list through
                # the callback so SSE consumers see the same events.
                for answer in cached:
                    on_answer(answer)
            return list(cached)
        answers = super().search(
            query,
            max_results=max_results,
            scoring=scoring,
            bidirectional=bidirectional,
            trace=trace,
            trace_parent=trace_parent,
            profile=profile,
            on_answer=on_answer,
        )
        self.cache.put(key, tuple(answers))
        return answers

    def invalidate(self) -> None:
        """Drop every cached result (call after mutating the data)."""
        self.cache.clear()
