"""Answer trees: rooted directed connection trees (paper Sec. 2.3).

An answer to a keyword query is a rooted directed tree — the root is the
*information node*, the paths lead to nodes matching each keyword.  This
module owns:

* incremental construction from root-to-keyword paths (grafting each new
  path onto the existing tree at the first shared node, which keeps the
  union a tree);
* structural validation (every test asserts these invariants);
* the *canonical undirected form* used for duplicate detection — the
  paper treats two trees as duplicates when "their undirected versions
  are same";
* the single-child-root test ("trees whose root has only one child are
  discarded, since the tree formed by removing the root node would also
  have been generated, and would be a better answer").
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, List, Mapping, Optional, Sequence, Tuple

from repro.errors import GraphError
from repro.graph.digraph import DiGraph

Node = Hashable
Edge = Tuple[Node, Node]


class AnswerTree:
    """A rooted directed tree over data-graph nodes.

    Attributes:
        root: the information node.
        parent: child -> parent map (the root has no entry).
        keyword_nodes: per search term, the node that matched it
            (``None`` for terms the answer does not cover, when partial
            answers are allowed).
        weight: total weight of the tree's directed edges.
    """

    __slots__ = ("root", "parent", "keyword_nodes", "weight", "_edge_weights")

    def __init__(
        self,
        root: Node,
        parent: Dict[Node, Node],
        keyword_nodes: Tuple[Optional[Node], ...],
        edge_weights: Dict[Edge, float],
    ):
        self.root = root
        self.parent = parent
        self.keyword_nodes = keyword_nodes
        self._edge_weights = edge_weights
        self.weight = sum(edge_weights.values())

    # -- construction -------------------------------------------------------

    @classmethod
    def from_paths(
        cls,
        graph: DiGraph,
        root: Node,
        paths: Sequence[Optional[Sequence[Node]]],
    ) -> "AnswerTree":
        """Build a tree from one root-to-keyword path per search term.

        Each path must start at ``root`` and end at the matched node.
        Paths are grafted in order: edges are added walking from the
        keyword end toward the root, stopping at the first node already
        in the tree, so every node keeps a single parent.  ``None``
        entries mean "term not covered" (partial answers).

        Raises:
            GraphError: if a path does not start at the root or uses an
                edge absent from ``graph``.
        """
        parent: Dict[Node, Node] = {}
        in_tree = {root}
        edge_weights: Dict[Edge, float] = {}
        keyword_nodes: List[Optional[Node]] = []

        for path in paths:
            if path is None:
                keyword_nodes.append(None)
                continue
            if not path or path[0] != root:
                raise GraphError(
                    f"path must start at the root {root!r}: {path!r}"
                )
            keyword_nodes.append(path[-1])
            # Find the deepest position whose node is already in the tree;
            # edges beyond it are new.
            graft = 0
            for position in range(len(path) - 1, -1, -1):
                if path[position] in in_tree:
                    graft = position
                    break
            for position in range(graft, len(path) - 1):
                source, target = path[position], path[position + 1]
                if target in in_tree:
                    # The path re-enters the tree: illegal graft that
                    # would give ``target`` two parents.
                    raise GraphError(
                        f"path re-enters the tree at {target!r}"
                    )
                parent[target] = source
                in_tree.add(target)
                edge_weights[(source, target)] = graph.edge_weight(
                    source, target
                )

        return cls(root, parent, tuple(keyword_nodes), edge_weights)

    # -- structure ------------------------------------------------------------

    @property
    def nodes(self) -> FrozenSet[Node]:
        return frozenset(self.parent) | {self.root}

    @property
    def edges(self) -> FrozenSet[Edge]:
        """Directed edges, each pointing away from the root."""
        return frozenset(
            (parent, child) for child, parent in self.parent.items()
        )

    def edge_weight(self, source: Node, target: Node) -> float:
        return self._edge_weights[(source, target)]

    def children(self, node: Node) -> List[Node]:
        return [child for child, parent in self.parent.items() if parent == node]

    def root_child_count(self) -> int:
        """Number of children of the root (the discard-rule quantity)."""
        return sum(1 for parent in self.parent.values() if parent == self.root)

    def covered_terms(self) -> int:
        return sum(1 for node in self.keyword_nodes if node is not None)

    def size(self) -> int:
        """Node count."""
        return len(self.parent) + 1

    # -- invariants -------------------------------------------------------------

    def validate(self) -> None:
        """Assert tree-ness; raises :class:`GraphError` on violation.

        Checks: single root, acyclic parent chains all reaching the
        root, and every covered keyword node present in the tree.
        """
        nodes = self.nodes
        for node in self.parent:
            seen = set()
            current: Optional[Node] = node
            while current is not None and current != self.root:
                if current in seen:
                    raise GraphError(f"cycle through {current!r}")
                seen.add(current)
                current = self.parent.get(current)
                if current is None:
                    raise GraphError(
                        f"node {node!r} does not reach the root"
                    )
        for keyword_node in self.keyword_nodes:
            if keyword_node is not None and keyword_node not in nodes:
                raise GraphError(
                    f"keyword node {keyword_node!r} missing from tree"
                )

    # -- duplicate detection ------------------------------------------------------

    def undirected_key(self) -> FrozenSet:
        """Canonical form ignoring edge direction and root choice.

        Two answers are duplicates when their undirected versions
        coincide; the key is the node set plus the set of undirected
        edges (a single-node tree is keyed by its node alone).
        """
        undirected_edges = frozenset(
            frozenset((source, target)) for source, target in self.edges
        )
        return frozenset((self.nodes, undirected_edges))

    # -- rendering ----------------------------------------------------------------

    def render_indented(
        self, label: Optional[Mapping[Node, str]] = None
    ) -> str:
        """Indented textual rendering in the style of the paper's Fig. 2.

        Keyword-matching nodes are marked with ``*`` (the paper uses
        colour for the same purpose).
        """
        matched = {node for node in self.keyword_nodes if node is not None}

        def name_of(node: Node) -> str:
            if label and node in label:
                return label[node]
            return repr(node)

        lines: List[str] = []

        def walk(node: Node, depth: int) -> None:
            marker = "*" if node in matched else " "
            lines.append(f"{'  ' * depth}{marker} {name_of(node)}")
            for child in sorted(self.children(node), key=repr):
                walk(child, depth + 1)

        walk(self.root, 0)
        return "\n".join(lines)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AnswerTree):
            return NotImplemented
        return (
            self.root == other.root
            and self.parent == other.parent
            and self.keyword_nodes == other.keyword_nodes
        )

    def __hash__(self) -> int:
        return hash((self.root, frozenset(self.parent.items())))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AnswerTree(root={self.root!r}, nodes={self.size()}, "
            f"weight={self.weight:.3f})"
        )
