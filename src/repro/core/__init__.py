"""The paper's primary contribution: keyword search over the data graph.

* :mod:`repro.core.weights` — edge-weight policy (similarities, Eq. 1
  merge rule) and node prestige;
* :mod:`repro.core.model` — turns a relational database into the BANKS
  data graph (forward + backward edges);
* :mod:`repro.core.answer` — answer trees (rooted connection trees) and
  their canonical undirected form for duplicate detection;
* :mod:`repro.core.scoring` — the eight edge/node/combination scoring
  variants of Sec. 2.3;
* :mod:`repro.core.search` — the backward expanding search of Fig. 3;
* :mod:`repro.core.bidirectional` — the Sec. 7 optimisation (search
  forward from selective keywords);
* :mod:`repro.core.query` — query-string parsing (keywords,
  ``attribute:keyword``, ``approx(N)``);
* :mod:`repro.core.summarize` — grouping answers by tree structure;
* :mod:`repro.core.banks` — the :class:`~repro.core.banks.BANKS` facade
  tying everything together.
"""

from repro.core.answer import AnswerTree
from repro.core.banks import BANKS, Answer
from repro.core.model import GraphStats, build_data_graph
from repro.core.query import ParsedQuery, QueryTerm, parse_query
from repro.core.scoring import Scorer, ScoringConfig
from repro.core.search import ScoredAnswer, SearchConfig, backward_expanding_search
from repro.core.summarize import summarize_answers
from repro.core.weights import WeightPolicy

__all__ = [
    "Answer",
    "AnswerTree",
    "BANKS",
    "GraphStats",
    "ParsedQuery",
    "QueryTerm",
    "ScoredAnswer",
    "Scorer",
    "ScoringConfig",
    "SearchConfig",
    "WeightPolicy",
    "backward_expanding_search",
    "build_data_graph",
    "parse_query",
    "summarize_answers",
]
