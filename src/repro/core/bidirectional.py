"""Bidirectional search from selective keywords (paper Sec. 7, implemented).

The paper observes that backward search is slow when a keyword matches
very many nodes (metadata keywords are the worst case) and plans to
"speed up such queries by not performing backward search from large
numbers of nodes, and instead searching forwards from probable
information nodes corresponding to more selective keywords".

This module implements that strategy:

1. split terms into *selective* (|S_i| <= ``selectivity_threshold``) and
   *broad* groups; if every term is broad, fall back to plain backward
   search (nothing to be clever about);
2. run backward expanding iterators only from the selective groups'
   keyword nodes, discovering candidate information nodes in increasing
   distance order;
3. for each candidate root, run a *forward* Dijkstra (bounded by
   ``max_distance``) to find the nearest member of every remaining broad
   group; a candidate that reaches all of them yields an answer tree;
4. answers flow through the same scoring/dedup machinery, buffered in a
   relevance-ordered heap and returned best-first.

The result set matches backward search closely (both build
union-of-shortest-path trees) while visiting far fewer nodes when broad
terms would otherwise spawn thousands of iterators — the effect
``benchmarks/bench_bidirectional.py`` measures.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Dict, FrozenSet, Hashable, List, Optional, Sequence, Set, Tuple

from repro.errors import EmptyQueryError
from repro.core.answer import AnswerTree
from repro.core.scoring import Scorer
from repro.core.search import (
    ScoredAnswer,
    SearchConfig,
    _discard_single_child_root,
    backward_expanding_search,
)
from repro.graph.csr import dijkstra_for
from repro.graph.digraph import DiGraph
from repro.graph.dijkstra import DijkstraIterator

Node = Hashable


def bidirectional_search(
    graph: DiGraph,
    keyword_node_sets: Sequence[Set[Node]],
    scorer: Scorer,
    config: Optional[SearchConfig] = None,
    selectivity_threshold: int = 10,
    candidate_budget: int = 2000,
    profile=None,
) -> List[ScoredAnswer]:
    """Answer a query, expanding backward only from selective terms.

    Args:
        graph: the data graph.
        keyword_node_sets: per-term node sets.
        scorer: relevance scorer.
        config: search knobs (``max_results`` etc.).
        selectivity_threshold: a term is *selective* when it matches at
            most this many nodes.
        candidate_budget: maximum candidate roots to probe forward from.
        profile: optional :class:`repro.obs.SearchProfile` counter
            block (same near-zero-when-disabled contract as
            :func:`~repro.core.search.backward_expanding_search`).

    Returns:
        Up to ``config.max_results`` answers in decreasing relevance.
    """
    config = config or SearchConfig()
    term_count = len(keyword_node_sets)
    if term_count == 0:
        raise EmptyQueryError("no search terms")
    keyword_node_sets = [
        {node for node in group if graph.has_node(node)}
        for group in keyword_node_sets
    ]
    if config.require_all_keywords and any(not g for g in keyword_node_sets):
        return []

    selective = [
        i
        for i, group in enumerate(keyword_node_sets)
        if 0 < len(group) <= selectivity_threshold
    ]
    broad = [i for i in range(term_count) if i not in selective]

    if not selective or not broad:
        # Degenerate splits: plain backward search already optimal.
        return list(
            backward_expanding_search(
                graph, keyword_node_sets, scorer, config, profile=profile
            )
        )

    # Step 1: backward iterators from selective keyword nodes only.
    terms_of_origin: Dict[Node, List[int]] = {}
    for term_index in selective:
        for node in keyword_node_sets[term_index]:
            terms_of_origin.setdefault(node, []).append(term_index)

    # dijkstra_for picks the array-backed iterator on a frozen/overlay
    # graph and the reference dict iterator otherwise — both expose the
    # same peek/next/path_to_source surface this loop multiplexes.
    iterators: Dict[Node, DijkstraIterator] = {
        origin: dijkstra_for(
            graph, origin, reverse=True, max_distance=config.max_distance
        )
        for origin in terms_of_origin
    }
    counter = itertools.count()
    iterator_heap: List[Tuple[float, int, Node]] = []
    for origin, iterator in iterators.items():
        peek = iterator.peek()
        if peek is not None:
            heapq.heappush(iterator_heap, (peek, next(counter), origin))
    if profile is not None:
        profile.iterators += len(iterators)

    # candidate root -> per-selective-term list of origins that reached it
    reached: Dict[Node, Dict[int, List[Node]]] = {}
    candidates: List[Node] = []

    broad_sets = [keyword_node_sets[i] for i in broad]

    def candidate_complete(node: Node) -> bool:
        per_term = reached.get(node)
        if per_term is None:
            return False
        return all(term_index in per_term for term_index in selective)

    probes = 0
    while iterator_heap and probes < candidate_budget:
        _distance, _tiebreak, origin = heapq.heappop(iterator_heap)
        iterator = iterators[origin]
        if profile is not None:
            profile.heap_pops += 1
            relaxed_before = iterator.relaxations
        visit = iterator.next()
        if profile is not None:
            profile.edges_relaxed += iterator.relaxations - relaxed_before
            if visit is not None:
                profile.nodes_expanded += 1
        if visit is None:
            continue
        peek = iterator.peek()
        if peek is not None:
            heapq.heappush(iterator_heap, (peek, next(counter), origin))
        node = visit.node
        per_term = reached.setdefault(node, {})
        for term_index in terms_of_origin[origin]:
            per_term.setdefault(term_index, []).append(origin)
        if candidate_complete(node) and node not in candidates:
            table = node[0] if isinstance(node, tuple) else None
            if table not in config.excluded_root_tables:
                candidates.append(node)
                probes += 1

    # Step 2: forward probes from candidate roots toward the broad terms.
    answers: List[Tuple[float, int, AnswerTree]] = []
    seen_keys: Set[FrozenSet] = set()
    order = itertools.count()

    for root in candidates:
        forward = dijkstra_for(
            graph, root, reverse=False, max_distance=config.max_distance
        )
        if profile is not None:
            profile.iterators += 1
        remaining: List[Set[Node]] = [set(group) for group in broad_sets]
        found: List[Optional[Node]] = [None] * len(broad)
        missing = len(broad)
        for visit in forward:
            if profile is not None:
                profile.nodes_expanded += 1
            for position, group in enumerate(remaining):
                if found[position] is None and visit.node in group:
                    found[position] = visit.node
                    missing -= 1
            if missing == 0:
                break
        if profile is not None:
            profile.edges_relaxed += forward.relaxations
        if missing and config.require_all_keywords:
            continue

        paths: List[Optional[List[Node]]] = [None] * term_count
        for term_index in selective:
            origin = reached[root][term_index][0]
            backward_path = iterators[origin].path_to_source(root)
            paths[term_index] = backward_path
        for position, term_index in enumerate(broad):
            target = found[position]
            if target is None:
                continue
            forward_path = forward.path_to_source(target)
            forward_path.reverse()  # parent chain gives target->root
            paths[term_index] = forward_path

        tree = AnswerTree.from_paths(graph, root, paths)
        if profile is not None:
            profile.trees_considered += 1
        if _discard_single_child_root(tree):
            continue
        key = tree.undirected_key()
        if key in seen_keys:
            if profile is not None:
                profile.duplicate_trees += 1
            continue
        seen_keys.add(key)
        relevance = scorer.relevance(tree, graph)
        if not config.require_all_keywords and term_count:
            relevance *= (tree.covered_terms() / term_count) ** 2
        answers.append((-relevance, next(order), tree))

    answers.sort()
    results = [
        ScoredAnswer(tree, -neg_relevance, rank)
        for rank, (neg_relevance, _tiebreak, tree) in enumerate(
            answers[: config.max_results]
        )
    ]
    if profile is not None:
        profile.answers_emitted += len(results)
    return results
