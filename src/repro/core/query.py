"""Query parsing and keyword-to-node resolution.

A BANKS query is a few whitespace-separated search terms.  Besides plain
keywords this parser implements the two syntaxes the paper describes:

* ``attribute:keyword`` — "queries such as 'author:Levy' which would
  require the keyword 'Levy' to be in an author name attribute"
  (Sec. 2.3 / Sec. 7);
* ``approx(NUMBER)`` — "concurrency approx(1988) to look for papers
  about concurrency published around 1988" (Sec. 7).

Resolution turns each term into its node set ``S_i``: data postings from
the inverted index, optionally metadata matches (table/column names) and
optionally fuzzy (edit-distance) expansion.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from repro.errors import EmptyQueryError, QueryError
from repro.relational.database import Database, RID
from repro.text.fuzzy import expand_fuzzy, numbers_near
from repro.text.inverted_index import InvertedIndex
from repro.text.tokenizer import normalize, tokenize_identifier

_APPROX_RE = re.compile(r"^approx\((\d+)\)$", re.IGNORECASE)


@dataclass(frozen=True)
class QueryTerm:
    """One parsed search term.

    Attributes:
        raw: the original text.
        kind: ``"keyword"``, ``"attribute"`` or ``"approx"``.
        term: the normalised keyword (empty for ``approx``).
        attribute: the attribute qualifier for ``attribute:keyword``.
        number: the target for ``approx(NUMBER)``.
    """

    raw: str
    kind: str
    term: str = ""
    attribute: Optional[str] = None
    number: Optional[int] = None


@dataclass(frozen=True)
class ParsedQuery:
    """A full query: its terms, in order."""

    terms: Tuple[QueryTerm, ...]

    def __len__(self) -> int:
        return len(self.terms)


def parse_query(text: str) -> ParsedQuery:
    """Parse a query string into :class:`ParsedQuery`.

    Raises:
        EmptyQueryError: when no usable term remains after parsing.
    """
    terms: List[QueryTerm] = []
    for token in text.split():
        approx_match = _APPROX_RE.match(token)
        if approx_match:
            terms.append(
                QueryTerm(raw=token, kind="approx", number=int(approx_match.group(1)))
            )
            continue
        if ":" in token:
            attribute, _, keyword = token.partition(":")
            attribute = normalize(attribute)
            keyword = normalize(keyword)
            if not attribute or not keyword:
                raise QueryError(f"malformed attribute term: {token!r}")
            terms.append(
                QueryTerm(
                    raw=token, kind="attribute", term=keyword, attribute=attribute
                )
            )
            continue
        keyword = normalize(token)
        if keyword:
            terms.append(QueryTerm(raw=token, kind="keyword", term=keyword))
    if not terms:
        raise EmptyQueryError(f"query has no usable terms: {text!r}")
    return ParsedQuery(tuple(terms))


def _attribute_columns(
    database: Database, attribute: str
) -> List[Tuple[str, str]]:
    """(table, column) pairs whose column name matches ``attribute``."""
    matches: List[Tuple[str, str]] = []
    for schema in database.schema.tables():
        for column in schema.columns:
            if attribute in tokenize_identifier(column.name):
                matches.append((schema.name, column.name))
    return matches


def resolve_term(
    term: QueryTerm,
    index: InvertedIndex,
    database: Database,
    include_metadata: bool = True,
    fuzzy: bool = False,
    approx_window: int = 2,
) -> Set[RID]:
    """The node set ``S_i`` for one term.

    Args:
        term: a parsed term.
        index: the database's inverted index.
        database: the database (needed for metadata expansion).
        include_metadata: let keywords match table/column names.
        fuzzy: expand the keyword to edit-distance neighbours when the
            exact term is absent from the vocabulary.
        approx_window: half-width of the ``approx(N)`` numeric window.
    """
    if term.kind == "approx":
        nodes: Set[RID] = set()
        for token in numbers_near(
            term.number or 0, index.vocabulary(), window=approx_window
        ):
            nodes.update(posting.node for posting in index.lookup(token))
        return nodes

    if term.kind == "attribute":
        nodes = set()
        for table, column in _attribute_columns(database, term.attribute or ""):
            nodes.update(
                posting.node
                for posting in index.lookup_column(term.term, table, column)
            )
        return nodes

    nodes = index.lookup_nodes(term.term, include_metadata=include_metadata)
    if not nodes and fuzzy:
        for token, _distance in expand_fuzzy(term.term, index.vocabulary()):
            nodes.update(posting.node for posting in index.lookup(token))
    return nodes


def resolve_query(
    query: ParsedQuery,
    index: InvertedIndex,
    database: Database,
    include_metadata: bool = True,
    fuzzy: bool = False,
    approx_window: int = 2,
) -> List[Set[RID]]:
    """Node sets for every term of ``query`` (in term order)."""
    return [
        resolve_term(
            term,
            index,
            database,
            include_metadata=include_metadata,
            fuzzy=fuzzy,
            approx_window=approx_window,
        )
        for term in query.terms
    ]
