"""The BANKS facade: index a database once, answer keyword queries.

This is the public entry point a downstream user needs::

    from repro import BANKS
    from repro.relational.sqlite_adapter import load_sqlite

    banks = BANKS(load_sqlite("dblp.db"))
    for answer in banks.search("soumen sunita"):
        print(answer.render())

It wires together graph construction (:mod:`repro.core.model`), keyword
indexing (:mod:`repro.text.inverted_index`), query parsing
(:mod:`repro.core.query`), the backward expanding search
(:mod:`repro.core.search`) and scoring (:mod:`repro.core.scoring`).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from time import perf_counter
from typing import Dict, Iterator, List, Optional, Set, Union

from repro.core.answer import AnswerTree
from repro.core.bidirectional import bidirectional_search
from repro.core.model import build_data_graph, link_tables
from repro.core.query import ParsedQuery, parse_query, resolve_query
from repro.core.scoring import Scorer, ScoringConfig
from repro.core.search import (
    ScoredAnswer,
    SearchConfig,
    backward_expanding_search,
)
from repro.core.summarize import structure_signature, summarize_answers
from repro.core.weights import WeightPolicy
from repro.graph.csr import freeze_graph
from repro.relational.database import Database, RID
from repro.text.inverted_index import InvertedIndex


@dataclass
class Answer:
    """One ranked answer, ready for presentation.

    Attributes:
        tree: the connection tree (root = information node).
        relevance: overall relevance score in [0, 1].
        rank: position in the result list (0-based).
    """

    tree: AnswerTree
    relevance: float
    rank: int
    _banks: "BANKS"

    @property
    def root(self) -> RID:
        return self.tree.root

    def render(self) -> str:
        """Indented rendering with tuple labels (cf. paper Fig. 2)."""
        labels = {
            node: self._banks.node_label(node) for node in self.tree.nodes
        }
        return self.tree.render_indented(labels)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Answer(rank={self.rank}, relevance={self.relevance:.4f}, "
            f"root={self._banks.node_label(self.root)!r})"
        )


def node_label(database: Database, node: RID) -> str:
    """``table: best text`` label for a tuple node (cf. paper Fig. 2).

    Shared by every front end that renders trees — the facade, the
    shard router, the browse app — so sharded and unsharded pages
    label rows identically.
    """
    table_name, rid = node
    table = database.table(table_name)
    row = table.row(rid)
    best_text = ""
    for column in table.schema.text_columns():
        value = row[column.name]
        if value and len(str(value)) > len(best_text):
            best_text = str(value)
    if not best_text:
        if table.schema.primary_key:
            best_text = ",".join(str(row[c]) for c in table.schema.primary_key)
        else:
            best_text = f"rid={rid}"
    if len(best_text) > 60:
        best_text = best_text[:57] + "..."
    return f"{table_name}: {best_text}"


class BANKS:
    """Browsing ANd Keyword Searching over one relational database.

    Args:
        database: the data to search.
        weight_policy: edge/prestige weighting (defaults to the paper's).
        scoring: scoring parameters (defaults: lambda=0.2, EdgeLog on —
            the paper's best setting).
        search_config: search knobs (defaults to the paper's).
        include_metadata: let keywords match table/column names.
        fuzzy: enable edit-distance fallback for unknown keywords.
        auto_exclude_link_roots: when the search config does not name
            excluded root tables, exclude pure relationship tables
            (``writes``, ``cites``, ...) as information nodes — the
            paper's "selected set" restriction, derived automatically
            from the catalog.
        freeze: snapshot the built graph into the compact CSR form
            (:mod:`repro.graph.csr`) and search through the array
            kernel.  The facade's graph becomes a
            :class:`~repro.graph.csr.CSROverlayGraph` — same read and
            mutation surface as :class:`~repro.graph.digraph.DiGraph`,
            answers bit-identical, roughly half the latency.  Pass
            ``False`` to keep the dict-of-dicts reference
            representation (the parity benchmark does).
    """

    def __init__(
        self,
        database: Database,
        weight_policy: Optional[WeightPolicy] = None,
        scoring: Optional[ScoringConfig] = None,
        search_config: Optional[SearchConfig] = None,
        include_metadata: bool = True,
        fuzzy: bool = False,
        auto_exclude_link_roots: bool = True,
        freeze: bool = True,
    ):
        self.database = database
        self.weight_policy = weight_policy or WeightPolicy()
        self.scoring = scoring or ScoringConfig()
        self.search_config = search_config or SearchConfig()
        self.include_metadata = include_metadata
        self.fuzzy = fuzzy
        if auto_exclude_link_roots and not self.search_config.excluded_root_tables:
            self.search_config = replace(
                self.search_config,
                excluded_root_tables=link_tables(database),
            )

        self.graph, self.stats = build_data_graph(database, self.weight_policy)
        if freeze:
            self.graph = freeze_graph(self.graph)
        self.index = InvertedIndex(database)
        self.scorer = Scorer(self.stats, self.scoring)

    # -- query answering ------------------------------------------------------

    def resolve(self, query: Union[str, ParsedQuery]) -> List[Set[RID]]:
        """Node sets ``S_i`` for each term of ``query``."""
        parsed = parse_query(query) if isinstance(query, str) else query
        return resolve_query(
            parsed,
            self.index,
            self.database,
            include_metadata=self.include_metadata,
            fuzzy=self.fuzzy,
        )

    def search_iter(
        self,
        query: Union[str, ParsedQuery],
        max_results: Optional[int] = None,
        scoring: Optional[ScoringConfig] = None,
        trace=None,
        trace_parent=None,
        profile=None,
        **config_overrides,
    ) -> Iterator[Answer]:
        """Stream answers as the backward expansion emits them.

        The answer-iterator protocol: a generator of :class:`Answer`
        in emission order — the same answers :meth:`search` returns, in
        the same order, but available one at a time while the kernel is
        still expanding.  Early termination is first-class: abandoning
        the iterator (``break``) closes the underlying kernel generator
        and stops the expansion; nothing beyond the consumed prefix is
        computed.  :meth:`search` and the SSE streaming tier are both
        built on this.

        Args: as :meth:`search`, minus ``bidirectional`` (that kernel
        produces its list at once — nothing to stream) and
        ``on_answer`` (the iterator *is* the stream).
        """
        resolve_span = (
            trace.begin("search.resolve", parent_id=trace_parent)
            if trace is not None
            else None
        )
        keyword_node_sets = self.resolve(query)
        if resolve_span is not None:
            resolve_span.attrs["terms"] = len(keyword_node_sets)
            trace.end(resolve_span)
        config = self.search_config
        if max_results is not None:
            config_overrides["max_results"] = max_results
        if config_overrides:
            config = replace(config, **config_overrides)
        scorer = (
            self.scorer if scoring is None else self.scorer.with_config(scoring)
        )
        kernel_span = (
            trace.begin(
                "search.kernel", parent_id=trace_parent, bidirectional=False
            )
            if trace is not None
            else None
        )
        kernel_start = perf_counter() if profile is not None else 0.0
        emitted = 0
        try:
            for s in backward_expanding_search(
                self.graph, keyword_node_sets, scorer, config,
                profile=profile,
            ):
                yield Answer(s.tree, s.relevance, emitted, self)
                emitted += 1
        finally:
            # Runs on exhaustion AND on early abandonment (generator
            # close), so spans and timings cover exactly the expansion
            # work actually performed.
            if profile is not None:
                profile.expansion_seconds += perf_counter() - kernel_start
            if kernel_span is not None:
                kernel_span.attrs["answers"] = emitted
                if profile is not None:
                    kernel_span.attrs["heap_pops"] = profile.heap_pops
                    kernel_span.attrs["nodes_expanded"] = profile.nodes_expanded
                    kernel_span.attrs["edges_relaxed"] = profile.edges_relaxed
                trace.end(kernel_span)

    def search(
        self,
        query: Union[str, ParsedQuery],
        max_results: Optional[int] = None,
        scoring: Optional[ScoringConfig] = None,
        bidirectional: bool = False,
        trace=None,
        trace_parent=None,
        profile=None,
        on_answer=None,
        **config_overrides,
    ) -> List[Answer]:
        """Answer a keyword query.

        Args:
            query: query string (or pre-parsed query).
            max_results: override the configured result count.
            scoring: override the scoring parameters for this query
                (the evaluation sweep uses this).
            bidirectional: use the Sec. 7 forward-from-selective-terms
                strategy instead of pure backward search.
            trace: optional :class:`repro.obs.Trace` collector; the
                kernel invocation is recorded as a ``search.kernel``
                span under ``trace_parent``.
            trace_parent: span id the kernel span hangs under.
            profile: optional :class:`repro.obs.SearchProfile` the
                kernel fills (counters + expansion wall time).
            on_answer: optional callback fired with each
                :class:`Answer` as the backward expanding search emits
                it — strictly before the full top-k completes.  The
                streamed answers equal the returned list, in order.
                (The bidirectional kernel produces its list at once, so
                there the callback fires per answer only after the
                kernel returns.)
            **config_overrides: any :class:`SearchConfig` field.

        Returns:
            Ranked answers (rank 0 = best).
        """
        if not bidirectional:
            # The backward path is the answer-iterator protocol, drained:
            # each answer reaches the callback while the expansion is
            # still running — the hook the SSE streaming tier hangs off.
            answers: List[Answer] = []
            for answer in self.search_iter(
                query,
                max_results=max_results,
                scoring=scoring,
                trace=trace,
                trace_parent=trace_parent,
                profile=profile,
                **config_overrides,
            ):
                if on_answer is not None:
                    on_answer(answer)
                answers.append(answer)
            return answers

        resolve_span = (
            trace.begin("search.resolve", parent_id=trace_parent)
            if trace is not None
            else None
        )
        keyword_node_sets = self.resolve(query)
        if resolve_span is not None:
            resolve_span.attrs["terms"] = len(keyword_node_sets)
            trace.end(resolve_span)
        config = self.search_config
        if max_results is not None:
            config_overrides["max_results"] = max_results
        if config_overrides:
            config = replace(config, **config_overrides)
        scorer = self.scorer if scoring is None else self.scorer.with_config(scoring)

        kernel_span = (
            trace.begin(
                "search.kernel", parent_id=trace_parent, bidirectional=True
            )
            if trace is not None
            else None
        )
        kernel_start = perf_counter() if profile is not None else 0.0
        scored = bidirectional_search(
            self.graph, keyword_node_sets, scorer, config, profile=profile
        )
        if on_answer is not None:
            for rank, s in enumerate(scored):
                on_answer(Answer(s.tree, s.relevance, rank, self))
        if profile is not None:
            profile.expansion_seconds += perf_counter() - kernel_start
        if kernel_span is not None:
            kernel_span.attrs["answers"] = len(scored)
            if profile is not None:
                kernel_span.attrs["heap_pops"] = profile.heap_pops
                kernel_span.attrs["nodes_expanded"] = profile.nodes_expanded
                kernel_span.attrs["edges_relaxed"] = profile.edges_relaxed
            trace.end(kernel_span)
        return [
            Answer(s.tree, s.relevance, rank, self)
            for rank, s in enumerate(scored)
        ]

    def search_summarized(
        self, query: Union[str, ParsedQuery], **kwargs
    ) -> Dict[str, List[Answer]]:
        """Answers grouped by schema-level tree structure (Sec. 7)."""
        answers = self.search(query, **kwargs)
        scored = [
            ScoredAnswer(a.tree, a.relevance, a.rank) for a in answers
        ]
        grouped = summarize_answers(scored)
        by_structure: Dict[str, List[Answer]] = {}
        answers_by_order = {a.rank: a for a in answers}
        for signature, group in grouped.items():
            by_structure[signature] = [
                answers_by_order[s.order] for s in group
            ]
        return by_structure

    def search_structure(
        self,
        query: Union[str, ParsedQuery],
        signature: str,
        max_results: Optional[int] = None,
        scan_budget: int = 200,
        **config_overrides,
    ) -> List[Answer]:
        """Further answers with one particular tree structure (Sec. 7).

        The paper: "allow the user to look for further answers with a
        particular tree structure".  Runs the incremental search with a
        widened emission budget and keeps only answers whose
        schema-level shape (:func:`repro.core.summarize.structure_signature`)
        equals ``signature``, stopping as soon as enough matches arrived
        — the generator is consumed lazily, so unwanted answers beyond
        the last match cost nothing.

        Args:
            query: the original keyword query.
            signature: a structure signature, usually a key of
                :meth:`search_summarized`'s result.
            max_results: matching answers wanted (defaults to the
                configured result count).
            scan_budget: total emissions to examine while filtering.
        """
        wanted = (
            max_results
            if max_results is not None
            else self.search_config.max_results
        )
        keyword_node_sets = self.resolve(query)
        config = replace(
            self.search_config,
            max_results=max(scan_budget, wanted),
            **config_overrides,
        )
        matches: List[Answer] = []
        for scored in backward_expanding_search(
            self.graph, keyword_node_sets, self.scorer, config
        ):
            if structure_signature(scored.tree) != signature:
                continue
            matches.append(
                Answer(scored.tree, scored.relevance, len(matches), self)
            )
            if len(matches) >= wanted:
                break
        return matches

    # -- presentation helpers -----------------------------------------------------

    def node_label(self, node: RID) -> str:
        """A compact human-readable label for a tuple node.

        Prefers the longest text attribute (titles, names); falls back
        to the primary key; always prefixed by the relation name so the
        rendering reads like the paper's Fig. 2 trees.
        """
        return node_label(self.database, node)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BANKS({self.database.name}: {self.stats.num_nodes} nodes, "
            f"{self.stats.num_edges} edges, {len(self.index)} terms)"
        )
