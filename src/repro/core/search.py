"""Backward expanding search (paper Sec. 3, Fig. 3).

Runs one lazy Dijkstra iterator per keyword node, all traversing the
graph's edges *in reverse*, multiplexed through an iterator heap ordered
on the distance of the next node each iterator would output.  Whenever a
node ``v`` is visited by an iterator originating at keyword node ``o``
(matching term ``l``), the cross product ``{o} x prod_{i != l} v.L_i``
yields new connection trees rooted at ``v``; ``o`` is then added to
``v.L_l``.

Faithfully implemented heuristics from the paper:

* trees whose root has only one child are discarded (the same answer
  minus the root is generated separately and is better);
* a fixed-size *output heap* ordered by relevance buffers generated
  trees; when full, the most relevant tree is emitted before inserting
  the next one — approximate relevance ordering at low latency;
* duplicate trees ("isomorphic modulo direction", i.e. with identical
  undirected versions) are kept once, preferring the higher-relevance
  rooting; a duplicate of an already-emitted answer is discarded *even
  if its relevance is higher* — the paper accepts this as the price of
  incremental emission;
* the information node may be restricted ("we may exclude the nodes
  corresponding to the tuples from a specified set of relations, such as
  Writes") via ``excluded_root_tables``.

Extensions (all optional, off by default):

* ``require_all_keywords=False`` allows answers covering only a subset
  of the terms (Sec. 2.3's relaxation); their relevance is scaled by the
  covered fraction so complete answers dominate;
* ``origin_distance_scale`` adds a node-weight-derived offset to each
  keyword node's starting distance ("the distance measure can be
  extended to include node weights of nodes matching keywords").
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    Hashable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.errors import EmptyQueryError, QueryError
from repro.core.answer import AnswerTree
from repro.core.scoring import Scorer
from repro.graph.digraph import DiGraph
from repro.graph.dijkstra import DijkstraIterator

Node = Hashable


@dataclass(frozen=True)
class SearchConfig:
    """Knobs of the backward expanding search.

    Attributes:
        max_results: stop after emitting this many answers.
        output_heap_size: capacity of the approximate-ordering buffer
            ("we have found it works well even with a reasonably small
            heap size").
        require_all_keywords: if false, allow partial answers.
        excluded_root_tables: relations whose tuples may not serve as
            information nodes.
        excluded_root_nodes: specific nodes that may not serve as
            information nodes (used by the XML layer, whose exclusions
            are tag- rather than table-based).
        allowed_root_nodes: when not ``None``, only these nodes may
            serve as information nodes (on top of the exclusions).  The
            shard router partitions the answer space with this: each
            shard searches the same stitched graph but emits only
            answers rooted in its own partition, so the union of the
            per-shard emissions covers every answer exactly once.
        max_distance: per-iterator expansion radius; ``None`` unbounded.
        max_visited: total iterator settlements budget (safety valve for
            adversarial graphs); ``None`` unbounded.
        origin_distance_scale: weight of the node-prestige offset added
            to keyword-node starting distances (0 disables).
    """

    max_results: int = 10
    output_heap_size: int = 20
    require_all_keywords: bool = True
    excluded_root_tables: FrozenSet[str] = frozenset()
    excluded_root_nodes: FrozenSet = frozenset()
    allowed_root_nodes: Optional[FrozenSet] = None
    max_distance: Optional[float] = None
    max_visited: Optional[int] = None
    origin_distance_scale: float = 0.0

    def __post_init__(self) -> None:
        if self.max_results < 1:
            raise QueryError("max_results must be >= 1")
        if self.output_heap_size < 1:
            raise QueryError("output_heap_size must be >= 1")


@dataclass(frozen=True)
class ScoredAnswer:
    """One emitted answer: the tree, its relevance, its emission rank."""

    tree: AnswerTree
    relevance: float
    order: int


class _OutputHeap:
    """Fixed-capacity buffer ordered by relevance with key-addressable
    entries (for duplicate replacement) and lazy deletion."""

    def __init__(self, capacity: int):
        self.capacity = capacity
        self._heap: List[Tuple[float, int, List]] = []
        self._by_key: Dict[FrozenSet, List] = {}
        self._counter = itertools.count()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    @property
    def full(self) -> bool:
        return self._size >= self.capacity

    def get_relevance(self, key: FrozenSet) -> Optional[float]:
        entry = self._by_key.get(key)
        if entry is None:
            return None
        return -entry[0]

    def remove(self, key: FrozenSet) -> None:
        entry = self._by_key.pop(key, None)
        if entry is not None:
            entry[3] = False  # lazy-invalidate; popped later
            self._size -= 1

    def add(self, key: FrozenSet, tree: AnswerTree, relevance: float) -> None:
        entry = [-relevance, next(self._counter), tree, True, key]
        self._by_key[key] = entry
        heapq.heappush(self._heap, (entry[0], entry[1], entry))
        self._size += 1

    def pop_best(self) -> Tuple[FrozenSet, AnswerTree, float]:
        while self._heap:
            neg_relevance, _tiebreak, entry = heapq.heappop(self._heap)
            if entry[3]:
                key = entry[4]
                del self._by_key[key]
                self._size -= 1
                return key, entry[2], -neg_relevance
        raise KeyError("pop from empty output heap")


def _node_table(node: Node) -> Optional[str]:
    """Table name of a data-graph node (``(table, rid)``), else ``None``."""
    if isinstance(node, tuple) and len(node) == 2 and isinstance(node[0], str):
        return node[0]
    return None


def _discard_single_child_root(tree: AnswerTree) -> bool:
    """The Fig. 3 discard rule: a root with a single child is redundant
    because the tree minus the root is generated separately and scores
    better — *unless* the root itself matches a keyword, in which case
    removing it would break coverage and no better duplicate exists."""
    if tree.size() <= 1 or tree.root_child_count() != 1:
        return False
    return tree.root not in set(tree.keyword_nodes)


def backward_expanding_search(
    graph: DiGraph,
    keyword_node_sets: Sequence[Set[Node]],
    scorer: Scorer,
    config: Optional[SearchConfig] = None,
    profile=None,
) -> Iterator[ScoredAnswer]:
    """Generate answers incrementally, approximately best-first.

    Dispatches on the graph representation: a frozen
    :class:`~repro.graph.csr.CSRGraph` (or its mutable overlay) runs
    the array kernel (:mod:`repro.core.csrkernel`); a dict-of-dicts
    :class:`DiGraph` runs the reference implementation below.  The two
    are answer-for-answer identical — the kernel parity benchmark
    gates strict top-k equality of roots and scores — so callers never
    need to know which one they got.

    Args:
        graph: the data graph (forward + backward edges, weighted).
        keyword_node_sets: for each search term, the set of nodes
            relevant to it (``S_i`` in the paper).
        scorer: relevance scorer (carries the parameter setting).
        config: search knobs; defaults are the paper's.
        profile: optional :class:`repro.obs.SearchProfile` counter
            block; every increment is behind an ``is not None`` check,
            so the unprofiled path pays one comparison per event.

    Returns:
        An iterator of :class:`ScoredAnswer` in emission order
        (approximately decreasing relevance) — the *answer-iterator
        protocol*: advancing it runs the expansion only as far as the
        next emission, so a satisfied top-k consumer simply stops
        iterating and the remaining frontier is never explored.
    """
    from repro.graph.csr import CSRGraph

    if isinstance(graph, CSRGraph):
        from repro.core.csrkernel import csr_backward_search

        return csr_backward_search(
            graph, keyword_node_sets, scorer, config, profile=profile
        )
    return _reference_backward_search(
        graph, keyword_node_sets, scorer, config, profile=profile
    )


def _reference_backward_search(
    graph: DiGraph,
    keyword_node_sets: Sequence[Set[Node]],
    scorer: Scorer,
    config: Optional[SearchConfig] = None,
    profile=None,
) -> Iterator[ScoredAnswer]:
    """The dict-of-dicts implementation — the parity reference the CSR
    kernel is gated against, and the path non-frozen graphs take."""
    config = config or SearchConfig()
    term_count = len(keyword_node_sets)
    if term_count == 0:
        raise EmptyQueryError("no search terms")
    keyword_node_sets = [
        {node for node in group if graph.has_node(node)}
        for group in keyword_node_sets
    ]
    if config.require_all_keywords and any(
        not group for group in keyword_node_sets
    ):
        return  # some keyword matches nothing: no complete answer exists

    # Terms covered by each distinct origin node.  Origins are visited
    # in sorted order so iterator creation (and hence all heap
    # tie-breaking) is deterministic across processes — set iteration
    # order varies with string-hash randomisation.
    terms_of_origin: Dict[Node, List[int]] = {}
    for term_index, group in enumerate(keyword_node_sets):
        for node in sorted(group, key=repr):
            terms_of_origin.setdefault(node, []).append(term_index)

    if not terms_of_origin:
        return

    max_node_weight = graph.max_node_weight() if graph.num_nodes else 1.0
    if max_node_weight <= 0:
        max_node_weight = 1.0

    iterators: Dict[Node, DijkstraIterator] = {}
    iterator_heap: List[Tuple[float, int, Node]] = []
    counter = itertools.count()
    for origin in terms_of_origin:
        offset = 0.0
        if config.origin_distance_scale > 0.0:
            prestige = graph.node_weight(origin) / max_node_weight
            offset = config.origin_distance_scale * (1.0 - prestige)
        iterator = DijkstraIterator(
            graph,
            origin,
            reverse=True,
            initial_distance=offset,
            max_distance=config.max_distance,
        )
        iterators[origin] = iterator
        peek = iterator.peek()
        if peek is not None:
            heapq.heappush(iterator_heap, (peek, next(counter), origin))
    if profile is not None:
        profile.iterators += len(iterators)

    # v -> per-term lists of origins whose iterators have visited v.
    visit_lists: Dict[Node, List[List[Node]]] = {}

    output = _OutputHeap(config.output_heap_size)
    emitted_keys: Set[FrozenSet] = set()
    emitted_count = 0
    visited_budget = config.max_visited

    def build_tree(
        root: Node, assignment: Sequence[Optional[Node]]
    ) -> AnswerTree:
        paths: List[Optional[List[Node]]] = []
        for origin in assignment:
            if origin is None:
                paths.append(None)
            else:
                paths.append(iterators[origin].path_to_source(root))
        return AnswerTree.from_paths(graph, root, paths)

    def relevance_of(tree: AnswerTree) -> float:
        score = scorer.relevance(tree, graph)
        if not config.require_all_keywords and term_count:
            # Quadratic coverage penalty: complete answers dominate
            # partial ones unless the complete connection is very large.
            score *= (tree.covered_terms() / term_count) ** 2
        return score

    def consider(tree: AnswerTree) -> Optional[ScoredAnswer]:
        """Dedup + output-heap insertion; returns an emission, if any."""
        nonlocal emitted_count
        if profile is not None:
            profile.trees_considered += 1
        key = tree.undirected_key()
        if key in emitted_keys:
            # "In fact, a duplicate of the result might have already been
            # output; in that case we discard the new result even if its
            # relevance is higher."
            if profile is not None:
                profile.duplicate_trees += 1
            return None
        relevance = relevance_of(tree)
        existing = output.get_relevance(key)
        if existing is not None:
            if relevance <= existing:
                return None
            output.remove(key)
        emission: Optional[ScoredAnswer] = None
        if output.full:
            best_key, best_tree, best_relevance = output.pop_best()
            emitted_keys.add(best_key)
            emission = ScoredAnswer(best_tree, best_relevance, emitted_count)
            emitted_count += 1
        output.add(key, tree, relevance)
        return emission

    while iterator_heap and emitted_count < config.max_results:
        if visited_budget is not None:
            if visited_budget <= 0:
                break
            visited_budget -= 1

        _distance, _tiebreak, origin = heapq.heappop(iterator_heap)
        iterator = iterators[origin]
        if profile is not None:
            profile.heap_pops += 1
            relaxed_before = iterator.relaxations
        visit = iterator.next()
        if profile is not None:
            profile.edges_relaxed += iterator.relaxations - relaxed_before
            if visit is not None:
                profile.nodes_expanded += 1
        if visit is None:
            continue
        peek = iterator.peek()
        if peek is not None:
            heapq.heappush(iterator_heap, (peek, next(counter), origin))

        v = visit.node
        lists = visit_lists.get(v)
        if lists is None:
            lists = [[] for _ in range(term_count)]
            visit_lists[v] = lists

        table = _node_table(v)
        root_allowed = (
            table not in config.excluded_root_tables
            and v not in config.excluded_root_nodes
            and (
                config.allowed_root_nodes is None
                or v in config.allowed_root_nodes
            )
        )

        for term_index in terms_of_origin[origin]:
            if root_allowed:
                pools: Optional[List[List[Optional[Node]]]] = []
                for other_term in range(term_count):
                    if other_term == term_index:
                        continue
                    pool: List[Optional[Node]] = list(lists[other_term])
                    if not config.require_all_keywords:
                        pool.append(None)
                    if not pool:
                        pools = None
                        break
                    pools.append(pool)
                if pools is not None:
                    for combo in itertools.product(*pools):
                        assignment: List[Optional[Node]] = []
                        combo_iter = iter(combo)
                        for position in range(term_count):
                            if position == term_index:
                                assignment.append(origin)
                            else:
                                assignment.append(next(combo_iter))
                        if all(a is None for a in assignment):
                            continue
                        tree = build_tree(v, assignment)
                        if _discard_single_child_root(tree):
                            continue  # Fig. 3: "duplicate result"
                        emission = consider(tree)
                        if emission is not None:
                            if profile is not None:
                                profile.answers_emitted += 1
                            yield emission
                            if emitted_count >= config.max_results:
                                return
            lists[term_index].append(origin)

    # Drain: "when all answers have been generated, the remaining trees
    # in the heap are output in decreasing order of relevance."
    while len(output) and emitted_count < config.max_results:
        key, tree, relevance = output.pop_best()
        emitted_keys.add(key)
        if profile is not None:
            profile.answers_emitted += 1
        yield ScoredAnswer(tree, relevance, emitted_count)
        emitted_count += 1
