"""Answer summarisation by tree structure (paper Sec. 7, implemented).

"We also want to summarize the output, i.e., group the output tuples
into sets that have the same tree structure, and allow the user to look
for further answers with a particular tree structure."

The *structure* of an answer is its schema-level shape: replace every
node by its relation name and compute a canonical form of the resulting
rooted tree (children sorted by their own canonical forms, so the
signature is invariant to sibling order).  Answers with equal signatures
are the same "kind" of result — e.g. every *author -> writes -> paper*
tree groups together regardless of which author and paper.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable, List, Sequence

from repro.core.answer import AnswerTree
from repro.core.search import ScoredAnswer


def _table_of(node: Hashable) -> str:
    if isinstance(node, tuple) and len(node) == 2 and isinstance(node[0], str):
        return node[0]
    return str(node)


def structure_signature(tree: AnswerTree) -> str:
    """Canonical schema-level shape of ``tree``.

    A node renders as ``table(child, child, ...)`` with children sorted
    lexicographically by their canonical renderings.
    """

    def canon(node: Hashable) -> str:
        children = sorted(canon(child) for child in tree.children(node))
        label = _table_of(node)
        if not children:
            return label
        return f"{label}({','.join(children)})"

    return canon(tree.root)


def summarize_answers(
    answers: Sequence[ScoredAnswer],
) -> "OrderedDict[str, List[ScoredAnswer]]":
    """Group answers by structure, preserving best-first order.

    The returned mapping iterates groups in order of each group's best
    (first-emitted) answer; within a group answers keep their original
    order — so a UI can render "N answers shaped author->paper" headers
    and expand on demand, as the paper envisions.
    """
    groups: "OrderedDict[str, List[ScoredAnswer]]" = OrderedDict()
    for answer in answers:
        signature = structure_signature(answer.tree)
        groups.setdefault(signature, []).append(answer)
    return groups
