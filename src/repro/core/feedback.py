"""User-feedback authority transfer — spreading activation (Sec. 7).

The paper plans: *"We are investigating authority transfer (a form of
spreading activation), wherein nodes pointed to by heavy nodes (perhaps
via user feedback) become heavier."*  This module implements exactly
that loop:

1. users click answers; :class:`FeedbackStore` accumulates per-tuple
   feedback mass (clicks on an answer endorse its root, and more
   weakly its keyword nodes);
2. :func:`spreading_activation` propagates that mass along the
   database's *reference* structure — a tuple pointed to by endorsed
   tuples becomes heavier, damped per hop and split across each
   endorser's out-references;
3. :class:`FeedbackBanks` folds the activation into node prestige
   (``weight = base prestige + scale * activation``) so subsequent
   searches rank endorsed regions higher.

The activation uses the pure forward reference graph (as the PageRank
prestige mode does), not the search graph's backward edges: authority
flows along semantic references only.
"""

from __future__ import annotations

from typing import Dict, Mapping, Union

from repro.core.banks import BANKS, Answer
from repro.core.model import GraphStats
from repro.core.scoring import Scorer
from repro.errors import QueryError
from repro.relational.database import Database, RID


class FeedbackStore:
    """Accumulated user endorsements per tuple.

    Clicking an :class:`repro.core.banks.Answer` endorses its root with
    full weight and each keyword node with ``leaf_share`` of it — the
    root is what the user judged relevant, the leaves contributed.
    """

    def __init__(self, leaf_share: float = 0.25):
        if not 0.0 <= leaf_share <= 1.0:
            raise QueryError("leaf_share must be in [0, 1]")
        self.leaf_share = leaf_share
        self._mass: Dict[RID, float] = {}

    def record_click(
        self, endorsement: Union[Answer, RID], weight: float = 1.0
    ) -> None:
        """Record one endorsement of an answer (or a bare tuple)."""
        if weight <= 0:
            raise QueryError("feedback weight must be positive")
        if isinstance(endorsement, Answer):
            self._add(endorsement.tree.root, weight)
            for keyword_node in endorsement.tree.keyword_nodes:
                if keyword_node is not None:
                    self._add(keyword_node, weight * self.leaf_share)
        else:
            self._add(endorsement, weight)

    def _add(self, node: RID, weight: float) -> None:
        self._mass[node] = self._mass.get(node, 0.0) + weight

    def mass(self, node: RID) -> float:
        return self._mass.get(node, 0.0)

    def seeds(self) -> Dict[RID, float]:
        return dict(self._mass)

    def clear(self) -> None:
        self._mass.clear()

    def __len__(self) -> int:
        return len(self._mass)


def spreading_activation(
    database: Database,
    seeds: Mapping[RID, float],
    damping: float = 0.5,
    rounds: int = 3,
) -> Dict[RID, float]:
    """Propagate feedback mass along forward references.

    In each round, every active tuple ``u`` sends
    ``damping * activation(u) / out_references(u)`` to each tuple it
    references — "nodes pointed to by heavy nodes become heavier".
    Activation accumulates (a node keeps what it received in earlier
    rounds); ``rounds`` bounds the spreading radius.

    Returns the total activation per node (seeds included).
    """
    if not 0.0 <= damping < 1.0:
        raise QueryError("damping must be in [0, 1)")
    if rounds < 0:
        raise QueryError("rounds must be >= 0")

    total: Dict[RID, float] = dict(seeds)
    frontier: Dict[RID, float] = dict(seeds)
    for _ in range(rounds):
        next_frontier: Dict[RID, float] = {}
        for node, activation in frontier.items():
            if activation <= 0:
                continue
            table_name, rid = node
            table = database.table(table_name)
            if not table.has_rid(rid):
                continue
            references = [
                target
                for _fk, target in database.references_of(node)
                if target != node
            ]
            if not references:
                continue
            share = damping * activation / len(references)
            for target in references:
                next_frontier[target] = next_frontier.get(target, 0.0) + share
        for node, activation in next_frontier.items():
            total[node] = total.get(node, 0.0) + activation
        frontier = next_frontier
        if not frontier:
            break
    return total


class FeedbackBanks(BANKS):
    """A BANKS facade whose prestige absorbs user feedback.

    Args:
        database: the data to search.
        feedback_scale: how strongly activation adds to base prestige
            (in units of indegree; 1.0 means one click at a node is
            worth one extra inlink there).
        damping: spreading-activation damping per hop.
        rounds: spreading radius in hops.
        **banks_options: forwarded to :class:`BANKS`.
    """

    def __init__(
        self,
        database: Database,
        feedback_scale: float = 1.0,
        damping: float = 0.5,
        rounds: int = 3,
        **banks_options,
    ):
        super().__init__(database, **banks_options)
        if feedback_scale < 0:
            raise QueryError("feedback_scale must be >= 0")
        self.feedback_scale = feedback_scale
        self.damping = damping
        self.rounds = rounds
        self.feedback = FeedbackStore()
        self._base_weights: Dict[RID, float] = {
            node: self.graph.node_weight(node) for node in self.graph.nodes()
        }

    def record_click(
        self, endorsement: Union[Answer, RID], weight: float = 1.0
    ) -> None:
        """Record an endorsement; call :meth:`apply_feedback` to fold
        accumulated feedback into the ranking."""
        self.feedback.record_click(endorsement, weight)

    def apply_feedback(self) -> Dict[RID, float]:
        """Recompute node prestige as base + scaled activation.

        Returns the activation map (useful for inspection/benchmarks).
        """
        activation = spreading_activation(
            self.database,
            self.feedback.seeds(),
            damping=self.damping,
            rounds=self.rounds,
        )
        for node, base in self._base_weights.items():
            boost = self.feedback_scale * activation.get(node, 0.0)
            self.graph.set_node_weight(node, base + boost)
        # Prestige changed: refresh the scoring normaliser.
        max_node = (
            self.graph.max_node_weight() if self.graph.num_nodes else 1.0
        )
        self.stats = GraphStats(
            min_edge_weight=self.stats.min_edge_weight,
            max_node_weight=max(max_node, 1.0e-12),
            num_nodes=self.stats.num_nodes,
            num_edges=self.stats.num_edges,
        )
        self.scorer = Scorer(self.stats, self.scoring)
        return activation

    def reset_feedback(self) -> None:
        """Drop all feedback and restore base prestige."""
        self.feedback.clear()
        self.apply_feedback()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FeedbackBanks({self.database.name}: "
            f"{len(self.feedback)} endorsed tuple(s))"
        )
