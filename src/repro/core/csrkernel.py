"""Backward expanding search over the frozen CSR graph.

This is :func:`repro.core.search.backward_expanding_search` rewritten
for :class:`repro.graph.csr.CSRGraph`: the algorithm, heuristics and
emission semantics are identical (the kernel parity benchmark asserts
strict top-k equality of roots *and* scores on every demo query), but
the hot loops run on dense int node ids and contiguous arrays:

* one distance/parent/parent-weight array triple per keyword-node
  lane instead of per-iterator dicts — relaxation is two array probes;
* flat two-tuple heap entries ``(distance, counter * N + node)`` for
  both the per-lane heaps and the multiplexer (the packed int
  reproduces the reference ``(distance, counter, origin)`` tie-break
  exactly, since counters are unique);
* candidate trees are built as int parent maps and scored from the
  parent-edge weights captured during relaxation — no
  ``graph.edge_weight`` probes, no :class:`AnswerTree` allocation for
  the overwhelming majority of candidates that the single-child-root
  rule or the output heap discards.  Trees materialise to real
  :class:`AnswerTree` objects only at emission, in the same dict
  insertion order the reference builds them (``AnswerTree.weight``
  sums in that order, so even the float arithmetic matches);
* edge/node score normalisations are memoised per query, seeded from
  the snapshot's precomputed ``log2(1 + w/w_min)`` table whenever the
  live normaliser still equals the frozen one.

Overlay rows (:class:`repro.graph.csr.CSROverlayGraph`) are consulted
before the arrays, so a forked, delta-mutated graph searches correctly
without re-freezing — at dict speed only for the touched rows.

``SearchProfile`` counters fill at exactly the reference points, every
increment behind the same ``is not None`` guard.
"""

from __future__ import annotations

import itertools
from heapq import heappop, heappush
from operator import itemgetter
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import EmptyQueryError, GraphError
from repro.core.answer import AnswerTree
from repro.core.scoring import Scorer
from repro.graph.csr import CSRGraph

#: An unscored candidate: (root, child -> parent, keyword nodes,
#: (parent, child) -> weight) — all dense int node ids.
_IntTree = Tuple[int, Dict[int, int], Tuple[Optional[int], ...], Dict]


def csr_backward_search(
    graph: CSRGraph,
    keyword_node_sets: Sequence[Set],
    scorer: Scorer,
    config=None,
    profile=None,
) -> Iterator:
    """Generate answers incrementally over a CSR graph — the array twin
    of :func:`repro.core.search.backward_expanding_search` (see that
    docstring for the algorithm; only the representation differs)."""
    from repro.core.search import ScoredAnswer, SearchConfig, _OutputHeap

    config = config or SearchConfig()
    term_count = len(keyword_node_sets)
    if term_count == 0:
        raise EmptyQueryError("no search terms")

    index = graph._index
    ids = graph._ids
    reprs = graph._reprs
    tables = graph._tables

    groups = [
        {node for node in group if node in index}
        for group in keyword_node_sets
    ]
    if config.require_all_keywords and any(not group for group in groups):
        return  # some keyword matches nothing: no complete answer exists

    # Same origin ordering as the reference: per term, sorted by repr;
    # dict insertion order then fixes lane numbering and every heap
    # tie-break downstream.
    terms_of_origin: Dict[int, List[int]] = {}
    for term_index, group in enumerate(groups):
        for node in sorted(group, key=repr):
            terms_of_origin.setdefault(index[node], []).append(term_index)
    if not terms_of_origin:
        return

    over_nw = graph._over_nw
    base_nw = graph._node_weights
    if over_nw:

        def nw(i: int) -> float:
            weight = over_nw.get(i)
            return base_nw[i] if weight is None else weight

    else:
        nw = base_nw.__getitem__

    max_node_weight = graph.max_node_weight() if len(index) else 1.0
    if max_node_weight <= 0:
        max_node_weight = 1.0

    n_total = len(ids)
    over_pred = graph._over_pred
    pred_off = graph._pred_off
    pred_to = graph._pred_to
    pred_w = graph._pred_w
    base_n = len(pred_off) - 1
    max_distance = config.max_distance
    inf = float("inf")

    # -- lanes: one array-backed Dijkstra per origin -----------------------
    lane_of: Dict[int, int] = {}
    origins: List[int] = []
    dists: List = []
    parents: List = []
    parws: List = []
    settleds: List[bytearray] = []
    heaps: List[List[Tuple[float, int]]] = []
    counters: List[int] = []
    from array import array

    inf_template = array("d", [inf])
    parent_template = array("q", [-1])
    zero_bytes = bytes(8 * n_total)
    lane_count = len(terms_of_origin)
    multiplexer: List[Tuple[float, int]] = []
    mcount = 0
    scale = config.origin_distance_scale
    for origin in terms_of_origin:
        lane = len(heaps)
        lane_of[origin] = lane
        origins.append(origin)
        offset = 0.0
        if scale > 0.0:
            prestige = nw(origin) / max_node_weight
            offset = scale * (1.0 - prestige)
        dist = inf_template * n_total
        dist[origin] = offset
        dists.append(dist)
        parents.append(parent_template * n_total)
        parws.append(array("d", zero_bytes))
        settled = bytearray(n_total)
        settleds.append(settled)
        heap = [(offset, origin)]
        heaps.append(heap)
        counters.append(1)
        # initial peek (reference: iterator.peek() before first push)
        while heap:
            peek_distance, packed = heap[0]
            if settled[packed % n_total]:
                heappop(heap)
                continue
            if max_distance is not None and peek_distance > max_distance:
                heap.clear()
                continue
            heappush(multiplexer, (peek_distance, mcount * lane_count + lane))
            mcount += 1
            break
    if profile is not None:
        profile.iterators += lane_count

    # -- per-query score memos ---------------------------------------------
    if (
        scorer.config.edge_log
        and scorer.stats.min_edge_weight == graph.frozen_min_edge_weight
    ):
        esn_memo: Dict[float, float] = dict(graph.frozen_edge_norms)
    else:
        esn_memo = {}
    edge_score_norm = scorer.edge_score_norm
    nsn_memo: Dict[int, float] = {}
    node_score_norm = scorer.node_score_norm
    require_all = config.require_all_keywords

    def relevance_of(tree: _IntTree) -> float:
        root, _parent, keyword_nodes, edge_weights = tree
        total = 0
        if edge_weights:
            pairs = [
                ("(%s, %s)" % (reprs[s], reprs[t]), w)
                for (s, t), w in edge_weights.items()
            ]
            pairs.sort(key=itemgetter(0))
            for _key, weight in pairs:
                norm = esn_memo.get(weight)
                if norm is None:
                    norm = edge_score_norm(weight)
                    esn_memo[weight] = norm
                total = total + norm
        norms = nsn_memo.get(root)
        if norms is None:
            norms = node_score_norm(nw(root))
            nsn_memo[root] = norms
        scores = [norms]
        covered = 0
        for keyword_node in keyword_nodes:
            if keyword_node is None:
                scores.append(0.0)
            else:
                covered += 1
                norm = nsn_memo.get(keyword_node)
                if norm is None:
                    norm = node_score_norm(nw(keyword_node))
                    nsn_memo[keyword_node] = norm
                scores.append(norm)
        score = scorer.relevance_parts(total, scores)
        if not require_all and term_count:
            score *= (covered / term_count) ** 2
        return score

    def materialize(tree: _IntTree) -> AnswerTree:
        root, parent, keyword_nodes, edge_weights = tree
        return AnswerTree(
            ids[root],
            {ids[c]: ids[p] for c, p in parent.items()},
            tuple(None if k is None else ids[k] for k in keyword_nodes),
            {(ids[s], ids[t]): w for (s, t), w in edge_weights.items()},
        )

    # -- dedup + output heap (identical machinery, int keys) ---------------
    visit_lists: Dict[int, List[List[int]]] = {}
    output = _OutputHeap(config.output_heap_size)
    emitted_keys: Set[FrozenSet] = set()
    emitted_count = 0
    visited_budget = config.max_visited
    max_results = config.max_results
    excluded_tables = config.excluded_root_tables
    excluded_nodes = config.excluded_root_nodes
    allowed_nodes = config.allowed_root_nodes

    def consider(tree: _IntTree):
        nonlocal emitted_count
        if profile is not None:
            profile.trees_considered += 1
        root, parent, _keyword_nodes, _edge_weights = tree
        key = frozenset(
            (
                frozenset(parent) | {root},
                frozenset(frozenset(pair) for pair in _edge_weights),
            )
        )
        if key in emitted_keys:
            if profile is not None:
                profile.duplicate_trees += 1
            return None
        relevance = relevance_of(tree)
        existing = output.get_relevance(key)
        if existing is not None:
            if relevance <= existing:
                return None
            output.remove(key)
        emission = None
        if output.full:
            best_key, best_tree, best_relevance = output.pop_best()
            emitted_keys.add(best_key)
            emission = ScoredAnswer(
                materialize(best_tree), best_relevance, emitted_count
            )
            emitted_count += 1
        output.add(key, tree, relevance)
        return emission

    # -- main loop ---------------------------------------------------------
    product = itertools.product
    while multiplexer and emitted_count < max_results:
        if visited_budget is not None:
            if visited_budget <= 0:
                break
            visited_budget -= 1

        _distance, packed = heappop(multiplexer)
        lane = packed % lane_count
        if profile is not None:
            profile.heap_pops += 1

        # settle the lane's next node (inlined CSRDijkstra.next_index)
        heap = heaps[lane]
        settled = settleds[lane]
        while heap:
            head_distance, head_packed = heap[0]
            if settled[head_packed % n_total]:
                heappop(heap)
                continue
            if max_distance is not None and head_distance > max_distance:
                heap.clear()
                continue
            break
        if not heap:
            continue
        d0, packed0 = heappop(heap)
        v = packed0 % n_total
        settled[v] = 1
        dist = dists[lane]
        parent = parents[lane]
        parw = parws[lane]
        count = counters[lane]
        row = over_pred.get(v)
        if row is None and v < base_n:
            lo = pred_off[v]
            hi = pred_off[v + 1]
            if profile is not None:
                profile.edges_relaxed += hi - lo
            for position in range(lo, hi):
                neighbor = pred_to[position]
                if settled[neighbor]:
                    continue
                candidate = d0 + pred_w[position]
                if candidate < dist[neighbor]:
                    dist[neighbor] = candidate
                    parent[neighbor] = v
                    parw[neighbor] = pred_w[position]
                    heappush(heap, (candidate, count * n_total + neighbor))
                    count += 1
        elif row:
            if profile is not None:
                profile.edges_relaxed += len(row)
            for neighbor, weight in row.items():
                if settled[neighbor]:
                    continue
                candidate = d0 + weight
                if candidate < dist[neighbor]:
                    dist[neighbor] = candidate
                    parent[neighbor] = v
                    parw[neighbor] = weight
                    heappush(heap, (candidate, count * n_total + neighbor))
                    count += 1
        counters[lane] = count
        if profile is not None:
            profile.nodes_expanded += 1

        # re-arm the multiplexer with the lane's next distance
        while heap:
            head_distance, head_packed = heap[0]
            if settled[head_packed % n_total]:
                heappop(heap)
                continue
            if max_distance is not None and head_distance > max_distance:
                heap.clear()
                continue
            heappush(multiplexer, (head_distance, mcount * lane_count + lane))
            mcount += 1
            break

        lists = visit_lists.get(v)
        if lists is None:
            lists = [[] for _ in range(term_count)]
            visit_lists[v] = lists

        node_id = ids[v]
        root_allowed = (
            tables[v] not in excluded_tables
            and node_id not in excluded_nodes
            and (allowed_nodes is None or node_id in allowed_nodes)
        )

        origin = origins[lane]
        path_cache: Dict[int, List[int]] = {}
        first_hops: Set[int] = set()
        for term_index in terms_of_origin[origin]:
            if root_allowed:
                pools: Optional[List[List[Optional[int]]]] = []
                for other_term in range(term_count):
                    if other_term == term_index:
                        continue
                    pool: List[Optional[int]] = list(lists[other_term])
                    if not require_all:
                        pool.append(None)
                    if not pool:
                        pools = None
                        break
                    pools.append(pool)
                if pools is not None:
                    for combo in product(*pools):
                        assignment: List[Optional[int]] = []
                        combo_iter = iter(combo)
                        for position in range(term_count):
                            if position == term_index:
                                assignment.append(origin)
                            else:
                                assignment.append(next(combo_iter))
                        # Pre-graft discard (Fig. 3 "duplicate result"):
                        # the grafted tree's root children are a subset
                        # of the raw first hops {parents[lane][v]}, and
                        # the subset is exact when it has at most one
                        # element (the first grafted path always keeps
                        # its first hop) — so most discards need no tree
                        # build.  Two or more distinct hops can still
                        # collapse to one root child during grafting, so
                        # that case falls through to the exact check.
                        first_hops.clear()
                        root_is_keyword = False
                        for member in assignment:
                            if member is None:
                                continue
                            hop = parents[lane_of[member]][v]
                            if hop < 0:
                                root_is_keyword = True
                            else:
                                first_hops.add(hop)
                        if len(first_hops) == 1 and not root_is_keyword:
                            continue
                        tree = _build_int_tree(
                            v,
                            assignment,
                            lane_of,
                            parents,
                            parws,
                            path_cache,
                        )
                        if len(first_hops) > 1 and (
                            _discard_single_child_root_int(tree)
                        ):
                            continue
                        emission = consider(tree)
                        if emission is not None:
                            if profile is not None:
                                profile.answers_emitted += 1
                            yield emission
                            if emitted_count >= max_results:
                                return
            lists[term_index].append(origin)

    # Drain: remaining buffered trees in decreasing relevance.
    while len(output) and emitted_count < max_results:
        key, tree, relevance = output.pop_best()
        emitted_keys.add(key)
        if profile is not None:
            profile.answers_emitted += 1
        yield ScoredAnswer(materialize(tree), relevance, emitted_count)
        emitted_count += 1


def _build_int_tree(
    root: int,
    assignment: Sequence[Optional[int]],
    lane_of: Dict[int, int],
    parents: List,
    parws: List,
    path_cache: Dict[int, List[int]],
) -> _IntTree:
    """Union-of-paths graft, int edition of :meth:`AnswerTree.from_paths`.

    Edge weights come from the parent-weight arrays captured at
    relaxation time (the exact float ``graph.edge_weight`` would
    return), and dict insertion order replicates the reference graft
    order so the eventual ``AnswerTree.weight`` sums identically.
    """
    parent: Dict[int, int] = {}
    in_tree = {root}
    edge_weights: Dict[Tuple[int, int], float] = {}
    keyword_nodes: List[Optional[int]] = []
    for origin in assignment:
        if origin is None:
            keyword_nodes.append(None)
            continue
        lane = lane_of[origin]
        path = path_cache.get(origin)
        if path is None:
            lane_parent = parents[lane]
            path = [root]
            current = lane_parent[root]
            while current >= 0:
                path.append(current)
                current = lane_parent[current]
            path_cache[origin] = path
        keyword_nodes.append(path[-1])
        graft = 0
        for position in range(len(path) - 1, -1, -1):
            if path[position] in in_tree:
                graft = position
                break
        lane_parw = parws[lane]
        for position in range(graft, len(path) - 1):
            source, target = path[position], path[position + 1]
            if target in in_tree:
                raise GraphError(f"path re-enters the tree at {target!r}")
            parent[target] = source
            in_tree.add(target)
            edge_weights[(source, target)] = lane_parw[source]
    return (root, parent, tuple(keyword_nodes), edge_weights)


def _discard_single_child_root_int(tree: _IntTree) -> bool:
    """The Fig. 3 discard rule on int trees (see
    :func:`repro.core.search._discard_single_child_root`)."""
    root, parent, keyword_nodes, _edge_weights = tree
    if not parent:
        return False
    children_of_root = 0
    for node_parent in parent.values():
        if node_parent == root:
            children_of_root += 1
            if children_of_root > 1:
                return False
    if children_of_root != 1:
        return False
    return root not in set(keyword_nodes)
