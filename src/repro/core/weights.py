"""Edge weights and node prestige for the data graph (paper Sec. 2.2).

The model has three knobs, all captured by :class:`WeightPolicy`:

* the (generally asymmetric) similarity ``s(R1, R2)`` between a
  referencing relation and a referenced relation — forward-edge weights
  ("it can be set to any desired value to reflect the importance of the
  link; small values correspond to greater proximity");
* backward-edge weights: ``s_b(R_u, R_v) * IN_{R_u}(v)`` where
  ``IN_{R_u}(v)`` is the indegree of ``v`` contributed by tuples of the
  referencing relation ``R_u`` — so hub nodes get expensive back edges;
* the Eq. 1 merge rule when both directions exist: ``min`` (the paper's
  choice) or ``parallel`` (the electrical-resistance alternative the
  paper mentions: "one may use the equivalent parallel resistance").

Node prestige is the indegree in the paper's implementation;
``"pagerank"`` selects the authority-transfer extension of Sec. 7, and
``"none"`` disables prestige (all node weights equal — the lambda=0
ablation can also be reached through scoring).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.errors import GraphError

#: Key into the similarity tables: (referencing relation, referenced relation).
RelationPair = Tuple[str, str]

_MERGE_RULES = ("min", "parallel")
_PRESTIGE_MODES = ("indegree", "pagerank", "none")


@dataclass
class WeightPolicy:
    """All weighting choices for building the data graph.

    Attributes:
        default_similarity: forward weight used for relation pairs not
            listed in ``similarities`` (paper default: 1).
        similarities: per ``(referencing, referenced)`` forward weights,
            e.g. ``{("cites", "paper"): 2.0}`` to make citation links
            weaker than authorship links as in the paper's example.
        default_backward_similarity: multiplier for backward edges before
            the indegree factor.
        backward_similarities: per-pair backward multipliers.
        merge_rule: ``"min"`` (Eq. 1) or ``"parallel"`` (resistance).
        prestige: ``"indegree"`` (paper), ``"pagerank"`` (Sec. 7
            extension) or ``"none"``.
        pagerank_damping: damping factor when ``prestige="pagerank"``.
        backward_indegree_scaling: scale back edges by the referencing
            relation's indegree contribution (the paper's hub fix).
            Disabling it reproduces the naive "treat links as
            undirected" model the paper argues against (Sec. 2.1) — the
            back-edge ablation benchmark flips this flag.
    """

    default_similarity: float = 1.0
    similarities: Dict[RelationPair, float] = field(default_factory=dict)
    default_backward_similarity: float = 1.0
    backward_similarities: Dict[RelationPair, float] = field(default_factory=dict)
    merge_rule: str = "min"
    prestige: str = "indegree"
    pagerank_damping: float = 0.85
    backward_indegree_scaling: bool = True

    def __post_init__(self) -> None:
        if self.merge_rule not in _MERGE_RULES:
            raise GraphError(
                f"merge_rule must be one of {_MERGE_RULES}, got {self.merge_rule!r}"
            )
        if self.prestige not in _PRESTIGE_MODES:
            raise GraphError(
                f"prestige must be one of {_PRESTIGE_MODES}, got {self.prestige!r}"
            )
        if self.default_similarity <= 0:
            raise GraphError("default_similarity must be positive")

    # -- similarity lookups ----------------------------------------------------

    def forward_similarity(self, referencing: str, referenced: str) -> float:
        """``s(R1, R2)`` — the forward edge weight for one FK reference."""
        return self.similarities.get(
            (referencing, referenced), self.default_similarity
        )

    def backward_similarity(self, referencing: str, referenced: str) -> float:
        """``s_b(R1, R2)`` — backward multiplier (before indegree)."""
        return self.backward_similarities.get(
            (referencing, referenced), self.default_backward_similarity
        )

    def backward_weight(
        self, referencing: str, referenced: str, indegree_from_referencing: int
    ) -> float:
        """Weight of the back edge ``referenced_tuple -> referencing_tuple``.

        Directly proportional to the number of links to the referenced
        tuple from tuples of the referencing relation (Sec. 2.1); the
        indegree is at least 1 whenever a back edge exists.
        """
        base = self.backward_similarity(referencing, referenced)
        if not self.backward_indegree_scaling:
            return base
        return base * max(1, indegree_from_referencing)

    def merge(self, first: float, second: float) -> float:
        """Combine two candidate weights for the same directed edge (Eq. 1)."""
        if self.merge_rule == "min":
            return min(first, second)
        # Parallel resistance: 1/W = 1/w1 + 1/w2.
        if first <= 0 or second <= 0:
            return 0.0
        return (first * second) / (first + second)
