"""Exception hierarchy shared by every ``repro`` subpackage.

All library errors derive from :class:`ReproError` so that callers can
catch everything raised by this package with a single ``except`` clause,
while still being able to discriminate finer-grained failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class SchemaError(ReproError):
    """A schema definition is invalid (duplicate columns, bad FK, ...)."""


class IntegrityError(ReproError):
    """A data modification would violate a declared constraint."""


class UnknownTableError(SchemaError):
    """A referenced table does not exist in the catalog."""

    def __init__(self, table_name: str):
        super().__init__(f"unknown table: {table_name!r}")
        self.table_name = table_name


class UnknownColumnError(SchemaError):
    """A referenced column does not exist in its table."""

    def __init__(self, table_name: str, column_name: str):
        super().__init__(f"unknown column: {table_name!r}.{column_name!r}")
        self.table_name = table_name
        self.column_name = column_name


class TypeMismatchError(IntegrityError):
    """A value does not conform to the declared column type."""


class SQLSyntaxError(ReproError):
    """The SQL subset parser rejected a statement."""

    def __init__(self, message: str, statement: str = ""):
        detail = f"{message}"
        if statement:
            detail = f"{message} (in statement: {statement!r})"
        super().__init__(detail)
        self.statement = statement


class GraphError(ReproError):
    """An operation on the data graph failed."""


class UnknownNodeError(GraphError):
    """A node id is not present in the graph."""

    def __init__(self, node: object):
        super().__init__(f"unknown node: {node!r}")
        self.node = node


class QueryError(ReproError):
    """A keyword query is malformed or cannot be answered."""


class EmptyQueryError(QueryError):
    """The query contained no usable search terms."""


class IndexError_(ReproError):
    """A keyword-index operation failed (named with a trailing underscore
    to avoid shadowing the builtin :class:`IndexError`)."""


class BrowseError(ReproError):
    """A browsing request was invalid (bad URL, unknown control, ...)."""


class XMLError(ReproError):
    """An XML document is malformed or structurally invalid."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)
        self.line = line
        self.column = column


class AuthorizationError(ReproError):
    """A principal attempted an operation its policy does not allow."""


class FederationError(ReproError):
    """A multi-database federation is misconfigured (unknown member
    database, dangling external link, duplicate member name, ...)."""


class ShardError(ReproError):
    """The shard subsystem is misconfigured or a shard failed (bad
    partition strategy, lossy stitch, dead shard worker process, ...)."""


class StoreError(ReproError):
    """The delta-log write path failed (reclaimed epoch requested,
    replica divergence on replay, bad log configuration, ...)."""


class WalError(StoreError):
    """The durable epoch log is corrupt or misused (mid-log torn
    record, epoch-number gap on append, refused resume after missing
    history, ...).  Torn *tails* are not errors — the reader stops at
    the last complete epoch and the writer truncates them on open."""


class ServeError(ReproError):
    """The query-serving engine could not process a request."""


class PoolSaturatedError(ServeError):
    """The worker pool's bounded task queue is full."""


class EngineOverloadedError(ServeError):
    """Admission control shed the request (queue at its bound)."""


class DeadlineExceededError(ServeError):
    """The request's deadline expired before a worker could finish it."""


class EngineStoppedError(ServeError):
    """The engine (or pool) has been stopped and accepts no new work."""


class BatchMutationError(ServeError):
    """A batch mutation failed part-way; nothing was published.

    Carries the zero-based index of the failing operation so callers
    can retry or report precisely; the original exception rides along
    as both :attr:`cause` and ``__cause__``.
    """

    def __init__(self, index: int, cause: BaseException):
        super().__init__(
            f"batch operation {index} failed "
            f"({type(cause).__name__}: {cause}); batch rolled back, "
            "nothing published"
        )
        self.index = index
        self.cause = cause


class ClusterError(ReproError):
    """The cluster layer refused a spec or a request.

    Every invalid :class:`~repro.cluster.spec.ClusterSpec` — conflicting
    topology flags, a follower without a WAL, a durable log over the
    deep-copy write path, ... — fails through this one error type with
    one message format (``invalid cluster spec: <detail>``), replacing
    the per-flag checks ``banks serve`` used to hand-roll.  Runtime
    cluster misuse (mutating a read-only follower, an unknown
    consistency level) raises it too.
    """


class NetError(ReproError):
    """The HTTP serving tier refused or failed a request.

    Raised by :mod:`repro.net` for malformed wire payloads, failed
    authentication and client-side HTTP failures.  Carries the HTTP
    ``status`` when one exists (``None`` for transport errors — a
    connection refused or reset before any response arrived).
    """

    def __init__(self, message: str, status=None):
        super().__init__(message)
        self.status = status


class IngestError(ReproError):
    """The bulk-ingestion pipeline refused or failed a job.

    Raised by :mod:`repro.ingest` for malformed source specifiers and
    records, job-registry misuse (unknown or corrupt job files, an
    illegal state transition), and chunks that exhausted their retry
    budget — the job file records the failure (``state="failed"`` plus
    the error text) before this propagates, so ``banks jobs`` shows
    why and ``banks ingest --resume`` can pick the job back up.
    """
