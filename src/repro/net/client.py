"""HTTP clients for the serving tier.

:class:`BanksClient` is the user-facing client: blocking, stdlib
``http.client`` underneath, one connection per request (the server
keeps connections alive, but a search client's request rate never
justifies pool complexity — correctness under replica restarts does).
``query_stream`` exposes the SSE endpoint as a generator of
``(event, data)`` pairs, answers arriving as the remote kernel finds
them.

:class:`RemoteReplica` adapts that client to the worker interface
:class:`~repro.cluster.replicaset.ReplicaSet` dispatches to — the
piece that turns N ``banks serve --http`` processes into one
replicated front end.  Replication inverts versus local workers: the
front end does **not** push WAL epochs (the remote process tails its
own log); ``applied_epoch`` is read back from ``/v1/health`` (briefly
cached — balancing reads it on every dispatch), and ``catch_up``
polls it.  Transport failures surface as
:class:`~repro.errors.ClusterError`, which is exactly what the
replica set's failover path catches.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Dict, Iterator, List, Optional, Tuple
from urllib.parse import urlsplit

from repro.errors import ClusterError, NetError
from repro.net.schema import WIRE_VERSION, tree_from_wire

_HEALTH_TTL_SECONDS = 0.25


def _query_text(query: Any) -> str:
    """The wire form of a query: strings pass through; parsed queries
    reassemble from their raw terms."""
    if isinstance(query, str):
        return query
    terms = getattr(query, "terms", None)
    if terms is not None:
        return " ".join(term.raw for term in terms)
    return str(query)


class BanksClient:
    """Talk to one ``banks serve --http`` process.

    Args:
        url: base URL, e.g. ``http://127.0.0.1:8754``.
        token: bearer token (omit against an open server).
        timeout: socket timeout in seconds for each request.
    """

    def __init__(
        self,
        url: str,
        token: Optional[str] = None,
        timeout: float = 30.0,
    ):
        parts = urlsplit(url)
        if parts.scheme not in ("http", "https") or not parts.netloc:
            raise NetError(f"malformed server URL {url!r}")
        if parts.scheme == "https":
            raise NetError(
                "https is not terminated by the serving tier; put a "
                "TLS proxy in front and point the client at it over http"
            )
        self.url = url.rstrip("/")
        self.netloc = parts.netloc
        self.token = token
        self.timeout = timeout

    # -- plumbing --------------------------------------------------------------

    def _headers(self, trace_id: Optional[str] = None) -> Dict[str, str]:
        headers = {"Accept": "application/json"}
        if self.token:
            headers["Authorization"] = f"Bearer {self.token}"
        if trace_id:
            headers["X-Trace-Id"] = trace_id
        return headers

    def _connect(self) -> http.client.HTTPConnection:
        return http.client.HTTPConnection(self.netloc, timeout=self.timeout)

    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, Any]] = None,
        trace_id: Optional[str] = None,
    ) -> Dict[str, Any]:
        connection = self._connect()
        try:
            headers = self._headers(trace_id)
            body = None
            if payload is not None:
                body = json.dumps(payload).encode("utf-8")
                headers["Content-Type"] = "application/json"
            try:
                connection.request(method, path, body=body, headers=headers)
                response = connection.getresponse()
                raw = response.read()
            except (OSError, http.client.HTTPException) as error:
                raise NetError(f"cannot reach {self.url}: {error}")
            try:
                document = json.loads(raw.decode("utf-8")) if raw else {}
            except (UnicodeDecodeError, json.JSONDecodeError):
                document = {}
            if response.status >= 400:
                message = (
                    document.get("error")
                    if isinstance(document, dict)
                    else None
                )
                raise NetError(
                    message or f"HTTP {response.status} from {self.url}{path}",
                    status=response.status,
                )
            return document
        finally:
            connection.close()

    # -- endpoints -------------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        return self._request("GET", "/v1/health")

    def metrics(self) -> str:
        connection = self._connect()
        try:
            try:
                connection.request(
                    "GET", "/metrics", headers=self._headers()
                )
                response = connection.getresponse()
                raw = response.read()
            except (OSError, http.client.HTTPException) as error:
                raise NetError(f"cannot reach {self.url}: {error}")
            if response.status >= 400:
                raise NetError(
                    f"HTTP {response.status} from {self.url}/metrics",
                    status=response.status,
                )
            return raw.decode("utf-8")
        finally:
            connection.close()

    def query(
        self,
        query: Any,
        k: int = 10,
        offset: int = 0,
        consistency: str = "eventual",
        staleness_bound: Optional[int] = None,
        deadline: Optional[float] = None,
        trace_id: Optional[str] = None,
    ) -> Dict[str, Any]:
        """POST ``/v1/query``; returns the decoded result document."""
        payload: Dict[str, Any] = {
            "query": _query_text(query),
            "k": k,
            "offset": offset,
            "consistency": consistency,
        }
        if staleness_bound is not None:
            payload["staleness_bound"] = staleness_bound
        if deadline is not None:
            payload["deadline"] = deadline
        if trace_id is not None:
            payload["trace_id"] = trace_id
        return self._request("POST", "/v1/query", payload, trace_id)

    def query_stream(
        self,
        query: Any,
        k: int = 10,
        offset: int = 0,
        consistency: str = "eventual",
        staleness_bound: Optional[int] = None,
        deadline: Optional[float] = None,
        trace_id: Optional[str] = None,
    ) -> Iterator[Tuple[str, Dict[str, Any]]]:
        """POST ``/v1/query/stream``; yields ``(event, data)`` pairs —
        ``answer`` events as the remote kernel emits them, then one
        ``result`` (or ``error``) event, then the stream ends."""
        payload: Dict[str, Any] = {
            "query": _query_text(query),
            "k": k,
            "offset": offset,
            "consistency": consistency,
        }
        if staleness_bound is not None:
            payload["staleness_bound"] = staleness_bound
        if deadline is not None:
            payload["deadline"] = deadline
        if trace_id is not None:
            payload["trace_id"] = trace_id
        connection = self._connect()
        try:
            headers = self._headers(trace_id)
            headers["Content-Type"] = "application/json"
            headers["Accept"] = "text/event-stream"
            try:
                connection.request(
                    "POST",
                    "/v1/query/stream",
                    body=json.dumps(payload).encode("utf-8"),
                    headers=headers,
                )
                response = connection.getresponse()
            except (OSError, http.client.HTTPException) as error:
                raise NetError(f"cannot reach {self.url}: {error}")
            if response.status >= 400:
                raw = response.read()
                try:
                    document = json.loads(raw.decode("utf-8"))
                except (UnicodeDecodeError, json.JSONDecodeError):
                    document = {}
                raise NetError(
                    document.get("error")
                    or f"HTTP {response.status} from {self.url}/v1/query/stream",
                    status=response.status,
                )
            name: Optional[str] = None
            data_lines: List[str] = []
            while True:
                raw_line = response.readline()
                if not raw_line:
                    return
                line = raw_line.decode("utf-8").rstrip("\r\n")
                if not line:
                    if name is not None or data_lines:
                        data = "\n".join(data_lines)
                        yield (
                            name or "message",
                            json.loads(data) if data else {},
                        )
                        if name in ("result", "error"):
                            return
                    name, data_lines = None, []
                    continue
                if line.startswith("event:"):
                    name = line[len("event:") :].strip()
                elif line.startswith("data:"):
                    data_lines.append(line[len("data:") :].strip())
        finally:
            connection.close()


class RemoteReplica:
    """One remote serving process, worn as a replica-set worker.

    The interface mirrors the in-process workers
    (:meth:`search_scored` returning ``(tree, relevance)`` pairs,
    ``applied_epoch`` / ``alive`` / ``catch_up`` / ``kill`` /
    ``stop``), so :class:`~repro.cluster.replicaset.ReplicaSet`
    balances, bounds staleness and fails over without knowing the
    worker is on the far side of a socket.
    """

    def __init__(
        self,
        url: str,
        index: int = 0,
        token: Optional[str] = None,
        timeout: float = 30.0,
    ):
        self.client = BanksClient(url, token=token, timeout=timeout)
        self.url = self.client.url
        self.index = index
        self.backend = "remote"
        self._dead = False
        self._health_stamp = 0.0
        self._health: Dict[str, Any] = {}

    # -- health / staleness ----------------------------------------------------

    def _poll_health(self, force: bool = False) -> Dict[str, Any]:
        now = time.monotonic()
        if force or now - self._health_stamp >= _HEALTH_TTL_SECONDS:
            self._health = self.client.health()
            self._health_stamp = now
        return self._health

    @property
    def applied_epoch(self) -> int:
        if self._dead:
            return 0
        try:
            return int(self._poll_health().get("epoch", 0))
        except NetError:
            return 0

    @property
    def alive(self) -> bool:
        if self._dead:
            return False
        try:
            self._poll_health()
            return True
        except NetError:
            return False

    def catch_up(self, epoch: int, timeout: float = 2.0) -> int:
        """Poll the remote's applied epoch until it reaches ``epoch``
        (the remote tails its own WAL — the front end only waits)."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                current = int(self._poll_health(force=True).get("epoch", 0))
            except NetError:
                current = 0
            if current >= epoch or time.monotonic() >= deadline:
                return current
            time.sleep(0.05)

    def apply_epochs(self, epochs) -> int:
        """The front end never pushes WAL history to a remote replica;
        its serving process replays the log itself."""
        return self.applied_epoch

    # -- queries ---------------------------------------------------------------

    def search_scored(
        self,
        query: Any,
        timeout: Optional[float] = None,
        max_results: int = 10,
        trace=None,
        trace_parent=None,
        profile=None,
        **kwargs,
    ) -> List[Tuple[Any, float]]:
        if self._dead:
            raise ClusterError(f"remote replica {self.url} was killed")
        span = (
            trace.begin(
                "replica.remote", parent_id=trace_parent, url=self.url
            )
            if trace is not None
            else None
        )
        try:
            document = self.client.query(
                query,
                k=max_results,
                deadline=timeout,
                trace_id=trace.trace_id if trace is not None else None,
            )
        except NetError as error:
            if span is not None:
                span.attrs["error"] = type(error).__name__
                trace.end(span)
            # Transport failures and server-side refusals become the
            # error class the replica set's failover path catches.
            raise ClusterError(
                f"remote replica {self.url} failed: {error}"
            ) from error
        scored = [
            (tree_from_wire(answer["tree"]), answer["relevance"])
            for answer in document.get("answers", ())
        ]
        if span is not None:
            span.attrs["answers"] = len(scored)
            trace.end(span)
        return scored

    # -- lifecycle -------------------------------------------------------------

    def kill(self) -> None:
        """Fault injection: stop talking to this remote (the remote
        process itself keeps running)."""
        self._dead = True

    def stop(self) -> None:
        self._dead = True


__all__ = ["BanksClient", "RemoteReplica", "WIRE_VERSION"]
