"""Authentication and per-client admission for the HTTP tier.

Two small, separable policies:

* :class:`TokenAuth` — static bearer tokens.  Constant-time
  comparison, no token ever echoed back.  An empty token set means an
  open server (demos, loopback benchmarks) — the CLI makes that an
  explicit choice, not a default surprise.
* :class:`RateLimiter` — a per-principal token bucket.  This is the
  *client-fairness* layer; it sits in front of the engine's own
  admission control (queue bounds, load shedding), which protects the
  *process*.  Both answer 429, and the body says which one refused.
"""

from __future__ import annotations

import hmac
import threading
import time
from typing import Dict, Iterable, Optional

from repro.errors import NetError


class TokenAuth:
    """Static bearer-token authentication.

    ``authenticate`` takes the raw ``Authorization`` header value and
    returns the matched token (the request's *principal*, which the
    rate limiter buckets by).  With no tokens configured every request
    authenticates as principal ``None`` and the limiter falls back to
    bucketing by peer address.
    """

    def __init__(self, tokens: Iterable[str] = ()):
        self.tokens = tuple(t for t in tokens if t)

    @property
    def open(self) -> bool:
        return not self.tokens

    def authenticate(self, header: Optional[str]) -> Optional[str]:
        """Return the principal, or raise :class:`NetError` (401)."""
        if self.open:
            return None
        if not header or not header.startswith("Bearer "):
            raise NetError(
                "missing bearer token (send 'Authorization: Bearer <token>')",
                status=401,
            )
        presented = header[len("Bearer ") :].strip()
        for token in self.tokens:
            if hmac.compare_digest(presented, token):
                return token
        raise NetError("invalid bearer token", status=401)


class RateLimiter:
    """A token bucket per principal.

    ``rate`` is sustained requests/second, ``burst`` the bucket depth
    (defaults to ``rate``).  ``rate <= 0`` disables limiting.  Buckets
    are created on first sight of a principal and refill continuously;
    a request either takes a whole token or is refused — there is no
    queueing at this layer (the engine's admission queue does that,
    with backpressure the client can see).
    """

    def __init__(self, rate: float = 0.0, burst: Optional[float] = None):
        self.rate = float(rate)
        self.burst = float(burst if burst is not None else max(rate, 1.0))
        self._lock = threading.Lock()
        self._buckets: Dict[str, "list"] = {}  # key -> [tokens, stamp]

    @property
    def enabled(self) -> bool:
        return self.rate > 0.0

    def admit(self, principal: Optional[str], peer: str = "") -> None:
        """Take one token for ``principal`` (or ``peer`` on an open
        server), or raise :class:`NetError` (429)."""
        if not self.enabled:
            return
        key = principal if principal is not None else (peer or "-")
        now = time.monotonic()
        with self._lock:
            bucket = self._buckets.get(key)
            if bucket is None:
                bucket = [self.burst, now]
                self._buckets[key] = bucket
            tokens, stamp = bucket
            tokens = min(self.burst, tokens + (now - stamp) * self.rate)
            if tokens < 1.0:
                bucket[0], bucket[1] = tokens, now
                raise NetError(
                    "client rate limit exceeded "
                    f"({self.rate:g} requests/s sustained, "
                    f"burst {self.burst:g})",
                    status=429,
                )
            bucket[0], bucket[1] = tokens - 1.0, now
