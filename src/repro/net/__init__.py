"""repro.net — the cluster over HTTP, answers streamed as found.

The serving tier (paper Sec. 6 envisions BANKS behind a web front
end): a zero-dependency asyncio HTTP server over
:class:`repro.cluster.Cluster`, a blocking client, and the
:class:`RemoteReplica` adapter that lets a local
:class:`~repro.cluster.replicaset.ReplicaSet` balance over serving
processes on other machines.

* :class:`HttpServer` / :class:`NetConfig` — ``/v1/query`` (JSON,
  paginated), ``/v1/query/stream`` (SSE, each answer tree flushed the
  moment the backward expansion emits it), ``/v1/health``,
  ``/metrics``; bearer-token auth and per-client rate limiting in
  front of the engine's own admission control.
* :class:`BanksClient` — blocking stdlib client; ``query_stream``
  yields ``(event, data)`` pairs as the remote kernel produces them.
* :class:`RemoteReplica` — the worker-interface adapter behind
  ``ClusterSpec(remote_replicas=...)``.
* :func:`run_net_benchmark` — parity, time-to-first-answer and
  throughput gates (``banks bench-net``).
"""

from repro.net.auth import RateLimiter, TokenAuth
from repro.net.bench import NetBenchReport, run_net_benchmark
from repro.net.client import BanksClient, RemoteReplica
from repro.net.schema import (
    WIRE_VERSION,
    WireQuery,
    decode_request,
    encode_answer,
    encode_result,
    sse_event,
    tree_from_wire,
    tree_to_wire,
)
from repro.net.server import HttpServer, NetConfig, serve_http

__all__ = [
    "BanksClient",
    "HttpServer",
    "NetBenchReport",
    "NetConfig",
    "RateLimiter",
    "RemoteReplica",
    "TokenAuth",
    "WIRE_VERSION",
    "WireQuery",
    "decode_request",
    "encode_answer",
    "encode_result",
    "run_net_benchmark",
    "serve_http",
    "sse_event",
    "tree_from_wire",
    "tree_to_wire",
]
