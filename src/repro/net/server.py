"""The asyncio HTTP server: ``repro.cluster`` over the wire.

One event loop, one reader/writer pair per connection, and *no* query
work on the loop itself — every ``Cluster`` call runs on an executor
thread so a slow backward expansion never stalls accepts or other
clients' streams.  The interesting route is ``/v1/query/stream``:
the executor thread drives :meth:`repro.cluster.Cluster.query_stream`
and feeds an ``asyncio.Queue`` via ``call_soon_threadsafe``, while the
coroutine drains it into SSE frames — each answer tree is flushed the
moment the kernel emits it, so the client's time-to-first-answer is
the kernel's, not the full top-k latency.

Routes (all JSON, all carrying ``"version": "v1"``):

========================  =====================================================
``GET /v1/health``        liveness + topology + applied epoch (no auth — load
                          balancers and :class:`~repro.net.client.RemoteReplica`
                          lag probes poll it)
``GET /metrics``          the cluster's text-format metrics
``POST /v1/query``        one request document in, one result document out
``POST /v1/query/stream`` same request, ``text/event-stream`` out: ``answer``
                          events as found, one final ``result`` event
========================  =====================================================

``/v1/query`` and ``/v1/query/stream`` also accept GET with URL query
parameters (``?q=...&k=...``) for curl-friendliness; POST bodies are
the canonical form.

Failure mapping is explicit: 401 unauthenticated, 429 client rate
limit *or* engine admission (:class:`~repro.errors.EngineOverloadedError`
— the body's ``error`` field says which), 504 deadline, 503 stopped
engine, 400 malformed request, 500 anything else.  Every error body is
``{"version", "error", "status", "trace_id"}``.
"""

from __future__ import annotations

import asyncio
import json
import socket
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qsl, urlsplit

from repro.cluster import Cluster, QueryRequest
from repro.errors import (
    ClusterError,
    DeadlineExceededError,
    EngineOverloadedError,
    EngineStoppedError,
    NetError,
    QueryError,
)
from repro.net.auth import RateLimiter, TokenAuth
from repro.net.schema import (
    WIRE_VERSION,
    WireQuery,
    decode_request,
    encode_answer,
    encode_result,
    sse_event,
)

_MAX_HEADER_BYTES = 32 * 1024
_MAX_BODY_BYTES = 1024 * 1024

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    401: "Unauthorized",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


@dataclass
class NetConfig:
    """How :class:`HttpServer` listens and admits.

    Attributes:
        host: bind address (default loopback — exposing a keyword
            search engine to a network is an explicit choice).
        port: TCP port; ``0`` picks a free one (tests, benchmarks) —
            read the bound port back from :attr:`HttpServer.port`.
        tokens: accepted bearer tokens; empty means an open server.
        rate: per-client sustained requests/second (``0`` disables).
        burst: per-client burst depth (default: ``max(rate, 1)``).
    """

    host: str = "127.0.0.1"
    port: int = 0
    tokens: Tuple[str, ...] = field(default_factory=tuple)
    rate: float = 0.0
    burst: Optional[float] = None


def _error_status(error: BaseException) -> int:
    if isinstance(error, NetError) and error.status is not None:
        return int(error.status)
    if isinstance(error, EngineOverloadedError):
        return 429
    if isinstance(error, DeadlineExceededError):
        return 504
    if isinstance(error, EngineStoppedError):
        return 503
    if isinstance(error, (ClusterError, QueryError)):
        return 400
    return 500


class HttpServer:
    """Serve one :class:`~repro.cluster.Cluster` over HTTP.

    Three ways to run it::

        HttpServer(cluster, NetConfig()).serve_forever()   # CLI
        server = HttpServer(cluster, NetConfig())
        server.start_background()                          # tests
        ...
        server.stop()

    or ``async with``-free embedding via :meth:`run` inside an
    existing event loop.  The server does not own the cluster — the
    caller closes it.
    """

    def __init__(self, cluster: Cluster, config: Optional[NetConfig] = None):
        self.cluster = cluster
        self.config = config or NetConfig()
        self.auth = TokenAuth(self.config.tokens)
        self.limiter = RateLimiter(self.config.rate, self.config.burst)
        self.port: Optional[int] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    # -- lifecycle -------------------------------------------------------------

    async def run(self) -> None:
        """Bind, serve until :meth:`stop`, then close the listener."""
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        server = await asyncio.start_server(
            self._handle_connection,
            host=self.config.host,
            port=self.config.port,
            family=socket.AF_INET,
        )
        self.port = server.sockets[0].getsockname()[1]
        self._ready.set()
        try:
            async with server:
                await self._stop_event.wait()
        finally:
            self._ready.clear()

    def serve_forever(self) -> None:
        """Run the event loop on the calling thread (the CLI path)."""
        try:
            asyncio.run(self.run())
        except KeyboardInterrupt:
            pass

    def start_background(self, timeout: float = 10.0) -> "HttpServer":
        """Serve from a daemon thread; returns once the port is bound."""

        def main() -> None:
            try:
                asyncio.run(self.run())
            except BaseException as error:  # surfaced to the waiter
                self._startup_error = error
                self._ready.set()

        self._thread = threading.Thread(
            target=main, name="banks-http", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout) and self._startup_error is None:
            raise NetError(f"HTTP server failed to bind within {timeout}s")
        if self._startup_error is not None:
            raise NetError(
                f"HTTP server failed to start: {self._startup_error}"
            )
        return self

    def stop(self, timeout: float = 10.0) -> None:
        """Stop the listener and join the background thread (if any)."""
        loop, stop_event = self._loop, self._stop_event
        if loop is not None and stop_event is not None:
            try:
                loop.call_soon_threadsafe(stop_event.set)
            except RuntimeError:
                pass  # loop already closed
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None

    @property
    def url(self) -> str:
        return f"http://{self.config.host}:{self.port}"

    # -- connection handling ---------------------------------------------------

    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        peer = writer.get_extra_info("peername") or ("?",)
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                keep_alive = await self._dispatch(request, writer, str(peer[0]))
                await writer.drain()
                if not keep_alive:
                    break
        except (
            ConnectionError,
            asyncio.IncompleteReadError,
            asyncio.CancelledError,
        ):
            # Cancellation is server shutdown with the connection idle
            # in a keep-alive read — treat it as a peer hangup.
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Dict[str, Any]]:
        """Parse one HTTP/1.1 request; ``None`` on clean EOF."""
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError as error:
            if not error.partial:
                return None
            raise
        except asyncio.LimitOverrunError:
            raise NetError("request head too large", status=413)
        if len(head) > _MAX_HEADER_BYTES:
            raise NetError("request head too large", status=413)
        request_line, *header_lines = head.decode("latin-1").split("\r\n")
        parts = request_line.split(" ")
        if len(parts) != 3:
            raise NetError(f"malformed request line {request_line!r}", status=400)
        method, target, _version = parts
        headers: Dict[str, str] = {}
        for line in header_lines:
            if not line or ":" not in line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        body = b""
        length = int(headers.get("content-length", 0) or 0)
        if length > _MAX_BODY_BYTES:
            raise NetError("request body too large", status=413)
        if length:
            body = await reader.readexactly(length)
        return {
            "method": method.upper(),
            "target": target,
            "headers": headers,
            "body": body,
        }

    async def _dispatch(
        self,
        request: Dict[str, Any],
        writer: asyncio.StreamWriter,
        peer: str,
    ) -> bool:
        method = request["method"]
        url = urlsplit(request["target"])
        path = url.path.rstrip("/") or "/"
        headers = request["headers"]
        keep_alive = headers.get("connection", "").lower() != "close"
        trace_id = headers.get("x-trace-id") or None
        try:
            if path == "/v1/health":
                self._require_method(method, ("GET",))
                self._send_json(writer, 200, self._health(), keep_alive)
                return keep_alive
            principal = self.auth.authenticate(headers.get("authorization"))
            self.limiter.admit(principal, peer)
            if path == "/metrics":
                self._require_method(method, ("GET",))
                self._send_text(writer, 200, self._metrics_text(), keep_alive)
                return keep_alive
            if path == "/v1/query":
                wire = self._wire_query(method, url, request["body"], trace_id)
                payload = await self._run_query(wire)
                self._send_json(
                    writer, 200, payload, keep_alive,
                    extra={"X-Trace-Id": payload.get("trace_id") or ""},
                )
                return keep_alive
            if path == "/v1/query/stream":
                wire = self._wire_query(method, url, request["body"], trace_id)
                await self._stream_query(writer, wire)
                return False  # SSE responses end the connection
            raise NetError(f"no route for {path}", status=404)
        except BaseException as error:  # every failure is a JSON response
            if isinstance(error, (ConnectionError, asyncio.CancelledError)):
                raise
            status = _error_status(error)
            body = {
                "version": WIRE_VERSION,
                "error": str(error) or type(error).__name__,
                "status": status,
                "trace_id": trace_id,
            }
            self._send_json(writer, status, body, keep_alive)
            return keep_alive and status < 500

    # -- response writing ------------------------------------------------------

    @staticmethod
    def _send(
        writer: asyncio.StreamWriter,
        status: int,
        content_type: str,
        body: bytes,
        keep_alive: bool,
        extra: Optional[Dict[str, str]] = None,
    ) -> None:
        lines = [
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        for name, value in (extra or {}).items():
            if value:
                lines.append(f"{name}: {value}")
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        writer.write(head + body)

    def _send_json(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Dict[str, Any],
        keep_alive: bool,
        extra: Optional[Dict[str, str]] = None,
    ) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self._send(
            writer, status, "application/json", body, keep_alive, extra
        )

    def _send_text(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        text: str,
        keep_alive: bool,
    ) -> None:
        self._send(
            writer,
            status,
            "text/plain; charset=utf-8",
            text.encode("utf-8"),
            keep_alive,
        )

    @staticmethod
    def _require_method(method: str, allowed: Tuple[str, ...]) -> None:
        if method not in allowed:
            raise NetError(
                f"method {method} not allowed (use {', '.join(allowed)})",
                status=405,
            )

    # -- routes ----------------------------------------------------------------

    def _health(self) -> Dict[str, Any]:
        spec = self.cluster.spec
        return {
            "version": WIRE_VERSION,
            "status": "ok",
            "topology": spec.topology,
            "epoch": self.cluster.epoch,
            "auth": "token" if not self.auth.open else "open",
        }

    def _metrics_text(self) -> str:
        registry = self.cluster.metrics
        if registry is None:
            return "# no engine-backed metrics on this topology\n"
        return registry.render_text()

    def _wire_query(
        self,
        method: str,
        url,
        body: bytes,
        trace_id: Optional[str],
    ) -> WireQuery:
        self._require_method(method, ("GET", "POST"))
        if method == "POST":
            if not body:
                raise NetError("POST needs a JSON request body", status=400)
            try:
                payload = json.loads(body.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as error:
                raise NetError(f"request body is not JSON: {error}", status=400)
        else:
            params = dict(parse_qsl(url.query))
            if "q" in params:
                params["query"] = params.pop("q")
            payload = {k: v for k, v in params.items() if v != ""}
        if trace_id and not payload.get("trace_id"):
            payload = dict(payload)
            payload["trace_id"] = trace_id
        return decode_request(payload)

    def _request_for(self, wire: WireQuery) -> QueryRequest:
        # The backend ranks offset + k answers so the page slice is
        # exact; pagination itself happens in encode_result.
        return QueryRequest(
            keywords=wire.query,
            k=wire.offset + wire.k,
            deadline=wire.deadline,
            consistency=wire.consistency,
            staleness_bound=wire.staleness_bound,
            trace_id=wire.trace_id,
        )

    async def _run_query(self, wire: WireQuery) -> Dict[str, Any]:
        loop = asyncio.get_running_loop()
        request = self._request_for(wire)
        result = await loop.run_in_executor(
            None, lambda: self.cluster.query(request)
        )
        return encode_result(result, wire)

    async def _stream_query(
        self, writer: asyncio.StreamWriter, wire: WireQuery
    ) -> None:
        """SSE: drive ``Cluster.query_stream`` on an executor thread,
        flush each answer frame the moment the kernel surfaces it."""
        loop = asyncio.get_running_loop()
        events: "asyncio.Queue" = asyncio.Queue()
        request = self._request_for(wire)

        def produce() -> None:
            def put(item) -> None:
                loop.call_soon_threadsafe(events.put_nowait, item)

            try:
                for kind, payload in self.cluster.query_stream(request):
                    put((kind, payload))
            except BaseException as error:
                put(("error", error))

        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: text/event-stream\r\n"
            b"Cache-Control: no-store\r\n"
            b"Connection: close\r\n\r\n"
        )
        await writer.drain()
        worker = threading.Thread(
            target=produce, name="banks-http-stream", daemon=True
        )
        worker.start()
        rank = 0
        while True:
            kind, payload = await events.get()
            if kind == "error":
                status = _error_status(payload)
                writer.write(
                    sse_event(
                        "error",
                        {
                            "version": WIRE_VERSION,
                            "error": str(payload) or type(payload).__name__,
                            "status": status,
                        },
                    )
                )
                await writer.drain()
                return
            if kind == "answer":
                if rank >= wire.offset and rank < wire.offset + wire.k:
                    writer.write(sse_event("answer", encode_answer(payload, rank)))
                    await writer.drain()
                rank += 1
                continue
            writer.write(sse_event("result", encode_result(payload, wire)))
            await writer.drain()
            return


def serve_http(cluster: Cluster, config: Optional[NetConfig] = None) -> None:
    """Convenience for the CLI: build, bind, serve until interrupted."""
    HttpServer(cluster, config).serve_forever()
