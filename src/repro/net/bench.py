"""The ``banks bench-net`` measurement.

Three claims about the HTTP tier, measured on one box against a real
server on a loopback socket:

1. **Parity** — ``/v1/query`` answers the benchmark battery with
   exactly the in-process :meth:`~repro.cluster.Cluster.query` top-k
   (roots and scores): the wire codec and the executor hop change
   *where* the kernel runs, never what it returns.
2. **Streaming beats waiting** — on ``/v1/query/stream`` the first
   ``answer`` event lands strictly before the closing ``result``
   event, and the client's time-to-first-answer is strictly below the
   full-query wall time: the SSE path flushes answers as the
   backward expansion emits them rather than after the heap settles.
3. **Serving overhead is bounded** — end-to-end HTTP QPS on the
   battery, recorded so ``benchmarks/check_regression.py`` catches a
   transport regression (framing, executor hand-off, JSON codec).

The battery reuses the demo query sets, so a parity failure points at
the codec, not at ranking (which has its own gates).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.cluster.api import Cluster, QueryRequest
from repro.cluster.spec import ClusterSpec
from repro.errors import ReproError
from repro.net.client import BanksClient
from repro.net.server import HttpServer, NetConfig


def _local_signature(answers) -> List[Tuple]:
    return [(list(a.tree.root), round(a.relevance, 9)) for a in answers]


def _wire_signature(document) -> List[Tuple]:
    return [
        (list(a["root"]), round(a["relevance"], 9))
        for a in document["answers"]
    ]


@dataclass
class NetBenchReport:
    """Outcome of one HTTP-tier measurement."""

    dataset: str
    k: int
    parity_matched: int
    parity_total: int
    ttfa_seconds: float
    stream_seconds: float
    stream_answers: int
    first_before_result: bool
    requests: int
    http_seconds: float

    @property
    def parity_ok(self) -> bool:
        return (
            self.parity_total > 0
            and self.parity_matched == self.parity_total
        )

    @property
    def ttfa_ok(self) -> bool:
        """First answer strictly before the stream completes."""
        return (
            self.stream_answers >= 1
            and self.first_before_result
            and self.ttfa_seconds < self.stream_seconds
        )

    @property
    def qps(self) -> float:
        return self.requests / self.http_seconds if self.http_seconds else 0.0

    @property
    def ok(self) -> bool:
        return self.parity_ok and self.ttfa_ok

    def render(self) -> str:
        parity = (
            f"{self.parity_matched}/{self.parity_total} "
            f"{'exact' if self.parity_ok else 'MISMATCH'}"
        )
        lines = [
            f"dataset             : {self.dataset}",
            f"battery             : {self.parity_total} queries, "
            f"top-{self.k}",
            f"HTTP parity         : {parity} (vs in-process, "
            "roots + scores)",
            f"time to first answer: {1000 * self.ttfa_seconds:.1f} ms of "
            f"{1000 * self.stream_seconds:.1f} ms stream "
            f"({self.stream_answers} answers, "
            f"{'streamed' if self.ttfa_ok else 'NOT STREAMED'})",
            f"HTTP throughput     : {self.requests} requests in "
            f"{self.http_seconds:.3f} s ({self.qps:.1f} QPS)",
        ]
        return "\n".join(lines)


def run_net_benchmark(
    database,
    queries: Sequence[str],
    dataset: str = "",
    k: int = 5,
    stream_query: Optional[str] = None,
    requests: int = 32,
) -> NetBenchReport:
    """Measure the HTTP tier; see the module docstring.

    One cluster serves both sides: the in-process reference queries and
    the :class:`~repro.net.server.HttpServer` bound to a loopback
    port, so parity compares transports, not database forks.
    """
    if not queries:
        raise ReproError("the HTTP benchmark needs a non-empty battery")
    battery = list(queries)
    stream_query = stream_query or battery[0]

    with Cluster(ClusterSpec(), database=database.fork()) as cluster:
        server = HttpServer(cluster, NetConfig()).start_background()
        try:
            client = BanksClient(server.url)

            # 1. Parity: wire top-k vs in-process top-k, whole battery.
            parity_matched = 0
            for query in battery:
                local = _local_signature(
                    cluster.query(QueryRequest(query, k=k)).answers
                )
                wire = _wire_signature(client.query(query, k=k))
                if wire == local:
                    parity_matched += 1

            # 2. Streaming: first answer strictly before completion.
            started = time.perf_counter()
            ttfa = 0.0
            stream_answers = 0
            first_before_result = False
            stream_seconds = 0.0
            for event, _data in client.query_stream(stream_query, k=k):
                now = time.perf_counter() - started
                if event == "answer":
                    if stream_answers == 0:
                        ttfa = now
                    stream_answers += 1
                elif event == "result":
                    stream_seconds = now
                    first_before_result = stream_answers >= 1
            if stream_seconds <= 0.0:
                stream_seconds = time.perf_counter() - started

            # 3. Throughput: sequential requests over the battery.
            started = time.perf_counter()
            for index in range(requests):
                client.query(battery[index % len(battery)], k=k)
            http_seconds = time.perf_counter() - started
        finally:
            server.stop()

    return NetBenchReport(
        dataset=dataset,
        k=k,
        parity_matched=parity_matched,
        parity_total=len(battery),
        ttfa_seconds=ttfa,
        stream_seconds=stream_seconds,
        stream_answers=stream_answers,
        first_before_result=first_before_result,
        requests=requests,
        http_seconds=http_seconds,
    )
