"""The versioned JSON wire schema of the HTTP serving tier.

One schema, two transports: ``/v1/query`` answers with one
:func:`encode_result` document; ``/v1/query/stream`` flushes the same
answers one :func:`encode_answer` at a time as server-sent events
(:func:`sse_event`), closing with the full result document so the
stream's final state is byte-equivalent to the non-streamed response.

Answer trees cross the wire whole — :func:`tree_to_wire` /
:func:`tree_from_wire` round-trip an
:class:`~repro.core.answer.AnswerTree` through plain JSON (nodes are
the relational ``(table, row)`` pairs), which is what lets a
:class:`~repro.net.client.RemoteReplica` hand results to a local
:class:`~repro.cluster.replicaset.ReplicaSet` front end as if they
came off a fork pipe.

Versioning: every response carries ``"version": "v1"``; requests with
unknown fields are refused (a typo must not silently change semantics
on a versioned surface).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.answer import AnswerTree
from repro.errors import NetError

#: The wire-schema version every v1 endpoint speaks.
WIRE_VERSION = "v1"

#: Request fields ``/v1/query`` and ``/v1/query/stream`` accept.
_REQUEST_FIELDS = (
    "query",
    "k",
    "offset",
    "consistency",
    "staleness_bound",
    "deadline",
    "trace_id",
)


@dataclass(frozen=True)
class WireQuery:
    """One decoded ``/v1/query`` request (transport-agnostic: the JSON
    body and the URL query string both decode to this)."""

    query: str
    k: int = 10
    offset: int = 0
    consistency: str = "eventual"
    staleness_bound: Optional[int] = None
    deadline: Optional[float] = None
    trace_id: Optional[str] = None


def decode_request(payload: Dict[str, Any]) -> WireQuery:
    """Validate and decode one request document.

    Raises :class:`~repro.errors.NetError` on a malformed payload —
    the server maps it to a 400.  Consistency-level validation is
    deliberately left to :class:`~repro.cluster.api.QueryRequest` (one
    validation path, one message).
    """
    if not isinstance(payload, dict):
        raise NetError("request body must be a JSON object", status=400)
    unknown = sorted(set(payload) - set(_REQUEST_FIELDS))
    if unknown:
        raise NetError(
            f"unknown request field(s): {', '.join(unknown)} "
            f"(the {WIRE_VERSION} schema accepts "
            f"{', '.join(_REQUEST_FIELDS)})",
            status=400,
        )
    query = payload.get("query")
    if not isinstance(query, str) or not query.strip():
        raise NetError(
            "request needs a non-empty string 'query' field", status=400
        )
    try:
        k = int(payload.get("k", 10))
        offset = int(payload.get("offset", 0))
    except (TypeError, ValueError):
        raise NetError("'k' and 'offset' must be integers", status=400)
    if k < 1:
        raise NetError(f"'k' must be >= 1 (got {k})", status=400)
    if offset < 0:
        raise NetError(f"'offset' must be >= 0 (got {offset})", status=400)
    staleness = payload.get("staleness_bound")
    if staleness is not None:
        try:
            staleness = int(staleness)
        except (TypeError, ValueError):
            raise NetError("'staleness_bound' must be an integer", status=400)
    deadline = payload.get("deadline")
    if deadline is not None:
        try:
            deadline = float(deadline)
        except (TypeError, ValueError):
            raise NetError("'deadline' must be a number", status=400)
    trace_id = payload.get("trace_id")
    if trace_id is not None and not isinstance(trace_id, str):
        raise NetError("'trace_id' must be a string", status=400)
    return WireQuery(
        query=query,
        k=k,
        offset=offset,
        consistency=payload.get("consistency") or "eventual",
        staleness_bound=staleness,
        deadline=deadline,
        trace_id=trace_id,
    )


# -- answer trees over the wire -----------------------------------------------


def _encode_node(node: Any) -> List[Any]:
    if isinstance(node, tuple) and len(node) == 2:
        return [node[0], node[1]]
    raise NetError(
        f"node {node!r} is not a relational (table, row) pair; the "
        "wire schema serves relational deployments"
    )


def _decode_node(value: Any) -> Tuple[Any, Any]:
    if not isinstance(value, (list, tuple)) or len(value) != 2:
        raise NetError(f"malformed wire node {value!r}")
    return (value[0], value[1])


def tree_to_wire(tree: AnswerTree) -> Dict[str, Any]:
    """An :class:`~repro.core.answer.AnswerTree` as plain JSON data."""
    edges = []
    for child, parent in tree.parent.items():
        weight = tree._edge_weights.get((parent, child), 0.0)
        edges.append([_encode_node(parent), _encode_node(child), weight])
    return {
        "root": _encode_node(tree.root),
        "edges": edges,
        "keyword_nodes": [
            None if node is None else _encode_node(node)
            for node in tree.keyword_nodes
        ],
    }


def tree_from_wire(payload: Dict[str, Any]) -> AnswerTree:
    """The inverse of :func:`tree_to_wire`."""
    if not isinstance(payload, dict) or "root" not in payload:
        raise NetError(f"malformed wire tree {payload!r}")
    parent: Dict[Any, Any] = {}
    edge_weights: Dict[Tuple[Any, Any], float] = {}
    for entry in payload.get("edges", ()):
        if not isinstance(entry, (list, tuple)) or len(entry) != 3:
            raise NetError(f"malformed wire edge {entry!r}")
        source = _decode_node(entry[0])
        target = _decode_node(entry[1])
        parent[target] = source
        edge_weights[(source, target)] = float(entry[2])
    return AnswerTree(
        _decode_node(payload["root"]),
        parent,
        tuple(
            None if node is None else _decode_node(node)
            for node in payload.get("keyword_nodes", ())
        ),
        edge_weights,
    )


# -- results over the wire ----------------------------------------------------


def encode_answer(
    answer: Any,
    rank: int,
    label: Optional[Callable[[Any], str]] = None,
) -> Dict[str, Any]:
    """One ranked answer as wire data.

    Accepts every answer shape the backends produce —
    :class:`~repro.core.banks.Answer`, ``ReplicaAnswer``,
    ``ShardAnswer`` and the kernel's raw ``ScoredAnswer`` — they all
    carry ``tree`` and ``relevance``.
    """
    tree = answer.tree
    payload: Dict[str, Any] = {
        "rank": rank,
        "root": _encode_node(tree.root),
        "relevance": answer.relevance,
        "tree": tree_to_wire(tree),
    }
    if label is not None:
        try:
            payload["label"] = label(tree.root)
        except Exception:
            pass
    shards = getattr(answer, "shards", None)
    if shards:
        payload["shards"] = sorted(shards() if callable(shards) else shards)
    return payload


def encode_result(
    result: Any,
    wire: WireQuery,
    label: Optional[Callable[[Any], str]] = None,
) -> Dict[str, Any]:
    """One :class:`~repro.cluster.api.QueryResult` as the ``/v1/query``
    response document.  Pagination happens here: the server queried
    ``offset + k`` answers; the page is the slice, ``total`` the full
    count the backend produced."""
    answers = result.answers
    page = answers[wire.offset : wire.offset + wire.k]
    return {
        "version": WIRE_VERSION,
        "query": wire.query,
        "k": wire.k,
        "offset": wire.offset,
        "total": len(answers),
        "answers": [
            encode_answer(answer, wire.offset + position, label)
            for position, answer in enumerate(page)
        ],
        "topology": result.topology,
        "served_by": result.served_by,
        "replica": result.replica,
        "shards": list(result.shards),
        "epoch": result.epoch,
        "consistency": result.consistency,
        "latency_ms": round(result.latency * 1000.0, 3),
        "trace_id": (
            result.trace.trace_id if result.trace is not None else None
        ),
    }


# -- server-sent events -------------------------------------------------------


def sse_event(event: str, data: Dict[str, Any]) -> bytes:
    """One ``text/event-stream`` frame (named event + one JSON data
    line, blank-line terminated)."""
    return (
        f"event: {event}\ndata: {json.dumps(data, sort_keys=True)}\n\n"
    ).encode("utf-8")


def parse_sse(lines) -> "list":
    """Parse an iterable of text lines into ``(event, data)`` pairs —
    the client-side inverse of :func:`sse_event`, shared with tests."""
    events = []
    name, data_lines = None, []
    for raw in lines:
        line = raw.rstrip("\r\n")
        if not line:
            if name is not None or data_lines:
                data = "\n".join(data_lines)
                events.append((name or "message", json.loads(data) if data else {}))
            name, data_lines = None, []
            continue
        if line.startswith("event:"):
            name = line[len("event:") :].strip()
        elif line.startswith("data:"):
            data_lines.append(line[len("data:") :].strip())
    if name is not None or data_lines:
        data = "\n".join(data_lines)
        events.append((name or "message", json.loads(data) if data else {}))
    return events
