"""The :class:`Federation`: several databases, one searchable graph.

Construction:

1. each member database contributes its own BANKS data graph (built by
   :func:`repro.core.model.build_data_graph` with the member's weight
   policy), re-keyed onto ``(database, table, rid)`` nodes;
2. external links contribute cross-database edges with the same
   forward/backward asymmetry as foreign keys — the backward edge's
   weight scales with the target's *cross-link indegree*, so a tuple
   referenced by hundreds of external tuples (a hub home page) does not
   collapse proximity, exactly the Sec. 2.1 argument;
3. cross-link references add to node prestige (a tuple heavily linked
   from other databases is important, the federated reading of inlink
   prestige).

:class:`FederatedBanks` then reuses the backward expanding search and
scorer unchanged over the unified graph.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Set, Tuple, Union

from repro.core.model import GraphStats, build_data_graph, link_tables
from repro.core.answer import AnswerTree
from repro.core.query import ParsedQuery, parse_query, resolve_term
from repro.core.scoring import Scorer, ScoringConfig
from repro.core.search import SearchConfig, backward_expanding_search
from repro.core.weights import WeightPolicy
from repro.errors import FederationError
from repro.federate.links import ExternalLink, FederatedNode, TupleLink
from repro.graph.digraph import DiGraph
from repro.relational.database import Database
from repro.text.inverted_index import InvertedIndex


class Federation:
    """A named collection of member databases plus external links."""

    def __init__(self, name: str = "federation"):
        self.name = name
        self._members: Dict[str, Database] = {}
        self._policies: Dict[str, WeightPolicy] = {}
        self._links: List[ExternalLink] = []
        self._tuple_links: List[TupleLink] = []

    # -- registration --------------------------------------------------------

    def register(
        self,
        name: str,
        database: Database,
        weight_policy: Optional[WeightPolicy] = None,
    ) -> None:
        """Add a member database under ``name``."""
        if name in self._members:
            raise FederationError(f"member {name!r} already registered")
        self._members[name] = database
        self._policies[name] = weight_policy or WeightPolicy()

    def member(self, name: str) -> Database:
        try:
            return self._members[name]
        except KeyError:
            raise FederationError(f"unknown member database {name!r}") from None

    @property
    def member_names(self) -> List[str]:
        return list(self._members)

    def add_link(self, link: ExternalLink) -> None:
        """Register a value-matching external link (validated eagerly)."""
        for db_name, table, column in (
            (link.source_db, link.source_table, link.source_column),
            (link.target_db, link.target_table, link.target_column),
        ):
            database = self.member(db_name)
            schema = database.schema.table(table)
            schema.column_position(column)  # raises on unknown column
        self._links.append(link)

    def add_tuple_link(self, link: TupleLink) -> None:
        """Register an explicit tuple-to-tuple link (a resolved HREF)."""
        for db_name, (table, rid) in (
            (link.source_db, link.source),
            (link.target_db, link.target),
        ):
            database = self.member(db_name)
            if not database.table(table).has_rid(rid):
                raise FederationError(
                    f"tuple link endpoint {db_name}.{table}:{rid} "
                    "does not exist"
                )
        self._tuple_links.append(link)

    @property
    def links(self) -> List[ExternalLink]:
        return list(self._links)

    # -- link resolution ------------------------------------------------------------

    def resolve_links(self) -> List[Tuple[FederatedNode, FederatedNode, float]]:
        """Materialise every external link into node pairs.

        Value-matching links hash the target column, then probe with
        every non-null source value; explicit tuple links pass through.
        """
        resolved: List[Tuple[FederatedNode, FederatedNode, float]] = []
        for link in self._links:
            target_db = self.member(link.target_db)
            target_table = target_db.table(link.target_table)
            position = target_table.schema.column_position(link.target_column)
            buckets: Dict[object, List[int]] = {}
            for row in target_table.scan():
                value = row.values[position]
                if value is not None:
                    buckets.setdefault(value, []).append(row.rid)

            source_db = self.member(link.source_db)
            source_table = source_db.table(link.source_table)
            source_position = source_table.schema.column_position(
                link.source_column
            )
            for row in source_table.scan():
                value = row.values[source_position]
                if value is None:
                    continue
                for target_rid in buckets.get(value, ()):
                    source_node: FederatedNode = (
                        link.source_db,
                        link.source_table,
                        row.rid,
                    )
                    target_node: FederatedNode = (
                        link.target_db,
                        link.target_table,
                        target_rid,
                    )
                    if source_node != target_node:
                        resolved.append((source_node, target_node, link.weight))
        for tuple_link in self._tuple_links:
            resolved.append(
                (
                    tuple_link.source_node,
                    tuple_link.target_node,
                    tuple_link.weight,
                )
            )
        return resolved

    # -- graph construction ------------------------------------------------------------

    def build_graph(self) -> Tuple[DiGraph, GraphStats]:
        """The unified federated data graph and its scoring normalisers."""
        if not self._members:
            raise FederationError("federation has no member databases")
        graph = DiGraph()

        for member_name, database in self._members.items():
            member_graph, _stats = build_data_graph(
                database, self._policies[member_name]
            )
            for node in member_graph.nodes():
                table, rid = node
                graph.add_node(
                    (member_name, table, rid),
                    weight=member_graph.node_weight(node),
                )
            for source, target, weight in member_graph.edges():
                graph.add_edge(
                    (member_name,) + source, (member_name,) + target, weight
                )

        resolved = self.resolve_links()
        cross_indegree: Dict[FederatedNode, int] = {}
        for _source, target, _weight in resolved:
            cross_indegree[target] = cross_indegree.get(target, 0) + 1

        for source, target, weight in resolved:
            if not graph.has_node(source) or not graph.has_node(target):
                raise FederationError(
                    f"external link endpoint missing from graph: "
                    f"{source} -> {target}"
                )
            _offer_min(graph, source, target, weight)
            backward = weight * max(1, cross_indegree.get(target, 1))
            _offer_min(graph, target, source, backward)
            # Cross-database inlinks confer prestige, like FK inlinks.
            graph.set_node_weight(target, graph.node_weight(target) + 1.0)

        min_edge = graph.min_edge_weight() if graph.num_edges else 1.0
        max_node = graph.max_node_weight() if graph.num_nodes else 1.0
        stats = GraphStats(
            min_edge_weight=min_edge,
            max_node_weight=max(max_node, 1.0e-12),
            num_nodes=graph.num_nodes,
            num_edges=graph.num_edges,
        )
        return graph, stats

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Federation({self.name}: members={self.member_names}, "
            f"{len(self._links)} link spec(s))"
        )


def offer_min_edge(graph: DiGraph, source, target, weight: float) -> None:
    """Add ``source -> target`` keeping the *minimum* weight on conflict.

    The Eq. 1 merge rule for a directed pair that receives several
    candidate weights (mutually referencing relations, duplicate links).
    Shared by federation graph construction and the shard stitcher, so
    a graph reassembled from parts merges edges exactly as a graph
    built in one piece does.
    """
    if graph.has_edge(source, target):
        weight = min(weight, graph.edge_weight(source, target))
    graph.add_edge(source, target, weight)


#: Backward-compatible private alias (pre-shard name).
_offer_min = offer_min_edge


@dataclass
class FederatedAnswer:
    """One cross-database answer."""

    tree: AnswerTree
    relevance: float
    rank: int
    _banks: "FederatedBanks"

    @property
    def root(self) -> FederatedNode:
        return self.tree.root

    def databases(self) -> Set[str]:
        """Member databases contributing nodes to this answer."""
        return {node[0] for node in self.tree.nodes}

    def is_cross_database(self) -> bool:
        return len(self.databases()) > 1

    def render(self) -> str:
        labels = {
            node: self._banks.node_label(node) for node in self.tree.nodes
        }
        return self.tree.render_indented(labels)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FederatedAnswer(rank={self.rank}, "
            f"relevance={self.relevance:.4f}, "
            f"databases={sorted(self.databases())})"
        )


class FederatedBanks:
    """Keyword search across every member of a federation.

    Args:
        federation: the federation (members + links registered).
        scoring: scoring parameters (default: the paper's best).
        search_config: search knobs; link-table root exclusion is
            derived per member automatically, as in :class:`repro.BANKS`.
        include_metadata: let keywords match table/column names.
        pool: optional worker pool (e.g. a serving engine's
            ``engine.pool`` or a :class:`repro.serve.pool.WorkerPool`);
            when given, per-member sub-queries of term resolution fan
            out across it instead of running serially — with many
            member databases the resolution phase becomes bounded by
            the slowest member rather than the sum of all members.
    """

    def __init__(
        self,
        federation: Federation,
        scoring: Optional[ScoringConfig] = None,
        search_config: Optional[SearchConfig] = None,
        include_metadata: bool = True,
        pool=None,
    ):
        self.federation = federation
        self.scoring = scoring or ScoringConfig()
        self.include_metadata = include_metadata
        self.pool = pool
        self.graph, self.stats = federation.build_graph()
        self.scorer = Scorer(self.stats, self.scoring)
        self._indexes: Dict[str, InvertedIndex] = {
            name: InvertedIndex(federation.member(name))
            for name in federation.member_names
        }
        config = search_config or SearchConfig()
        if not config.excluded_root_nodes:
            excluded = self._link_table_nodes()
            config = replace(config, excluded_root_nodes=frozenset(excluded))
        self.search_config = config

    def _link_table_nodes(self) -> Set[FederatedNode]:
        """Nodes of pure relationship tables in every member (excluded
        as information nodes, as the per-database facade does)."""
        excluded: Set[FederatedNode] = set()
        for member_name in self.federation.member_names:
            database = self.federation.member(member_name)
            for table_name in link_tables(database):
                for rid in database.table(table_name).rids():
                    excluded.add((member_name, table_name, rid))
        return excluded

    # -- resolution ----------------------------------------------------------------

    def resolve(
        self, query: Union[str, ParsedQuery]
    ) -> List[Set[FederatedNode]]:
        """Node sets per term, unioned across every member database.

        With a :attr:`pool`, each ``(term, member)`` sub-query runs as
        its own pool task (the serving engine's workers when the pool is
        ``engine.pool``); without one, sub-queries run serially.
        """
        parsed = parse_query(query) if isinstance(query, str) else query
        subqueries = [
            (term, member_name)
            for term in parsed.terms
            for member_name in self._indexes
        ]

        def resolve_one(subquery) -> Set[FederatedNode]:
            term, member_name = subquery
            member_nodes = resolve_term(
                term,
                self._indexes[member_name],
                self.federation.member(member_name),
                include_metadata=self.include_metadata,
            )
            return {
                (member_name, table, rid) for table, rid in member_nodes
            }

        if self.pool is not None:
            resolved = self.pool.map(resolve_one, subqueries)
        else:
            resolved = [resolve_one(subquery) for subquery in subqueries]

        node_sets: List[Set[FederatedNode]] = []
        members_per_term = len(self._indexes)
        for term_index in range(len(parsed.terms)):
            nodes: Set[FederatedNode] = set()
            for member_sets in resolved[
                term_index * members_per_term:
                (term_index + 1) * members_per_term
            ]:
                nodes.update(member_sets)
            node_sets.append(nodes)
        return node_sets

    # -- search ------------------------------------------------------------------

    def search(
        self,
        query: Union[str, ParsedQuery],
        max_results: Optional[int] = None,
        **config_overrides,
    ) -> List[FederatedAnswer]:
        """Answer a keyword query over the whole federation."""
        keyword_node_sets = self.resolve(query)
        config = self.search_config
        if max_results is not None:
            config_overrides["max_results"] = max_results
        if config_overrides:
            config = replace(config, **config_overrides)
        scored = list(
            backward_expanding_search(
                self.graph, keyword_node_sets, self.scorer, config
            )
        )
        return [
            FederatedAnswer(s.tree, s.relevance, rank, self)
            for rank, s in enumerate(scored)
        ]

    # -- presentation --------------------------------------------------------------

    def node_label(self, node: FederatedNode) -> str:
        """``db/table: best text`` labels for rendering."""
        member_name, table_name, rid = node
        database = self.federation.member(member_name)
        table = database.table(table_name)
        row = table.row(rid)
        best_text = ""
        for column in table.schema.text_columns():
            value = row[column.name]
            if value and len(str(value)) > len(best_text):
                best_text = str(value)
        if not best_text:
            if table.schema.primary_key:
                best_text = ",".join(
                    str(row[c]) for c in table.schema.primary_key
                )
            else:
                best_text = f"rid={rid}"
        if len(best_text) > 50:
            best_text = best_text[:47] + "..."
        return f"{member_name}/{table_name}: {best_text}"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FederatedBanks({self.federation.name}: "
            f"{self.stats.num_nodes} nodes, {self.stats.num_edges} edges)"
        )
