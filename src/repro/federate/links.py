"""External link specifications between member databases.

Two flavours, both directed from a *source* tuple to a *target* tuple
in a different (or the same) member database:

* :class:`ExternalLink` — *value matching*: every source tuple whose
  ``source_column`` value equals some target tuple's ``target_column``
  value links to it (the relational reading of an HREF whose text is a
  key, and the cross-database analogue of the paper's inclusion
  dependencies);
* :class:`TupleLink` — an explicit, already-resolved pair of tuples
  (the reading of a stored HREF pointing at one specific object).

Resolution happens in :class:`repro.federate.federation.Federation`;
the specs themselves are plain descriptions, storable and inspectable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.errors import FederationError
from repro.relational.database import RID

#: A federated graph node: (member database name, table name, rid).
FederatedNode = Tuple[str, str, int]


@dataclass(frozen=True)
class ExternalLink:
    """A value-matching link between two member databases.

    Attributes:
        name: human-readable identifier (error messages, DESIGN docs).
        source_db: member holding the referencing tuples.
        source_table: referencing table.
        source_column: column whose value identifies the target.
        target_db: member holding the referenced tuples.
        target_table: referenced table.
        target_column: column matched against the source value.
        weight: forward edge weight (1.0 = as strong as a foreign key;
            larger = weaker association, as in the paper's edge model).
    """

    name: str
    source_db: str
    source_table: str
    source_column: str
    target_db: str
    target_table: str
    target_column: str
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise FederationError(
                f"external link {self.name!r}: weight must be positive"
            )
        if (self.source_db, self.source_table, self.source_column) == (
            self.target_db,
            self.target_table,
            self.target_column,
        ):
            raise FederationError(
                f"external link {self.name!r} references itself"
            )


@dataclass(frozen=True)
class TupleLink:
    """An explicit tuple-to-tuple link (a resolved HREF).

    Attributes:
        source_db: member holding the source tuple.
        source: the source tuple's (table, rid).
        target_db: member holding the target tuple.
        target: the target tuple's (table, rid).
        weight: forward edge weight.
    """

    source_db: str
    source: RID
    target_db: str
    target: RID
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise FederationError("tuple link weight must be positive")
        if (self.source_db, self.source) == (self.target_db, self.target):
            raise FederationError("tuple link references itself")

    @property
    def source_node(self) -> FederatedNode:
        return (self.source_db, self.source[0], self.source[1])

    @property
    def target_node(self) -> FederatedNode:
        return (self.target_db, self.target[0], self.target[1])
