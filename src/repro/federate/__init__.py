"""Multi-database keyword search through external links (paper Sec. 7).

The paper plans: *"We are exploring support for external links, such as
HTML HREFs, to aid in browsing.  Such support is particularly useful
when integrating information from multiple databases."*  This subpackage
implements that integration for both browsing and searching:

* :mod:`repro.federate.links` — declarative external-link specs:
  value-matching links (a column in one database joins a column in
  another, like a cross-database inclusion dependency) and explicit
  tuple-to-tuple links (resolved HREFs);
* :mod:`repro.federate.federation` — the :class:`Federation`: member
  registration, link resolution, the unified data graph over
  ``(database, table, rid)`` nodes, a federated keyword index, and
  :class:`FederatedBanks`, the cross-database search facade.
"""

from repro.federate.links import ExternalLink, TupleLink
from repro.federate.federation import (
    FederatedAnswer,
    FederatedBanks,
    Federation,
    offer_min_edge,
)

__all__ = [
    "ExternalLink",
    "FederatedAnswer",
    "FederatedBanks",
    "Federation",
    "TupleLink",
    "offer_min_edge",
]
