"""Role-based access policies over relational data.

An :class:`AccessPolicy` describes what one role may see:

* **relations** — a default (``allow`` / ``deny``) plus per-table
  overrides;
* **columns** — hidden columns per table (values are nulled out; key
  columns cannot be hidden, they carry the connection structure BANKS
  and the browser both need);
* **rows** — per-table predicates (``Row -> bool``); only rows
  satisfying every applicable predicate are visible.

A :class:`Principal` carries a set of roles; :class:`PolicySet` maps
roles to policies and combines a principal's roles *permissively*: a
table is visible if any role sees it, a column is hidden only if every
role hides it, and a row is visible if any role's predicate accepts it.
This is the standard "union of grants" semantics of SQL role systems.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Set

from repro.errors import AuthorizationError
from repro.relational.table import Row

#: A row-level security predicate.
RowPredicate = Callable[[Row], bool]


@dataclass(frozen=True)
class Principal:
    """A user identity with roles.

    Attributes:
        name: login / identifier.
        roles: role names granting policies through a :class:`PolicySet`.
    """

    name: str
    roles: FrozenSet[str] = frozenset()

    @staticmethod
    def with_roles(name: str, *roles: str) -> "Principal":
        return Principal(name, frozenset(roles))


class AccessPolicy:
    """What one role may see.

    Args:
        default: ``"allow"`` (see everything not denied) or ``"deny"``
            (see only what is explicitly allowed).
    """

    def __init__(self, default: str = "allow"):
        if default not in ("allow", "deny"):
            raise AuthorizationError(
                f"default must be 'allow' or 'deny', got {default!r}"
            )
        self.default = default
        self._allowed_tables: Set[str] = set()
        self._denied_tables: Set[str] = set()
        self._hidden_columns: Dict[str, Set[str]] = {}
        self._row_predicates: Dict[str, List[RowPredicate]] = {}

    # -- declaration (fluent: each returns self) ---------------------------------

    def allow_table(self, table: str) -> "AccessPolicy":
        """Explicitly expose ``table`` (needed under ``default='deny'``)."""
        self._allowed_tables.add(table)
        self._denied_tables.discard(table)
        return self

    def deny_table(self, table: str) -> "AccessPolicy":
        """Explicitly hide ``table`` entirely."""
        self._denied_tables.add(table)
        self._allowed_tables.discard(table)
        return self

    def hide_columns(self, table: str, *columns: str) -> "AccessPolicy":
        """Null out the named columns of ``table`` in authorized views."""
        if not columns:
            raise AuthorizationError("hide_columns needs at least one column")
        self._hidden_columns.setdefault(table, set()).update(columns)
        return self

    def restrict_rows(
        self, table: str, predicate: RowPredicate
    ) -> "AccessPolicy":
        """Only rows of ``table`` satisfying ``predicate`` are visible.

        Multiple restrictions on one table AND together (each narrows
        visibility further).
        """
        self._row_predicates.setdefault(table, []).append(predicate)
        return self

    # -- queries ------------------------------------------------------------------

    def table_visible(self, table: str) -> bool:
        if table in self._denied_tables:
            return False
        if self.default == "allow":
            return True
        return table in self._allowed_tables

    def hidden_columns(self, table: str) -> FrozenSet[str]:
        return frozenset(self._hidden_columns.get(table, ()))

    def row_visible(self, table: str, row: Row) -> bool:
        for predicate in self._row_predicates.get(table, ()):
            if not predicate(row):
                return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AccessPolicy(default={self.default!r}, "
            f"denied={sorted(self._denied_tables)}, "
            f"allowed={sorted(self._allowed_tables)})"
        )


#: The policy an unknown role receives: sees nothing.
def nothing_policy() -> AccessPolicy:
    return AccessPolicy(default="deny")


class PolicySet:
    """Role name -> :class:`AccessPolicy`, with permissive union."""

    def __init__(self) -> None:
        self._by_role: Dict[str, AccessPolicy] = {}

    def grant(self, role: str, policy: AccessPolicy) -> "PolicySet":
        if role in self._by_role:
            raise AuthorizationError(f"role {role!r} already has a policy")
        self._by_role[role] = policy
        return self

    def policy_for_role(self, role: str) -> AccessPolicy:
        return self._by_role.get(role, nothing_policy())

    def roles(self) -> List[str]:
        return list(self._by_role)

    # -- effective (principal-level) checks -----------------------------------------

    def _policies(self, principal: Principal) -> List[AccessPolicy]:
        return [self.policy_for_role(role) for role in sorted(principal.roles)]

    def table_visible(self, principal: Principal, table: str) -> bool:
        """Visible if *any* of the principal's roles sees the table."""
        return any(
            policy.table_visible(table)
            for policy in self._policies(principal)
        )

    def hidden_columns(
        self, principal: Principal, table: str
    ) -> FrozenSet[str]:
        """Hidden only if *every* role that sees the table hides it."""
        policies = [
            policy
            for policy in self._policies(principal)
            if policy.table_visible(table)
        ]
        if not policies:
            return frozenset()
        hidden = policies[0].hidden_columns(table)
        for policy in policies[1:]:
            hidden = hidden & policy.hidden_columns(table)
        return hidden

    def row_visible(self, principal: Principal, table: str, row: Row) -> bool:
        """Visible if any role that sees the table accepts the row."""
        return any(
            policy.row_visible(table, row)
            for policy in self._policies(principal)
            if policy.table_visible(table)
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PolicySet(roles={self.roles()})"
