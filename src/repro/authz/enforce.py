"""Policy enforcement: authorized views, per-principal search, auditing.

:func:`authorized_view` materialises the sub-database a principal may
see.  Filtering can orphan references (a visible ``writes`` tuple whose
``author`` was filtered out), so removal *cascades*: rows whose foreign
keys point at removed rows are removed too, iterating to a fixed point.
The result is a fully consistent :class:`Database` every downstream
subsystem (BANKS search, the browser, SQL) can use without caveats —
and, critically for search, a principal's connection trees cannot leak
a forbidden tuple even as an intermediate node, because that node never
enters their graph.

Snapshot semantics: the view copies visible rows at construction time;
re-derive it (or use :meth:`SecureBanks.invalidate`) after the base
data changes.  Hidden columns are nulled, not dropped, so schemas (and
the paper's metadata keyword matching) stay stable across principals.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.authz.policy import PolicySet, Principal
from repro.core.banks import BANKS, Answer
from repro.errors import AuthorizationError
from repro.relational.database import Database, RID
from repro.relational.schema import TableSchema


def _key_columns(schema: TableSchema) -> Set[str]:
    columns: Set[str] = set(schema.primary_key)
    for fk in schema.foreign_keys:
        columns.update(fk.source_columns)
    return columns


def authorized_view(
    database: Database,
    policies: PolicySet,
    principal: Principal,
    name: Optional[str] = None,
) -> Database:
    """The sub-database ``principal`` is authorized to see.

    Tables the principal cannot see are dropped along with every
    foreign key pointing at them; hidden columns are nulled (hiding a
    primary-key or foreign-key column raises
    :class:`AuthorizationError` — keys carry connection structure, not
    content); row predicates filter tuples, and removal cascades
    through foreign keys so the view stays referentially consistent.
    """
    view = Database(
        name or f"{database.name}@{principal.name}", deferred_fk_check=True
    )

    visible_tables = [
        table.schema
        for table in database.tables()
        if policies.table_visible(principal, table.schema.name)
    ]
    visible_names = {schema.name for schema in visible_tables}

    schemas: List[TableSchema] = []
    hidden_by_table: Dict[str, frozenset] = {}
    for schema in visible_tables:
        hidden = policies.hidden_columns(principal, schema.name)
        forbidden = hidden & _key_columns(schema)
        if forbidden:
            raise AuthorizationError(
                f"cannot hide key column(s) {sorted(forbidden)} of "
                f"table {schema.name!r}"
            )
        hidden_by_table[schema.name] = hidden
        kept_fks = tuple(
            fk for fk in schema.foreign_keys if fk.target_table in visible_names
        )
        schemas.append(
            TableSchema(
                schema.name, schema.columns, schema.primary_key, kept_fks
            )
        )
    view.create_tables(schemas)

    # Row filtering, then cascade removal to a fixed point.
    surviving: Dict[str, Dict[int, Tuple]] = {}
    for schema in schemas:
        table = database.table(schema.name)
        hidden = hidden_by_table[schema.name]
        rows: Dict[int, Tuple] = {}
        for row in table.scan():
            if not policies.row_visible(principal, schema.name, row):
                continue
            if hidden:
                values = tuple(
                    None if column in hidden else value
                    for column, value in zip(schema.column_names, row.values)
                )
            else:
                values = row.values
            rows[row.rid] = values
        surviving[schema.name] = rows

    changed = True
    while changed:
        changed = False
        for schema in schemas:
            rows = surviving[schema.name]
            if not schema.foreign_keys:
                continue
            doomed: List[int] = []
            for rid, values in rows.items():
                for fk in schema.foreign_keys:
                    key = tuple(
                        values[schema.column_position(c)]
                        for c in fk.source_columns
                    )
                    if any(part is None for part in key):
                        continue
                    if not _target_alive(
                        database, surviving, fk.target_table, fk.target_columns, key
                    ):
                        doomed.append(rid)
                        break
            for rid in doomed:
                del rows[rid]
                changed = True

    # RIDs shift in the view (it is a snapshot); insertion order follows
    # base-table RID order so views are deterministic.
    for schema in schemas:
        view_table = view.table(schema.name)
        for rid in sorted(surviving[schema.name]):
            view_table.insert(surviving[schema.name][rid])
    view.check_integrity()
    return view


def _target_alive(
    database: Database,
    surviving: Dict[str, Dict[int, Tuple]],
    target_table: str,
    target_columns: Sequence[str],
    key: Tuple,
) -> bool:
    """Does some surviving row of ``target_table`` carry ``key``?"""
    rows = surviving.get(target_table)
    if rows is None:
        return False
    schema = database.table(target_table).schema
    positions = [schema.column_position(c) for c in target_columns]
    for values in rows.values():
        if tuple(values[p] for p in positions) == key:
            return True
    return False


@dataclass(frozen=True)
class AuditRecord:
    """One audited search: who asked what, when, and how much came back."""

    principal: str
    query: str
    answer_count: int
    timestamp: float


class AuditLog:
    """Append-only in-memory audit trail of authorized searches."""

    def __init__(self) -> None:
        self._records: List[AuditRecord] = []

    def record(self, principal: Principal, query: str, answers: int) -> None:
        self._records.append(
            AuditRecord(principal.name, query, answers, time.time())
        )

    def records(
        self, principal: Optional[str] = None
    ) -> List[AuditRecord]:
        if principal is None:
            return list(self._records)
        return [r for r in self._records if r.principal == principal]

    def __len__(self) -> int:
        return len(self._records)


class SecureBanks:
    """Per-principal keyword search under an access-policy set.

    Builds (and caches) one authorized view + BANKS instance per
    principal; searches are audited.

    Args:
        database: the base data.
        policies: role -> policy grants.
        audit: an optional shared audit log (one is created if omitted).
        banks_options: keyword arguments forwarded to :class:`BANKS`
            (weight policy, scoring, ...).
    """

    def __init__(
        self,
        database: Database,
        policies: PolicySet,
        audit: Optional[AuditLog] = None,
        **banks_options,
    ):
        self.database = database
        self.policies = policies
        self.audit = audit or AuditLog()
        self._banks_options = banks_options
        self._views: Dict[str, Database] = {}
        self._engines: Dict[str, BANKS] = {}

    def view_for(self, principal: Principal) -> Database:
        """The principal's authorized view (cached)."""
        if principal.name not in self._views:
            self._views[principal.name] = authorized_view(
                self.database, self.policies, principal
            )
        return self._views[principal.name]

    def engine_for(self, principal: Principal) -> BANKS:
        """The principal's BANKS instance over their view (cached)."""
        if principal.name not in self._engines:
            self._engines[principal.name] = BANKS(
                self.view_for(principal), **self._banks_options
            )
        return self._engines[principal.name]

    def search(
        self, principal: Principal, query: str, **kwargs
    ) -> List[Answer]:
        """Answer ``query`` with only the data ``principal`` may see."""
        answers = self.engine_for(principal).search(query, **kwargs)
        self.audit.record(principal, query, len(answers))
        return answers

    def invalidate(self, principal: Optional[Principal] = None) -> None:
        """Drop cached views/engines (all, or one principal's) so the
        next search re-derives them from current base data."""
        if principal is None:
            self._views.clear()
            self._engines.clear()
        else:
            self._views.pop(principal.name, None)
            self._engines.pop(principal.name, None)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SecureBanks({self.database.name}, "
            f"{len(self._engines)} cached principal engine(s))"
        )
