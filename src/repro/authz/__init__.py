"""Authorization: selectively exposing data to different users (Sec. 7).

The paper plans *"authorization mechanisms to selectively expose data to
different users"*.  This subpackage implements them at three
granularities — relations, columns and rows — in a role-based model:

* :mod:`repro.authz.policy` — :class:`Principal` (user + roles),
  :class:`AccessPolicy` (what one role may see) and :class:`PolicySet`
  (role -> policy, with permissive union across a principal's roles);
* :mod:`repro.authz.enforce` — :func:`authorized_view` builds a
  filtered snapshot database a principal is allowed to see (with
  referential cascade, so no dangling references survive filtering),
  :class:`SecureBanks` serves per-principal keyword search over those
  views, and :class:`AuditLog` records every search for review.

Search-level guarantee, asserted by the tests: a principal's answers
never contain a tuple (or a value of a hidden column) their policy
filters out — including as *intermediate* nodes of connection trees.
"""

from repro.authz.policy import AccessPolicy, PolicySet, Principal
from repro.authz.enforce import AuditLog, SecureBanks, authorized_view

__all__ = [
    "AccessPolicy",
    "AuditLog",
    "PolicySet",
    "Principal",
    "SecureBanks",
    "authorized_view",
]
