"""Side-by-side comparison harness: BANKS vs the Sec. 6 related systems.

Runs the paper's 7-query evaluation workload through each system and
reports, per system:

* the scaled rank-difference error (the Figure 5 metric) — computable
  for every system because each returns answers reducible to undirected
  tree keys (single tuples are single-node trees);
* how many of the workload's ideal answers were found at all (within
  the examined top 10);
* mean per-query wall-clock latency.

The expected shape (asserted by ``benchmarks/bench_baselines.py``):
BANKS scores the lowest error; DataSpot finds the connection trees but
misranks prestige-driven queries; Mragyati cannot produce any answer
that needs a join path longer than two (all the co-authorship trees);
Goldman proximity returns bare tuples, so it can match single-node
ideals only.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Sequence, Tuple

from repro.baselines.dataspot import DataSpotSearch
from repro.baselines.goldman import ProximitySearch
from repro.baselines.mragyati import MragyatiSearch
from repro.core.banks import BANKS
from repro.eval.error_score import (
    ANSWERS_EXAMINED,
    query_rank_error,
    scale_errors,
)
from repro.eval.workload import EvalQuery
from repro.relational.database import Database, RID


@dataclass(frozen=True)
class SystemReport:
    """One system's results over the workload.

    Attributes:
        system: display name.
        scaled_error: Figure 5-style error (0 best, 100 worst).
        ideals_found: ideal answers present in the examined top-k.
        total_ideals: ideal answers in the workload.
        mean_latency_ms: mean per-query latency.
        per_query_error: raw error per query id.
    """

    system: str
    scaled_error: float
    ideals_found: int
    total_ideals: int
    mean_latency_ms: float
    per_query_error: Dict[str, int]

    def row(self) -> str:
        return (
            f"{self.system:<12} error={self.scaled_error:6.1f} "
            f"found={self.ideals_found}/{self.total_ideals} "
            f"latency={self.mean_latency_ms:7.1f} ms"
        )


def _single_node_key(node: RID) -> FrozenSet:
    return frozenset((frozenset((node,)), frozenset()))


#: A system adapter: query text -> undirected tree keys, best first.
SystemRunner = Callable[[str], List[FrozenSet]]


def _banks_runner(banks: BANKS) -> SystemRunner:
    def run(text: str) -> List[FrozenSet]:
        answers = banks.search(
            text, max_results=ANSWERS_EXAMINED, output_heap_size=400
        )
        return [answer.tree.undirected_key() for answer in answers]

    return run


def _dataspot_runner(system: DataSpotSearch) -> SystemRunner:
    def run(text: str) -> List[FrozenSet]:
        answers = system.search(text, max_results=ANSWERS_EXAMINED)
        return [answer.tree.undirected_key() for answer in answers]

    return run


def _mragyati_runner(system: MragyatiSearch) -> SystemRunner:
    def run(text: str) -> List[FrozenSet]:
        answers = system.search(text, max_results=ANSWERS_EXAMINED)
        return [answer.tree.undirected_key() for answer in answers]

    return run


def _goldman_runner(system: ProximitySearch) -> SystemRunner:
    def run(text: str) -> List[FrozenSet]:
        results = system.search(text, max_results=ANSWERS_EXAMINED)
        return [_single_node_key(result.node) for result in results]

    return run


def evaluate_system(
    name: str,
    runner: SystemRunner,
    workload: Sequence[EvalQuery],
) -> SystemReport:
    """Run one system over the workload and collect its report."""
    per_query: Dict[str, int] = {}
    found = 0
    total_ideals = 0
    elapsed = 0.0
    for query in workload:
        start = time.perf_counter()
        result_keys = runner(query.text)
        elapsed += time.perf_counter() - start
        per_query[query.query_id] = query_rank_error(
            query.ideal_keys, result_keys
        )
        total_ideals += len(query.ideal_keys)
        result_set = set(result_keys)
        found += sum(1 for key in query.ideal_keys if key in result_set)
    raw = sum(per_query.values())
    return SystemReport(
        system=name,
        scaled_error=scale_errors(raw, total_ideals),
        ideals_found=found,
        total_ideals=total_ideals,
        mean_latency_ms=1000.0 * elapsed / max(1, len(workload)),
        per_query_error=per_query,
    )


def compare_systems(
    database: Database,
    workload: Sequence[EvalQuery],
    banks: BANKS = None,
) -> List[SystemReport]:
    """Evaluate BANKS and all three related-system baselines.

    Args:
        database: the bibliographic database the workload targets.
        workload: the evaluation queries with ideal answers.
        banks: an existing BANKS instance to reuse (else built here).

    Returns:
        One report per system, in presentation order (BANKS first).
    """
    if banks is None:
        banks = BANKS(database)
    systems: List[Tuple[str, SystemRunner]] = [
        ("BANKS", _banks_runner(banks)),
        ("DataSpot", _dataspot_runner(DataSpotSearch(database))),
        ("Goldman", _goldman_runner(ProximitySearch(database))),
        ("Mragyati", _mragyati_runner(MragyatiSearch(database))),
    ]
    return [
        evaluate_system(name, runner, workload) for name, runner in systems
    ]


def format_comparison(reports: Sequence[SystemReport]) -> str:
    """Fixed-width comparison table (printed by the benchmark)."""
    lines = ["System comparison on the 7-query workload:"]
    lines.extend(report.row() for report in reports)
    return "\n".join(lines)
