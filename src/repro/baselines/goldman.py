"""Goldman et al. proximity search: ``find <objects> near <objects>``.

Goldman, Shivakumar, Venkatasubramanian and Garcia-Molina (VLDB 1998)
support queries of the form *find object near object*: rank the objects
in a *find set* by their graph proximity to the objects of a *near set*.
Per the paper's Sec. 6 comparison with BANKS:

* results are **single tuples** ("they restrict results to tuples from
  one relation near a set of keywords"), not connection trees — the
  user never sees *how* an answer relates to the keywords;
* **no node or edge weighting**: the graph is unweighted/undirected,
  so neither hubs nor prestige influence ranking.

The scoring follows the paper's formulation: each find object ``f``
gets ``score(f) = sum over near objects n of bond(f, n)`` where the
bond degrades with shortest-path distance as ``1 / (1 + d)^2`` and
distances beyond ``radius`` contribute nothing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Union

from repro.baselines.dataspot import build_hyperbase
from repro.core.query import ParsedQuery, parse_query, resolve_query
from repro.graph.dijkstra import DijkstraIterator
from repro.relational.database import Database, RID
from repro.text.inverted_index import InvertedIndex


@dataclass(frozen=True)
class ProximityResult:
    """One ranked find-object.

    Attributes:
        node: the found tuple.
        score: accumulated bond to the near set (higher = nearer).
        distance: smallest shortest-path distance to any near object.
    """

    node: RID
    score: float
    distance: float


def bond(distance: float) -> float:
    """Goldman et al.'s degrading bond: ``1 / (1 + d)^2``."""
    return 1.0 / (1.0 + distance) ** 2


class ProximitySearch:
    """``find X near Y`` over a relational database.

    Args:
        database: the data to search.
        radius: ignore near-objects farther than this many edges.
        include_metadata: let find/near terms match table/column names
            (``find author near sudarshan``-style queries need the
            metadata reading of ``author``).
    """

    def __init__(
        self,
        database: Database,
        radius: float = 6.0,
        include_metadata: bool = True,
    ):
        self.database = database
        self.radius = radius
        self.include_metadata = include_metadata
        self.graph = build_hyperbase(database)
        self.index = InvertedIndex(database)

    # -- query front ends -----------------------------------------------------

    def find_near(
        self,
        find_query: Union[str, ParsedQuery],
        near_query: Union[str, ParsedQuery],
        max_results: int = 10,
    ) -> List[ProximityResult]:
        """Rank objects matching ``find_query`` by proximity to objects
        matching ``near_query``.

        Each term of the near query is a separate near set; a find
        object accumulates the bond of its closest object in each set
        (so ``find person near lung cancer`` favours objects near both
        words, following the VLDB paper's additive scoring).
        """
        find_nodes = self._resolve_union(find_query)
        near_sets = self._resolve_sets(near_query)
        if not find_nodes:
            return []

        scores: Dict[RID, float] = {}
        best_distance: Dict[RID, float] = {}
        for near_set in near_sets:
            distances = self._multi_source_distances(near_set)
            for node in find_nodes:
                distance = distances.get(node)
                if distance is None:
                    continue
                scores[node] = scores.get(node, 0.0) + bond(distance)
                if (
                    node not in best_distance
                    or distance < best_distance[node]
                ):
                    best_distance[node] = distance

        ranked = sorted(
            (
                ProximityResult(node, score, best_distance[node])
                for node, score in scores.items()
            ),
            key=lambda result: (-result.score, result.distance, result.node),
        )
        return ranked[:max_results]

    def search(
        self, query: Union[str, ParsedQuery], max_results: int = 10
    ) -> List[ProximityResult]:
        """BANKS-workload adapter: the first term is the find set, the
        remaining terms are the near sets (``find t1 near t2 t3 ...``);
        a single-term query ranks its own matches by prestige-free
        arbitrary (document) order, which is exactly the weakness the
        comparison is meant to expose."""
        parsed = parse_query(query) if isinstance(query, str) else query
        if len(parsed.terms) == 1:
            nodes = self._resolve_union(parsed)
            return [
                ProximityResult(node, 1.0, 0.0) for node in sorted(nodes)
            ][:max_results]
        find_part = ParsedQuery((parsed.terms[0],))
        near_part = ParsedQuery(tuple(parsed.terms[1:]))
        return self.find_near(find_part, near_part, max_results)

    # -- internals ----------------------------------------------------------------

    def _resolve_sets(
        self, query: Union[str, ParsedQuery]
    ) -> List[Set[RID]]:
        parsed = parse_query(query) if isinstance(query, str) else query
        return resolve_query(
            parsed,
            self.index,
            self.database,
            include_metadata=self.include_metadata,
        )

    def _resolve_union(self, query: Union[str, ParsedQuery]) -> Set[RID]:
        union: Set[RID] = set()
        for group in self._resolve_sets(query):
            union.update(group)
        return union

    def _multi_source_distances(
        self, sources: Set[RID]
    ) -> Dict[RID, float]:
        """Shortest distance from the nearest source to every node
        within the radius (single Dijkstra over a virtual super-source:
        run per source, keep minima — source sets are small in the
        workload, and the graph is symmetric)."""
        distances: Dict[RID, float] = {}
        for source in sources:
            if not self.graph.has_node(source):
                continue
            iterator = DijkstraIterator(
                self.graph, source, max_distance=self.radius
            )
            for visit in iterator:
                known = distances.get(visit.node)
                if known is None or visit.distance < known:
                    distances[visit.node] = visit.distance
        return distances

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ProximitySearch({self.database.name}, radius={self.radius})"
        )
