"""DataSpot-style search: undirected hyperbase, size-ranked fact trees.

DataSpot [6, 12, 13] models the database as an undirected "hyperbase"
and returns answer trees rooted at *fact nodes*, scored by tree
compactness.  Per the paper's Sec. 6 comparison, the two ingredients
BANKS adds on top of this model are exactly what this baseline lacks:

* **no directional hub penalty** — every association edge costs the
  same in both directions, so hub nodes (a department, a prolific
  author's Writes fan-in) create spurious short connections;
* **no node prestige** — a heavily cited paper and an uncited one
  containing the same keyword are tied.

Implementation: the BANKS machinery is reused with both ingredients
switched off — a symmetric uniform-weight graph (every FK reference
contributes weight-1 edges in both directions) and pure edge scoring
(``lambda = 0``).  Everything else (iterator multiplexing, duplicate
handling, incremental emission) matches, so measured differences are
attributable to the model, not the engine.
"""

from __future__ import annotations

from typing import List, Optional, Union

from repro.core.banks import BANKS
from repro.core.model import GraphStats
from repro.core.query import ParsedQuery, parse_query, resolve_query
from repro.core.scoring import Scorer, ScoringConfig
from repro.core.search import (
    ScoredAnswer,
    SearchConfig,
    backward_expanding_search,
)
from repro.graph.digraph import DiGraph
from repro.relational.database import Database
from repro.text.inverted_index import InvertedIndex


def build_hyperbase(database: Database) -> DiGraph:
    """The undirected association graph: weight-1 edges both ways for
    every foreign-key reference; node weights unused (uniform 1)."""
    graph = DiGraph()
    for table in database.tables():
        table_name = table.schema.name
        for rid in table.rids():
            graph.add_node((table_name, rid), weight=1.0)
    for table in database.tables():
        table_name = table.schema.name
        for rid in table.rids():
            source = (table_name, rid)
            for _fk, target in database.references_of(source):
                if source == target:
                    continue
                graph.add_edge(source, target, 1.0)
                graph.add_edge(target, source, 1.0)
    return graph


class DataSpotSearch:
    """Keyword search in the DataSpot model.

    Args:
        database: the data to search.
        include_metadata: let keywords match table/column names (DataSpot
            "does not make metadata queries explicit"; default off).
        max_results: answers returned per query.
    """

    def __init__(
        self,
        database: Database,
        include_metadata: bool = False,
        max_results: int = 10,
    ):
        self.database = database
        self.include_metadata = include_metadata
        self.graph = build_hyperbase(database)
        self.index = InvertedIndex(database)
        stats = GraphStats(
            min_edge_weight=1.0,
            max_node_weight=1.0,
            num_nodes=self.graph.num_nodes,
            num_edges=self.graph.num_edges,
        )
        # Pure proximity: relevance = 1 / (1 + tree size in edges).
        self.scorer = Scorer(
            stats, ScoringConfig(lambda_weight=0.0, edge_log=False)
        )
        self.config = SearchConfig(max_results=max_results)

    def search(
        self, query: Union[str, ParsedQuery], max_results: Optional[int] = None
    ) -> List[ScoredAnswer]:
        """Ranked fact trees for ``query`` (best first)."""
        parsed = parse_query(query) if isinstance(query, str) else query
        keyword_node_sets = resolve_query(
            parsed,
            self.index,
            self.database,
            include_metadata=self.include_metadata,
        )
        config = self.config
        if max_results is not None and max_results != config.max_results:
            from dataclasses import replace

            config = replace(config, max_results=max_results)
        return list(
            backward_expanding_search(
                self.graph, keyword_node_sets, self.scorer, config
            )
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DataSpotSearch({self.database.name}: "
            f"{self.graph.num_nodes} nodes)"
        )
