"""Mragyati-style search: join paths of length <= 2, indegree ranking.

Sarda and Jain's Mragyati (2001) answers keyword queries over a
relational database by joining keyword-matching tuples, but — per the
paper's Sec. 6 — "their implementation does not handle paths of length
greater than two", and "the default ranking system uses indegree".

This baseline implements that model faithfully:

* an answer is a *star*: a center tuple with one arm of length 0 or 1
  (an undirected foreign-key step) to a tuple matching each keyword —
  so any keyword pair in an answer is within a join path of length 2;
* answers are ranked by the **indegree of the center** (reference
  count), ties broken by star size then determinstic node order;
* answers whose connection genuinely needs longer paths (e.g. the
  paper's author–writes–paper–writes–author co-authorship tree, which
  is a length-4 path) are simply *not found* — the limitation the
  comparative benchmark quantifies.

Results are materialised as :class:`repro.core.answer.AnswerTree` over
the BANKS data graph so quality is measured with the same undirected
tree keys as every other system.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set, Tuple, Union

from repro.core.answer import AnswerTree
from repro.core.model import build_data_graph
from repro.core.query import ParsedQuery, parse_query, resolve_query
from repro.core.search import ScoredAnswer
from repro.core.weights import WeightPolicy
from repro.relational.database import Database, RID
from repro.text.inverted_index import InvertedIndex


class MragyatiSearch:
    """Keyword search with join paths bounded at length two.

    Args:
        database: the data to search.
        include_metadata: let keywords match table/column names.
        max_results: answers returned per query.
    """

    def __init__(
        self,
        database: Database,
        include_metadata: bool = False,
        max_results: int = 10,
    ):
        self.database = database
        self.include_metadata = include_metadata
        self.max_results = max_results
        self.index = InvertedIndex(database)
        # The data graph supplies undirected adjacency and edge weights
        # for materialising comparable AnswerTrees; ranking ignores the
        # weights (Mragyati has no edge model).
        self.graph, _stats = build_data_graph(database, WeightPolicy())

    # -- search ------------------------------------------------------------------

    def search(
        self, query: Union[str, ParsedQuery], max_results: Optional[int] = None
    ) -> List[ScoredAnswer]:
        """Ranked star answers (best first)."""
        limit = max_results if max_results is not None else self.max_results
        parsed = parse_query(query) if isinstance(query, str) else query
        keyword_node_sets = resolve_query(
            parsed,
            self.index,
            self.database,
            include_metadata=self.include_metadata,
        )
        if any(not group for group in keyword_node_sets):
            return []

        # Candidate centers: keyword nodes and their undirected neighbors.
        candidates: Set[RID] = set()
        for group in keyword_node_sets:
            for node in group:
                if not self.graph.has_node(node):
                    continue
                candidates.add(node)
                for neighbor, _w in self.graph.successors(node):
                    candidates.add(neighbor)

        answers: List[Tuple[float, int, AnswerTree]] = []
        seen_keys: Set = set()
        for center in candidates:
            arms = self._cover(center, keyword_node_sets)
            if arms is None:
                continue
            tree = self._materialise(center, arms)
            key = tree.undirected_key()
            if key in seen_keys:
                continue
            seen_keys.add(key)
            prestige = float(self.database.indegree(center))
            answers.append((prestige, -tree.size(), tree))

        answers.sort(
            key=lambda entry: (-entry[0], -entry[1], repr(entry[2].root))
        )
        results: List[ScoredAnswer] = []
        for order, (prestige, _neg_size, tree) in enumerate(
            answers[:limit]
        ):
            # Normalised pseudo-relevance for reporting only: Mragyati
            # ranks by raw indegree.
            score = prestige / (1.0 + prestige)
            results.append(ScoredAnswer(tree, score, order))
        return results

    # -- internals ----------------------------------------------------------------

    def _cover(
        self, center: RID, keyword_node_sets: Sequence[Set[RID]]
    ) -> Optional[List[Optional[RID]]]:
        """For each term, a keyword node equal to the center (arm length
        0) or an undirected neighbor of it (arm length 1); ``None`` when
        some term cannot be covered."""
        neighbors = {node for node, _w in self.graph.successors(center)}
        arms: List[Optional[RID]] = []
        for group in keyword_node_sets:
            if center in group:
                arms.append(None)  # covered by the center itself
                continue
            arm = None
            for node in sorted(group, key=repr):
                if node in neighbors:
                    arm = node
                    break
            if arm is None:
                return None
            arms.append(arm)
        return arms

    def _materialise(
        self, center: RID, arms: Sequence[Optional[RID]]
    ) -> AnswerTree:
        """Build the star as an AnswerTree over the data graph."""
        paths: List[Optional[List[RID]]] = []
        for arm in arms:
            if arm is None:
                paths.append([center])
            else:
                paths.append([center, arm])
        return AnswerTree.from_paths(self.graph, center, paths)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MragyatiSearch({self.database.name})"
