"""Runnable reimplementations of the related systems of paper Sec. 6.

The paper positions BANKS against three contemporaries; each is built
here as a complete, queryable system over the same
:class:`repro.relational.database.Database`, so the comparative
benchmarks measure *system against system* rather than BANKS against a
strawman configuration:

* :mod:`repro.baselines.dataspot` — DataSpot [6, 12, 13]: undirected
  "hyperbase" graph, answers are trees rooted at fact nodes, relevance
  from tree size alone (no prestige, no directional hub penalty);
* :mod:`repro.baselines.goldman` — Goldman et al. [7] proximity search:
  ``find <objects> near <objects>`` returning *single tuples* of one
  relation ranked by graph distance ("they restrict results to tuples
  from one relation near a set of keywords");
* :mod:`repro.baselines.mragyati` — Mragyati [14]: keyword answers
  joined by paths of length at most two, ranked by indegree.

:mod:`repro.baselines.compare` runs all of them (plus BANKS) on the
paper's evaluation workload and reports quality and latency side by
side — the basis of ``benchmarks/bench_baselines.py``.
"""

from repro.baselines.dataspot import DataSpotSearch
from repro.baselines.goldman import ProximitySearch
from repro.baselines.mragyati import MragyatiSearch
from repro.baselines.compare import SystemReport, compare_systems

__all__ = [
    "DataSpotSearch",
    "MragyatiSearch",
    "ProximitySearch",
    "SystemReport",
    "compare_systems",
]
