"""Rebalance planning: node-move plans from the shard metrics.

The :class:`~repro.shard.partition.Partition` is fixed at construction
— a hot or oversized shard stays that way forever.  This module closes
the *planning* half of that gap: it derives a deterministic
:class:`RebalancePlan` (an ordered list of single-node moves) from the
per-shard size and query counters the router already exports, and
:meth:`~repro.shard.router.ShardRouter.rebalance` executes it move by
move while serving.

A move rides the existing delta machinery: the router re-assigns the
node, re-slices the per-shard inverted indexes, and passes a synthetic
``update`` :class:`~repro.store.delta.Delta` carrying the node's
incident edges through :meth:`~repro.shard.partition.Partition.
apply_delta`, which re-points the cut-edge ``TupleLink`` records.  The
stitched graph itself never changes (no edge or weight moves — only
ownership does), which is why search parity across a rebalance is an
invariant rather than an aspiration: ``tests/ops`` asserts it under
random interleavings and under live query load.

Each executed move is one router epoch, and the router announces the
:data:`REBALANCE_STEPS` of every move to an optional
:class:`~repro.ops.faults.FaultInjector`; a fault mid-move rolls the
move back, so the partition is always a disjoint cover between epochs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ShardError

#: The named interruption points of one executed node move, in
#: protocol order (the router calls ``faults.step(name)`` immediately
#: after each action): **assign** — partition re-assignment plus
#: cut-edge re-classification; **reslice** — per-searcher ownership
#: and inverted-index slice updates; **replay** — forked workers'
#: private replicas updated (process backend); **republish** — both
#: affected engines' snapshots republished, epoch advanced.
REBALANCE_STEPS = ("assign", "reslice", "replay", "republish")


@dataclass(frozen=True)
class RebalanceMove:
    """Move one node from its current shard to another."""

    node: Any
    source: int
    target: int


@dataclass(frozen=True)
class RebalancePlan:
    """An ordered, deterministic list of node moves plus its rationale.

    Attributes:
        moves: the moves, executed in order.
        reason: one line describing how the plan was derived (logged
            and surfaced by ``banks rebalance``-style tooling).
    """

    moves: Tuple[RebalanceMove, ...]
    reason: str

    def __len__(self) -> int:
        return len(self.moves)

    def summary(self) -> Dict[str, Any]:
        """Per-shard net node flow — negative means draining."""
        flow: Dict[int, int] = {}
        for move in self.moves:
            flow[move.source] = flow.get(move.source, 0) - 1
            flow[move.target] = flow.get(move.target, 0) + 1
        return {"moves": len(self.moves), "net_flow": flow, "reason": self.reason}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RebalancePlan({len(self.moves)} moves: {self.reason})"


def _shard_loads(router: Any, qps_bias: float) -> List[float]:
    """Per-shard load scores: owned-node count, scaled up by the
    shard's share of scattered sub-searches.  With ``qps_bias=0`` the
    score is pure size; with 1.0 a shard receiving *all* the traffic
    counts double."""
    sizes = [len(nodes) for nodes in router.partition.shard_nodes]
    if not qps_bias:
        return [float(size) for size in sizes]
    snapshot = router.metrics.snapshot()
    searches = [
        snapshot.get(f"shard{shard_id}_searches_total", 0.0)
        for shard_id in range(router.partition.shards)
    ]
    total = sum(searches)
    return [
        size * (1.0 + qps_bias * (hits / total if total else 0.0))
        for size, hits in zip(sizes, searches)
    ]


def plan_rebalance(
    router: Any,
    max_moves: int = 64,
    tolerance: float = 0.1,
    qps_bias: float = 1.0,
) -> RebalancePlan:
    """Derive a plan that evens out shard load.

    Greedy and deterministic: while the most loaded shard exceeds the
    ideal even split by more than ``tolerance`` (and the move budget
    lasts), move one node from the most loaded shard to the least
    loaded one.  Candidate nodes are taken in sorted order, so the same
    metrics always produce the same plan.

    Args:
        router: the :class:`~repro.shard.router.ShardRouter` to plan
            for (only its partition and metrics are read).
        max_moves: hard cap on plan length.
        tolerance: acceptable overload of the hottest shard relative to
            the even split (0.1 = 10%).
        qps_bias: how much a shard's share of query traffic inflates
            its load score (0 = size only).
    """
    if max_moves < 0:
        raise ShardError(f"max_moves must be >= 0, got {max_moves}")
    if tolerance < 0:
        raise ShardError(f"tolerance must be >= 0, got {tolerance}")
    shards = router.partition.shards
    if shards < 2:
        return RebalancePlan((), "single shard: nothing to balance")
    loads = _shard_loads(router, qps_bias)
    # Work on sorted copies of the owned sets; planning must not touch
    # live state, and sorted order makes the plan reproducible.
    pools = [sorted(nodes) for nodes in router.partition.shard_nodes]
    sizes = [len(pool) for pool in pools]
    per_node = [
        loads[shard_id] / sizes[shard_id] if sizes[shard_id] else 0.0
        for shard_id in range(shards)
    ]
    ideal = sum(loads) / shards
    moves: List[RebalanceMove] = []
    while len(moves) < max_moves:
        source = max(range(shards), key=lambda i: (loads[i], -i))
        target = min(range(shards), key=lambda i: (loads[i], i))
        if source == target or loads[source] <= ideal * (1.0 + tolerance):
            break
        if not pools[source]:
            break
        node = pools[source].pop(0)
        pools[target].append(node)
        loads[source] -= per_node[source]
        loads[target] += per_node[source]
        moves.append(RebalanceMove(node, source, target))
    return RebalancePlan(
        tuple(moves),
        f"even out load (ideal {ideal:.1f}/shard, "
        f"tolerance {tolerance:.0%}, qps_bias {qps_bias:g})",
    )


def drain_plan(
    router: Any,
    shard: int,
    targets: Optional[List[int]] = None,
) -> RebalancePlan:
    """A plan that empties ``shard``, striping its nodes round-robin
    over the surviving shards (or an explicit ``targets`` list) in
    sorted node order.  Draining is the decommission primitive: after
    the drain the shard owns nothing, resolves nothing and emits
    nothing, and every one of its former nodes is owned by exactly one
    survivor."""
    shards = router.partition.shards
    if not 0 <= shard < shards:
        raise ShardError(
            f"cannot drain shard {shard}: outside range(0, {shards})"
        )
    if targets is None:
        targets = [other for other in range(shards) if other != shard]
    if not targets:
        raise ShardError("draining needs at least one target shard")
    for target in targets:
        if not 0 <= target < shards or target == shard:
            raise ShardError(
                f"invalid drain target {target} for shard {shard}"
            )
    nodes = sorted(router.partition.shard_nodes[shard])
    moves = tuple(
        RebalanceMove(node, shard, targets[position % len(targets)])
        for position, node in enumerate(nodes)
    )
    return RebalancePlan(
        moves,
        f"drain shard {shard} into {targets} ({len(moves)} nodes)",
    )
