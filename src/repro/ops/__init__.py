"""Operational tooling: checkpoints, rebalancing, fault injection.

The serving stack persists every mutation epoch to a WAL
(:mod:`repro.store.wal`) and recovers by replaying it from the base
snapshot — correct, but O(history): a long-lived deployment pays an
unbounded replay on every restart and every
:meth:`~repro.cluster.replicaset.ReplicaSet.heal`.  Likewise the shard
partition is fixed at construction, so a hot or oversized shard stays
that way.  This package closes both gaps:

* :class:`~repro.ops.checkpoint.CheckpointManager` — periodically
  persists the facade's base state next to the WAL and records the
  checkpoint epoch in a manifest, re-basing the log: recovery
  (:meth:`~repro.core.incremental.IncrementalBANKS.recover` with
  ``checkpoints=``) and replica healing start from the newest valid
  checkpoint and replay only the tail, and
  :class:`~repro.store.wal.WalWriter` clamps retention pruning to the
  manifest epoch so the log can shrink without becoming unrecoverable.
* :class:`~repro.ops.rebalance.RebalancePlan` /
  :func:`~repro.ops.rebalance.plan_rebalance` — derive a node-move
  plan from the per-shard size and query metrics the router already
  exports; :meth:`~repro.shard.router.ShardRouter.rebalance` executes
  it epoch-by-epoch while serving.
* :class:`~repro.ops.faults.FaultInjector` — a deterministic
  clock/IO shim that can kill, stall or torn-write at every named step
  of both protocols, so ``tests/ops`` can prove crash consistency at
  every interruption point the way PR 4's fuzzing proved the WAL tail.
"""

from repro.ops.bench import OpsBenchReport, run_ops_benchmark
from repro.ops.checkpoint import (
    CHECKPOINT_STEPS,
    CheckpointManager,
    CheckpointRecord,
)
from repro.ops.faults import FaultInjected, FaultInjector
from repro.ops.rebalance import (
    REBALANCE_STEPS,
    RebalanceMove,
    RebalancePlan,
    drain_plan,
    plan_rebalance,
)

__all__ = [
    "CHECKPOINT_STEPS",
    "CheckpointManager",
    "CheckpointRecord",
    "FaultInjected",
    "FaultInjector",
    "OpsBenchReport",
    "REBALANCE_STEPS",
    "RebalanceMove",
    "RebalancePlan",
    "drain_plan",
    "plan_rebalance",
    "run_ops_benchmark",
]
