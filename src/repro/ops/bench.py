"""The ops benchmark: checkpointed recovery speed + rebalance parity.

:func:`run_ops_benchmark` (``banks bench-ops`` /
``benchmarks/bench_ops.py``) measures the two claims ``repro.ops``
ships on, with the correctness half reported as hard parity verdicts
the regression gate can floor:

* **recovery_speedup** — drive a long deterministic mutation history
  (default 500 epochs) through a WAL-attached
  :class:`~repro.serve.snapshot.SnapshotStore` with a
  :class:`~repro.ops.checkpoint.CheckpointManager` on a fixed cadence,
  then recover twice: full replay from the base snapshot vs the newest
  checkpoint plus the tail.  Both must reproduce the live facade's
  top-5 answers exactly (**checkpoint_recovery_parity**), and the
  checkpointed path must be meaningfully faster (the acceptance
  criterion is >= 3x on the 500-epoch log, gated in
  ``benchmarks/check_regression.py``).
* **rebalance_parity** — build a sharded router over the same data,
  record its gathered top-k, drain one shard live through
  :meth:`~repro.shard.router.ShardRouter.rebalance`, and require the
  post-drain top-k (roots and scores) to match the pre-drain one
  exactly — a move changes ownership, never answers — while staying
  never-worse than the unsharded reference at every rank (the shard
  benchmark's gathered-parity guarantee); plus the ownership sets
  must remain a disjoint cover of the node ids.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.incremental import IncrementalBANKS
from repro.deprecation import internal_construction
from repro.ops.checkpoint import CheckpointManager
from repro.ops.rebalance import drain_plan
from repro.serve.snapshot import SnapshotStore
from repro.store.bench import (
    PROBE_QUERIES,
    _top5_signatures,
    mutation_workload,
    run_operation,
)
from repro.store.wal import WalWriter


def _ownership_is_disjoint_cover(router) -> bool:
    """Every graph node owned by exactly one shard."""
    owned: set = set()
    total = 0
    for nodes in router.partition.shard_nodes:
        total += len(nodes)
        owned |= nodes
    if total != len(owned):
        return False  # overlap
    return owned == set(router.graph.nodes())


def _newest_checkpoint_bytes(manager: CheckpointManager) -> int:
    """Size of the newest checkpoint file on disk (0 when none)."""
    for epoch in manager.checkpoint_epochs():
        filepath = os.path.join(manager.path, f"{epoch:012d}.ckpt")
        try:
            return os.path.getsize(filepath)
        except OSError:  # pragma: no cover - pruned concurrently
            continue
    return 0


def _signature(answers) -> List[tuple]:
    """Relevance-ordered (root, score) pairs, ties broken by root repr
    (the shard benchmark's deterministic ordering)."""
    ranked = sorted(answers, key=lambda a: (-a.relevance, repr(a.tree.root)))
    return [(a.tree.root, round(a.relevance, 9)) for a in ranked]


def _router_signatures(router, queries: Sequence[str]) -> List[List[tuple]]:
    return [
        _signature(router.search(query, max_results=5)) for query in queries
    ]


def _never_worse(
    router_signatures: List[List[tuple]],
    reference_signatures: List[List[tuple]],
) -> bool:
    """The gather guarantee vs the single engine: at every rank the
    router's score is at least the reference's (per-shard top-k
    cutoffs can only surface *extra* deep candidates, never lose
    better ones) — the invariant ``benchmarks/bench_shard.py`` gates."""
    for ours, theirs in zip(router_signatures, reference_signatures):
        if len(ours) < len(theirs):
            return False
        for (_r1, score), (_r2, reference) in zip(ours, theirs):
            if score < reference - 1e-9:
                return False
    return True


@dataclass
class OpsBenchReport:
    """Outcome of one checkpointing + rebalancing measurement."""

    dataset: str
    epochs: int
    checkpoint_every: int
    checkpoints_written: int
    checkpoint_bytes: int
    checkpoint_seconds: float
    full_replay_seconds: float
    checkpoint_recover_seconds: float
    checkpoint_recovery_ok: bool
    rebalance_moves: int
    rebalance_seconds: float
    rebalance_ok: bool
    cover_ok: bool

    @property
    def recovery_speedup(self) -> float:
        """Full-history replay time over checkpointed recovery time."""
        if self.checkpoint_recover_seconds <= 0:
            return float("inf")
        return self.full_replay_seconds / self.checkpoint_recover_seconds

    @property
    def ok(self) -> bool:
        return self.checkpoint_recovery_ok and self.rebalance_ok and self.cover_ok

    def render(self) -> str:
        recovery = (
            "exact (top-5 roots and scores)"
            if self.checkpoint_recovery_ok
            else "MISMATCH"
        )
        rebalance = (
            "drain preserved answers exactly"
            if self.rebalance_ok
            else "MISMATCH"
        )
        cover = "disjoint cover held" if self.cover_ok else "COVER BROKEN"
        moves_per_second = self.rebalance_moves / max(
            self.rebalance_seconds, 1e-9
        )
        lines = [
            f"dataset              : {self.dataset}",
            f"history              : {self.epochs} epoch(s), checkpoint "
            f"every {self.checkpoint_every}",
            f"checkpoints          : {self.checkpoints_written} written, "
            f"newest {self.checkpoint_bytes} bytes "
            f"({self.checkpoint_seconds * 1000.0:.1f} ms each, mean)",
            f"full-history recover : {self.full_replay_seconds:.3f} s",
            f"checkpointed recover : {self.checkpoint_recover_seconds:.3f} s "
            f"({self.recovery_speedup:.1f}x faster), {recovery}",
            f"live drain           : {self.rebalance_moves} move(s) in "
            f"{self.rebalance_seconds:.3f} s "
            f"({moves_per_second:.0f} moves/s)",
            f"rebalance parity     : {rebalance}; {cover}",
        ]
        return "\n".join(lines)


def run_ops_benchmark(
    database,
    dataset: str = "",
    epochs: int = 500,
    checkpoint_every: int = 100,
    shards: int = 3,
    queries: Sequence[str] = PROBE_QUERIES,
    work_dir: Optional[str] = None,
) -> OpsBenchReport:
    """Measure checkpointed recovery against full replay, and prove a
    live drain keeps exact search parity.

    The caller's ``database`` is never mutated — every participant
    works on a fork.  ``fsync`` is off everywhere (WAL and
    checkpoints): this benchmark times *replay* and *moves*, not the
    disk, and the crash-consistency proof lives in ``tests/ops``.
    """
    script = mutation_workload(database, epochs)
    owns_dir = work_dir is None
    if owns_dir:
        work_dir = tempfile.mkdtemp(prefix="banks-ops-bench-")
    try:
        wal_dir = f"{work_dir}/wal"
        ckpt_dir = f"{work_dir}/checkpoints"
        manager = CheckpointManager(
            ckpt_dir, every=checkpoint_every, fsync=False
        )
        writer = WalWriter(
            wal_dir, fsync="never", checkpoint_path=ckpt_dir
        )
        store = SnapshotStore(
            IncrementalBANKS(database.fork()),
            copy_mode="delta",
            wal=writer,
            checkpoints=manager,
        )
        checkpoint_seconds: List[float] = []
        for op, args in script:
            before = manager.checkpoints_written
            began = time.perf_counter()
            store.mutate(
                lambda facade, op=op, args=args: run_operation(
                    facade, op, args
                )
            )
            if manager.checkpoints_written > before:
                checkpoint_seconds.append(time.perf_counter() - began)
        if manager.last_error is not None:  # pragma: no cover - diagnostics
            raise manager.last_error
        live = store.current().facade
        live_signatures = _top5_signatures(live, queries)

        # Each recovery is timed best-of-5: both paths are sub-second
        # at 500 epochs, where a single one-shot measurement is at the
        # mercy of GC pauses and allocator warm-up — the ratio is what
        # the regression gate floors, so it must be a property of the
        # mechanism, not of the noisiest run.
        def _best_of(recover, repeats: int = 5):
            best = float("inf")
            result = None
            for _attempt in range(repeats):
                began = time.perf_counter()
                result = recover()
                best = min(best, time.perf_counter() - began)
            return result, best

        full, full_replay_seconds = _best_of(
            lambda: IncrementalBANKS.recover(database.fork, wal_dir)
        )
        recovered, checkpoint_recover_seconds = _best_of(
            lambda: IncrementalBANKS.recover(
                database.fork, wal_dir, checkpoints=manager
            )
        )
        checkpoint_recovery_ok = (
            full.applied_epoch == recovered.applied_epoch == store.epoch
            and _top5_signatures(full, queries) == live_signatures
            and _top5_signatures(recovered, queries) == live_signatures
        )

        # Rebalance parity: a router draining a shard live must keep
        # returning exactly what it returned before the drain (a move
        # changes ownership, never answers), and stay never-worse than
        # the unsharded reference at every rank.  Thread backend —
        # deterministic and cheap; the process backend's move path is
        # covered by tests/ops.
        from repro.shard.router import ShardRouter

        reference = IncrementalBANKS(database.fork())
        reference_signatures = [
            _signature(reference.search(query, max_results=5))
            for query in queries
        ]
        with internal_construction():
            router = ShardRouter(
                database.fork(), shards=shards, backend="thread"
            )
        try:
            before = _router_signatures(router, queries)
            rebalance_ok = _never_worse(before, reference_signatures)
            cover_ok = _ownership_is_disjoint_cover(router)
            plan = drain_plan(router, shards - 1)
            began = time.perf_counter()
            outcome = router.rebalance(plan)
            rebalance_seconds = time.perf_counter() - began
            after = _router_signatures(router, queries)
            rebalance_ok = (
                rebalance_ok
                and after == before
                and _never_worse(after, reference_signatures)
            )
            cover_ok = cover_ok and _ownership_is_disjoint_cover(router)
            cover_ok = cover_ok and not router.partition.shard_nodes[shards - 1]
            rebalance_moves = outcome["applied"]
        finally:
            router.stop()

        return OpsBenchReport(
            dataset=dataset or database.name,
            epochs=store.epoch,
            checkpoint_every=checkpoint_every,
            checkpoints_written=manager.checkpoints_written,
            checkpoint_bytes=_newest_checkpoint_bytes(manager),
            checkpoint_seconds=(
                sum(checkpoint_seconds) / len(checkpoint_seconds)
                if checkpoint_seconds
                else 0.0
            ),
            full_replay_seconds=full_replay_seconds,
            checkpoint_recover_seconds=checkpoint_recover_seconds,
            checkpoint_recovery_ok=checkpoint_recovery_ok,
            rebalance_moves=rebalance_moves,
            rebalance_seconds=rebalance_seconds,
            rebalance_ok=rebalance_ok,
            cover_ok=cover_ok,
        )
    finally:
        if owns_dir:
            shutil.rmtree(work_dir, ignore_errors=True)


