"""Deterministic fault injection for the checkpoint/rebalance protocols.

PR 4 established the testing discipline durability code needs: every
failure offset is exercised mechanically, not sampled.  The WAL could
be fuzzed byte-by-byte because its on-disk format made "every
interruption point" enumerable.  Checkpointing and rebalancing are
multi-step *protocols*, so their interruption points are named steps
instead of byte offsets: each implementation calls
``faults.step(name)`` immediately **after** completing the named
action, and exports its step list (:data:`~repro.ops.checkpoint.
CHECKPOINT_STEPS`, :data:`~repro.ops.rebalance.REBALANCE_STEPS`) so a
test can iterate every one.

A :class:`FaultInjector` holds a deterministic plan keyed by step
name:

* **kill** — raise :class:`FaultInjected` at the step, simulating a
  crash at that exact point (everything before the step is on disk /
  applied, nothing after it is);
* **stall** — sleep at the step (through the injectable sleeper, so
  tests can count stalls without waiting), simulating a slow disk or a
  scheduler hiccup;
* **torn write** — for steps that write a file, persist only a prefix
  of the payload and then raise, simulating power loss mid-``write``.

Occurrences are counted per step name, so a plan can target "the
third checkpoint's rename" deterministically.  The injector records
every fault it fired (:attr:`FaultInjector.fired`) for assertions.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ReproError


class FaultInjected(ReproError):
    """The injected crash: raised at a planned step.

    Attributes:
        step: the named protocol step the fault fired at.
        mode: ``"kill"`` or ``"torn_write"``.
    """

    def __init__(self, step: str, mode: str = "kill"):
        super().__init__(f"injected fault at step {step!r} ({mode})")
        self.step = step
        self.mode = mode


class FaultInjector:
    """A deterministic plan of faults over named protocol steps.

    Args:
        sleeper: the sleep function stalls go through (injectable so a
            test can observe stalls without real waiting).
        clock: the time source exposed as :meth:`now` for protocol code
            that needs one (injectable for deterministic timestamps).
    """

    def __init__(
        self,
        sleeper: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
    ):
        self._sleeper = sleeper
        self._clock = clock
        #: step name -> list of (mode, occurrence, param) still armed.
        self._plan: Dict[str, List[Tuple[str, int, float]]] = {}
        self._counts: Dict[str, int] = {}
        #: Every fault that fired, as ``(step, mode, occurrence)``.
        self.fired: List[Tuple[str, str, int]] = []

    # -- planning -------------------------------------------------------------

    def kill_at(self, step: str, occurrence: int = 1) -> "FaultInjector":
        """Crash (raise :class:`FaultInjected`) at the ``occurrence``-th
        visit of ``step``."""
        return self._arm(step, "kill", occurrence, 0.0)

    def stall_at(
        self, step: str, seconds: float = 0.05, occurrence: int = 1
    ) -> "FaultInjector":
        """Sleep ``seconds`` at the ``occurrence``-th visit of ``step``."""
        return self._arm(step, "stall", occurrence, seconds)

    def torn_write_at(
        self, step: str, keep_fraction: float = 0.5, occurrence: int = 1
    ) -> "FaultInjector":
        """At the ``occurrence``-th visit of a *write* step, persist only
        ``keep_fraction`` of the payload bytes, then crash.  Protocol
        code consults :meth:`torn_bytes` during the write."""
        if not 0.0 <= keep_fraction < 1.0:
            raise ReproError(
                f"torn keep_fraction must be in [0, 1), got {keep_fraction}"
            )
        return self._arm(step, "torn_write", occurrence, keep_fraction)

    def _arm(
        self, step: str, mode: str, occurrence: int, param: float
    ) -> "FaultInjector":
        if occurrence < 1:
            raise ReproError(f"occurrence must be >= 1, got {occurrence}")
        self._plan.setdefault(step, []).append((mode, occurrence, param))
        return self

    def reset(self) -> None:
        """Forget counters and fired faults; the plan stays armed for
        a fresh protocol run."""
        self._counts.clear()
        self.fired.clear()

    # -- the shim surface protocol code calls ---------------------------------

    def step(self, name: str) -> None:
        """Mark one visit of a named step: stall and/or crash when the
        plan says so.  Called by protocol code immediately *after* the
        named action completed."""
        count = self._counts.get(name, 0) + 1
        self._counts[name] = count
        for mode, occurrence, param in self._plan.get(name, ()):
            if occurrence != count:
                continue
            if mode == "stall":
                self.fired.append((name, mode, count))
                self._sleeper(param)
            elif mode == "kill":
                self.fired.append((name, mode, count))
                raise FaultInjected(name, "kill")

    def torn_bytes(self, name: str, total: int) -> Optional[int]:
        """How many bytes of a ``total``-byte payload the *upcoming*
        visit of write step ``name`` may persist — ``None`` for all of
        them.  Does not advance the visit counter (the :meth:`step`
        call after the write does); a torn write is recorded as fired
        here, and the caller must raise :meth:`torn` after persisting
        the prefix."""
        upcoming = self._counts.get(name, 0) + 1
        for mode, occurrence, param in self._plan.get(name, ()):
            if mode == "torn_write" and occurrence == upcoming:
                self.fired.append((name, mode, upcoming))
                return min(max(0, int(total * param)), max(0, total - 1))
        return None

    @staticmethod
    def torn(name: str) -> FaultInjected:
        """The exception a torn write crashes with (caller raises it)."""
        return FaultInjected(name, "torn_write")

    def now(self) -> float:
        """The injected clock (protocol timestamps in tests)."""
        return self._clock()

    def sleep(self, seconds: float) -> None:
        """The injected sleeper (protocol waits in tests)."""
        self._sleeper(seconds)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        armed = sum(len(entries) for entries in self._plan.values())
        return f"FaultInjector({armed} armed, {len(self.fired)} fired)"
