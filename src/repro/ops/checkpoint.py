"""Checkpointing: re-base the WAL so recovery is O(tail), not O(history).

:meth:`~repro.core.incremental.IncrementalBANKS.recover` replays the
WAL from the *base* snapshot — every epoch ever published.  A
checkpoint persists the facade's current database next to the WAL so
recovery (and :meth:`~repro.cluster.replicaset.ReplicaSet.heal`) can
start from it and replay only the epochs published since.

On-disk layout (the checkpoint directory, conventionally
``<wal>/checkpoints``)::

    000000000042.ckpt    one checkpoint: <len u32 LE> <crc32 u32 LE>
                         <pickled {"format", "epoch", "database"}>
    MANIFEST.json        {"format": 1, "checkpoint_epoch": 42,
                          "file": "000000000042.ckpt"}

The write protocol is crash-consistent at every step (proven by
``tests/ops/test_checkpoint_crash.py`` against every named step):

1. **serialize** — frame the pickled payload with a length + CRC32
   header (the WAL's record discipline: a torn or corrupt file is
   *detected*, never trusted);
2. **write** — write the frame to ``<file>.tmp`` and fsync it;
3. **rename** — atomically rename into place and fsync the directory
   (the checkpoint now exists or it does not — never half);
4. **manifest_write** / **manifest_rename** — record the checkpoint
   epoch in ``MANIFEST.json`` the same tmp-then-rename way.  The
   manifest is what :class:`~repro.store.wal.WalWriter` reads as its
   retention **prune floor**: segments holding epochs above the
   manifest epoch are never pruned, so the tail a checkpoint needs is
   always still on disk;
5. **prune** — drop checkpoint files older than the ``keep`` newest.

A crash between 3 and 4 leaves a newer checkpoint than the manifest
records: loading scans the files themselves (newest first, checksum
verified) and uses the manifest only as the conservative prune floor,
so that state recovers exactly too.  A corrupt or torn checkpoint file
fails its CRC and is skipped — recovery falls back to the next older
checkpoint, or to the base snapshot.
"""

from __future__ import annotations

import json
import os
import pickle
import struct
import threading
import time
import warnings
import zlib
from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from repro.errors import StoreError
from repro.ops.faults import FaultInjector
from repro.store.wal import CHECKPOINT_MANIFEST, checkpoint_floor

#: ``<payload length> <crc32(payload)>``, little-endian — the WAL's
#: record framing, reused so torn checkpoints are detectable.
_FRAME = struct.Struct("<II")

_SUFFIX = ".ckpt"
_TEMP_SUFFIX = ".tmp"
_FORMAT = 1

#: The named interruption points of one checkpoint write, in protocol
#: order.  ``tests/ops`` iterates these; the manager calls
#: ``faults.step(name)`` immediately after each action completes.
CHECKPOINT_STEPS = (
    "serialize",
    "write",
    "rename",
    "manifest_write",
    "manifest_rename",
    "prune",
)


@dataclass(frozen=True)
class CheckpointRecord:
    """One durably written checkpoint.

    Attributes:
        epoch: the WAL epoch the checkpoint captures.
        path: the checkpoint file on disk.
        size_bytes: the framed file size.
        seconds: wall time the write took (serialize included).
    """

    epoch: int
    path: str
    size_bytes: int
    seconds: float


def _filename(epoch: int) -> str:
    return f"{epoch:012d}{_SUFFIX}"


def _list_checkpoints(path: str) -> List[Tuple[int, str]]:
    """``(epoch, absolute path)`` for every checkpoint file, newest
    first (by filename; the payload's own epoch is verified on load)."""
    found: List[Tuple[int, str]] = []
    for name in os.listdir(path):
        if not name.endswith(_SUFFIX):
            continue
        stem = name[: -len(_SUFFIX)]
        if not stem.isdigit():
            continue
        found.append((int(stem), os.path.join(path, name)))
    found.sort(reverse=True)
    return found


def _read_checkpoint(filepath: str) -> Optional[Tuple[int, Any]]:
    """``(epoch, database)`` from one checkpoint file, or ``None`` when
    the file is torn, corrupt or not a checkpoint — never an exception:
    a bad checkpoint is skipped, not fatal."""
    try:
        with open(filepath, "rb") as handle:
            data = handle.read()
    except OSError:
        return None
    if len(data) < _FRAME.size:
        return None
    length, checksum = _FRAME.unpack(data[: _FRAME.size])
    payload = data[_FRAME.size : _FRAME.size + length]
    if len(payload) != length or zlib.crc32(payload) != checksum:
        return None
    try:
        record = pickle.loads(payload)
    except Exception:
        return None
    if (
        not isinstance(record, dict)
        or record.get("format") != _FORMAT
        or "epoch" not in record
        or "database" not in record
    ):
        return None
    return int(record["epoch"]), record["database"]


class CheckpointManager:
    """Writes, validates and loads checkpoints for one WAL.

    Args:
        path: the checkpoint directory (created if missing).
        every: write a checkpoint every N epochs through
            :meth:`maybe_checkpoint` (0 disables the automatic cadence;
            explicit :meth:`checkpoint` always works).
        keep: newest checkpoint files retained after each write.
        fsync: pay the fsyncs (disable only for benchmarks, mirroring
            the WAL's ``fsync="never"``).
        faults: optional :class:`~repro.ops.faults.FaultInjector`; the
            manager announces every :data:`CHECKPOINT_STEPS` entry to
            it.
    """

    def __init__(
        self,
        path: str,
        every: int = 0,
        keep: int = 2,
        fsync: bool = True,
        faults: Optional[FaultInjector] = None,
    ):
        if every < 0:
            raise StoreError(f"checkpoint every must be >= 0, got {every}")
        if keep < 1:
            raise StoreError(f"checkpoint keep must be >= 1, got {keep}")
        self.path = str(path)
        self.every = every
        self.keep = keep
        self.fsync = fsync
        self.faults = faults
        os.makedirs(self.path, exist_ok=True)
        self._lock = threading.Lock()
        self.checkpoints_written = 0
        self.last_error: Optional[BaseException] = None
        self._last_epoch = self.manifest_epoch()

    # -- manifest / inventory -------------------------------------------------

    def manifest_epoch(self) -> int:
        """The manifest's checkpoint epoch (0 when none) — the WAL's
        prune floor."""
        return checkpoint_floor(self.path)

    def checkpoint_epochs(self) -> List[int]:
        """Epochs with a checkpoint file on disk, newest first
        (unvalidated; loading verifies)."""
        return [epoch for epoch, _path in _list_checkpoints(self.path)]

    # -- writing --------------------------------------------------------------

    def checkpoint(self, facade: Any, epoch: int) -> CheckpointRecord:
        """Durably persist ``facade``'s database as the state at WAL
        ``epoch``; returns the record.  Raises on any IO failure (or
        injected fault) — nothing partial is ever visible under the
        final filename."""
        with self._lock:
            started = time.perf_counter()
            payload = pickle.dumps(
                {
                    "format": _FORMAT,
                    "epoch": int(epoch),
                    "database": facade.database,
                },
                protocol=pickle.HIGHEST_PROTOCOL,
            )
            frame = _FRAME.pack(len(payload), zlib.crc32(payload)) + payload
            self._step("serialize")

            final = os.path.join(self.path, _filename(epoch))
            self._write_file("write", final + _TEMP_SUFFIX, frame)
            os.replace(final + _TEMP_SUFFIX, final)
            self._sync_directory()
            self._step("rename")

            manifest = json.dumps(
                {
                    "format": _FORMAT,
                    "checkpoint_epoch": int(epoch),
                    "file": _filename(epoch),
                },
                indent=2,
                sort_keys=True,
            ).encode("utf-8")
            manifest_path = os.path.join(self.path, CHECKPOINT_MANIFEST)
            self._write_file(
                "manifest_write", manifest_path + _TEMP_SUFFIX, manifest
            )
            os.replace(manifest_path + _TEMP_SUFFIX, manifest_path)
            self._sync_directory()
            self._step("manifest_rename")

            self._prune(epoch)
            self._step("prune")

            self._last_epoch = max(self._last_epoch, int(epoch))
            self.checkpoints_written += 1
            return CheckpointRecord(
                epoch=int(epoch),
                path=final,
                size_bytes=len(frame),
                seconds=time.perf_counter() - started,
            )

    def maybe_checkpoint(
        self, facade: Any, epoch: int
    ) -> Optional[CheckpointRecord]:
        """Checkpoint when the cadence says so: ``every`` is set and at
        least ``every`` epochs passed since the last checkpoint.  A
        failure is recorded (:attr:`last_error`) and warned about, not
        raised — the publish that triggered it already succeeded
        durably, so serving must not fail over a background snapshot."""
        if not self.every or epoch - self._last_epoch < self.every:
            return None
        try:
            return self.checkpoint(facade, epoch)
        except BaseException as error:
            self.last_error = error
            warnings.warn(
                f"checkpoint at epoch {epoch} failed "
                f"({type(error).__name__}: {error}); recovery falls back "
                "to the previous checkpoint or the base snapshot",
                RuntimeWarning,
                stacklevel=2,
            )
            return None

    # -- loading --------------------------------------------------------------

    def newest_valid(self) -> Optional[Tuple[int, Any]]:
        """``(epoch, database)`` from the newest checkpoint whose
        checksum verifies — files are scanned newest first and a
        torn/corrupt one is skipped, so a crash mid-write costs at most
        one checkpoint interval of extra replay."""
        for _epoch, filepath in _list_checkpoints(self.path):
            loaded = _read_checkpoint(filepath)
            if loaded is not None:
                return loaded
        return None

    def load_newest(self, **banks_options) -> Optional[Any]:
        """The newest valid checkpoint as a facade at its epoch, or
        ``None`` when no valid checkpoint exists.  The graph and index
        are rebuilt deterministically from the pickled database (and
        re-frozen to CSR by the consumer's construction path), exactly
        as a base-snapshot build would."""
        from repro.core.incremental import IncrementalBANKS

        loaded = self.newest_valid()
        if loaded is None:
            return None
        epoch, database = loaded
        facade = IncrementalBANKS(database, **banks_options)
        facade.applied_epoch = epoch
        return facade

    # -- internals ------------------------------------------------------------

    def _step(self, name: str) -> None:
        if self.faults is not None:
            self.faults.step(name)

    def _write_file(self, step: str, path: str, data: bytes) -> None:
        """Write ``data`` to ``path`` (fsynced), honouring a planned
        torn write: persist only the prefix, then crash."""
        torn = (
            self.faults.torn_bytes(step, len(data))
            if self.faults is not None
            else None
        )
        with open(path, "wb") as handle:
            handle.write(data if torn is None else data[:torn])
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())
        if torn is not None:
            raise FaultInjector.torn(step)
        self._step(step)

    def _sync_directory(self) -> None:
        if not self.fsync:
            return
        try:
            fd = os.open(self.path, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform-dependent
            return
        try:
            os.fsync(fd)
        except OSError:  # pragma: no cover - platform-dependent
            pass
        finally:
            os.close(fd)

    def _prune(self, newest_epoch: int) -> None:
        """Drop checkpoints beyond the ``keep`` newest (never the one
        just written, never the manifest's), plus stale temp files."""
        kept = 0
        for epoch, filepath in _list_checkpoints(self.path):
            if epoch >= newest_epoch or kept < self.keep:
                kept += 1
                continue
            try:
                os.remove(filepath)
            except OSError:  # pragma: no cover - concurrent cleanup
                pass
        for name in os.listdir(self.path):
            if name.endswith(_TEMP_SUFFIX):
                try:
                    os.remove(os.path.join(self.path, name))
                except OSError:  # pragma: no cover - concurrent cleanup
                    pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CheckpointManager({self.path!r}, every={self.every}, "
            f"epoch={self._last_epoch})"
        )
