"""Keyword indexing substrate.

Maps query keywords to the tuples (and metadata) that contain them:

* :mod:`repro.text.tokenizer` — normalisation shared by indexing and
  querying;
* :mod:`repro.text.inverted_index` — in-memory postings
  ``keyword -> {(table, rid, column)}`` over data *and* metadata (BANKS
  "allows query keywords to match data ... and meta data (e.g., column
  or relation name)");
* :mod:`repro.text.disk_index` — a sorted on-disk postings format,
  mirroring the paper's "indices to map keywords to RIDs can be disk
  resident";
* :mod:`repro.text.fuzzy` — edit-distance and ``approx(NUMBER)``
  matching (Sec. 7 future work, implemented here).
"""

from repro.text.inverted_index import InvertedIndex, Posting
from repro.text.disk_index import DiskIndex
from repro.text.fuzzy import damerau_levenshtein, numbers_near
from repro.text.tokenizer import tokenize, normalize

__all__ = [
    "DiskIndex",
    "InvertedIndex",
    "Posting",
    "damerau_levenshtein",
    "normalize",
    "numbers_near",
    "tokenize",
]
