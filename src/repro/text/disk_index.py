"""A disk-resident keyword index.

The paper keeps the data graph in memory but notes that *"indices to map
keywords to RIDs can be disk resident"*.  This module provides that
flavour: postings are written to a single file sorted by token, with an
in-memory directory of ``token -> (offset, count)`` built from the file
footer, so a lookup costs one seek plus one sequential read regardless of
vocabulary size.

File layout (all little-endian, lengths in bytes)::

    header    magic b"BNKIDX1\\n"
    body      repeated postings records, grouped by token, each
              <u16 table_len><table utf-8><u32 rid><u16 col_len><col utf-8>
    directory repeated <u16 token_len><token utf-8><u64 offset><u32 count>
    footer    <u64 directory_offset><u32 directory_entries> magic again

The format is append-free (write once, read many), which matches how
BANKS uses it: build at load time, query forever after.
"""

from __future__ import annotations

import os
import struct
from typing import BinaryIO, Dict, List, Tuple

from repro.errors import IndexError_
from repro.text.inverted_index import InvertedIndex, Posting
from repro.text.tokenizer import normalize

_MAGIC = b"BNKIDX1\n"
_FOOTER = struct.Struct("<QI")
_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")


def _write_string(handle: BinaryIO, text: str) -> None:
    raw = text.encode("utf-8")
    if len(raw) > 0xFFFF:
        raise IndexError_(f"string too long for index: {text[:40]!r}...")
    handle.write(_U16.pack(len(raw)))
    handle.write(raw)


def _read_string(handle: BinaryIO) -> str:
    (length,) = _U16.unpack(handle.read(2))
    return handle.read(length).decode("utf-8")


class DiskIndex:
    """Read-side handle on a disk-resident postings file."""

    def __init__(self, path: str):
        self.path = path
        self._directory: Dict[str, Tuple[int, int]] = {}
        self._load_directory()

    # -- construction -------------------------------------------------------

    @classmethod
    def write(cls, index: InvertedIndex, path: str) -> "DiskIndex":
        """Serialise an in-memory :class:`InvertedIndex` to ``path``."""
        directory: List[Tuple[str, int, int]] = []
        with open(path, "wb") as handle:
            handle.write(_MAGIC)
            for token in index.vocabulary():
                postings = index.lookup(token)
                directory.append((token, handle.tell(), len(postings)))
                for posting in postings:
                    _write_string(handle, posting.table)
                    handle.write(_U32.pack(posting.rid))
                    _write_string(handle, posting.column)
            directory_offset = handle.tell()
            for token, offset, count in directory:
                _write_string(handle, token)
                handle.write(struct.pack("<QI", offset, count))
            handle.write(_FOOTER.pack(directory_offset, len(directory)))
            handle.write(_MAGIC)
        return cls(path)

    def _load_directory(self) -> None:
        size = os.path.getsize(self.path)
        tail = _FOOTER.size + len(_MAGIC)
        if size < len(_MAGIC) + tail:
            raise IndexError_(f"{self.path!r} is not a BANKS index (too small)")
        with open(self.path, "rb") as handle:
            if handle.read(len(_MAGIC)) != _MAGIC:
                raise IndexError_(f"{self.path!r} has a bad header magic")
            handle.seek(size - tail)
            directory_offset, entries = _FOOTER.unpack(
                handle.read(_FOOTER.size)
            )
            if handle.read(len(_MAGIC)) != _MAGIC:
                raise IndexError_(f"{self.path!r} has a bad footer magic")
            handle.seek(directory_offset)
            for _ in range(entries):
                token = _read_string(handle)
                offset, count = struct.unpack("<QI", handle.read(12))
                self._directory[token] = (offset, count)

    # -- lookup ------------------------------------------------------------

    def lookup(self, term: str) -> List[Posting]:
        """Postings of ``term`` (one seek + sequential read)."""
        entry = self._directory.get(normalize(term))
        if entry is None:
            return []
        offset, count = entry
        postings: List[Posting] = []
        with open(self.path, "rb") as handle:
            handle.seek(offset)
            for _ in range(count):
                table = _read_string(handle)
                (rid,) = _U32.unpack(handle.read(4))
                column = _read_string(handle)
                postings.append(Posting(table, rid, column))
        return postings

    def vocabulary(self) -> List[str]:
        return sorted(self._directory)

    def document_frequency(self, term: str) -> int:
        return len({p.node for p in self.lookup(term)})

    def __contains__(self, term: str) -> bool:
        return normalize(term) in self._directory

    def __len__(self) -> int:
        return len(self._directory)
