"""In-memory inverted index over a relational database.

Maps every normalised token to its *postings*: the tuples whose text
attributes contain the token, plus metadata postings.  Metadata matching
follows the paper exactly: *"A node is relevant to a search term if it
contains the search term as part of an attribute value or metadata (such
as column, table or view names).  E.g., all tuples belonging to a
relation named AUTHOR would be regarded as relevant to the keyword
'author'."*

Data postings are stored per (table, rid, column); metadata matches are
resolved lazily at lookup time (expanding "every tuple of table X" into
RIDs only when a query actually asks for it — they can be huge, which is
the very problem Sec. 7 discusses).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import IndexError_
from repro.relational.database import Database, RID
from repro.text.tokenizer import normalize, tokenize, tokenize_identifier


@dataclass(frozen=True)
class Posting:
    """One occurrence of a token: which tuple, which column."""

    table: str
    rid: int
    column: str

    @property
    def node(self) -> RID:
        return (self.table, self.rid)


def _key_columns(schema) -> Set[str]:
    """Columns of ``schema`` that serve as connection identifiers."""
    columns: Set[str] = set(schema.primary_key)
    for fk in schema.foreign_keys:
        columns.update(fk.source_columns)
    return columns


class InvertedIndex:
    """Token -> postings over data values and schema metadata.

    Build once per database (:meth:`build` or the constructor), then
    :meth:`lookup` returns data postings and :meth:`lookup_nodes` the
    combined set of graph nodes relevant to a term, optionally including
    metadata expansion.

    By default, columns that participate in a primary key or a foreign
    key are *not* indexed: they hold connection identifiers, not
    content, and the paper's own example (Fig. 1B) treats the author
    tuples — not the ``Writes`` tuples carrying the same id strings — as
    the keyword nodes.  Pass ``index_key_columns=True`` to index them
    anyway.
    """

    def __init__(
        self,
        database: Optional[Database] = None,
        index_key_columns: bool = False,
    ):
        self.index_key_columns = index_key_columns
        self._postings: Dict[str, List[Posting]] = {}
        # token -> tables whose *name* matches it
        self._table_meta: Dict[str, Set[str]] = {}
        # token -> (table, column) pairs whose column name matches it
        self._column_meta: Dict[str, Set[Tuple[str, str]]] = {}
        self._database: Optional[Database] = None
        # Postings lists shared with a fork; copied before append.
        self._shared_tokens: Set[str] = set()
        if database is not None:
            self.build(database)

    # -- construction -------------------------------------------------------

    def build(self, database: Database) -> None:
        """(Re)index every table of ``database``."""
        self._postings.clear()
        self._table_meta.clear()
        self._column_meta.clear()
        self._shared_tokens.clear()
        self._database = database

        for table in database.tables():
            schema = table.schema
            for token in tokenize_identifier(schema.name):
                self._table_meta.setdefault(token, set()).add(schema.name)
            for column in schema.columns:
                for token in tokenize_identifier(column.name):
                    self._column_meta.setdefault(token, set()).add(
                        (schema.name, column.name)
                    )

            text_columns = [
                (schema.column_position(c.name), c.name)
                for c in schema.text_columns()
                if self.index_key_columns
                or c.name not in _key_columns(schema)
            ]
            if not text_columns:
                continue
            for row in table.scan():
                for position, column_name in text_columns:
                    value = row.values[position]
                    if value is None:
                        continue
                    for token in tokenize(value):
                        self._postings.setdefault(token, []).append(
                            Posting(schema.name, row.rid, column_name)
                        )

    def add_row(self, table: str, rid: int) -> Tuple[str, ...]:
        """Index one newly inserted row (incremental maintenance);
        returns the tokens that gained a posting."""
        if self._database is None:
            raise IndexError_("index not built yet")
        table_obj = self._database.table(table)
        row = table_obj.row(rid)
        key_columns = (
            set() if self.index_key_columns else _key_columns(table_obj.schema)
        )
        added: List[str] = []
        for column in table_obj.schema.text_columns():
            if column.name in key_columns:
                continue
            value = row[column.name]
            if value is None:
                continue
            for token in tokenize(value):
                if token in self._shared_tokens:
                    # The list is shared with a fork: copy before
                    # append.  (A removal may already have dropped or
                    # replaced the entry — then there is nothing
                    # shared left to copy.)
                    existing = self._postings.get(token)
                    if existing is not None:
                        self._postings[token] = list(existing)
                    self._shared_tokens.discard(token)
                self._postings.setdefault(token, []).append(
                    Posting(table, rid, column.name)
                )
                added.append(token)
        return tuple(added)

    def remove_row(self, table: str, rid: int) -> Tuple[str, ...]:
        """Drop the postings of one row (call *before* deleting or
        updating the row — the tokens are derived from its current
        values); returns the tokens that lost a posting."""
        if self._database is None:
            raise IndexError_("index not built yet")
        table_obj = self._database.table(table)
        row = table_obj.row(rid)
        key_columns = (
            set() if self.index_key_columns else _key_columns(table_obj.schema)
        )
        removed: List[str] = []
        for column in table_obj.schema.text_columns():
            if column.name in key_columns:
                continue
            value = row[column.name]
            if value is None:
                continue
            for token in tokenize(value):
                postings = self._postings.get(token)
                if not postings:
                    continue
                kept = [
                    posting
                    for posting in postings
                    if not (posting.table == table and posting.rid == rid)
                ]
                if len(kept) != len(postings):
                    removed.append(token)
                if kept:
                    self._postings[token] = kept
                else:
                    del self._postings[token]
        return tuple(removed)

    def fork(self, database: Optional[Database] = None) -> "InvertedIndex":
        """A copy-on-write fork sharing every postings list.

        ``database`` rebinds the fork to (typically) a fork of the
        database, so incremental maintenance reads the right rows.
        Postings lists are copied only when a mutation appends to them
        (removal already replaces lists wholesale); metadata tables
        describe the schema, which is fixed while serving, and stay
        shared outright.
        """
        child = InvertedIndex(index_key_columns=self.index_key_columns)
        child._database = database if database is not None else self._database
        child._table_meta = self._table_meta
        child._column_meta = self._column_meta
        child._postings = dict(self._postings)
        shared = set(self._postings)
        child._shared_tokens = shared
        self._shared_tokens = set(shared)
        return child

    def restricted_to(self, nodes: Set[RID]) -> "InvertedIndex":
        """A new index holding only the postings of ``nodes``.

        The shard layer partitions the keyword index this way: each
        shard keeps the postings of its own tuples, so the union of
        per-shard lookups equals a full-index lookup and no shard pays
        for another shard's vocabulary.  Metadata tables (name matches)
        are shared — they describe the schema, which every shard sees.
        """
        sub = InvertedIndex(index_key_columns=self.index_key_columns)
        sub._database = self._database
        sub._table_meta = self._table_meta
        sub._column_meta = self._column_meta
        sub._postings = {}
        for token, postings in self._postings.items():
            kept = [p for p in postings if p.node in nodes]
            if kept:
                sub._postings[token] = kept
        return sub

    # -- lookup ------------------------------------------------------------

    def lookup(self, term: str) -> List[Posting]:
        """Data postings for a term (no metadata expansion)."""
        return list(self._postings.get(normalize(term), ()))

    def lookup_column(self, term: str, table: str, column: str) -> List[Posting]:
        """Postings for ``term`` restricted to one table column —
        the machinery behind ``attribute:keyword`` queries."""
        return [
            posting
            for posting in self._postings.get(normalize(term), ())
            if posting.table == table and posting.column == column
        ]

    def matching_tables(self, term: str) -> Set[str]:
        """Tables whose *name* matches the term."""
        return set(self._table_meta.get(normalize(term), ()))

    def matching_columns(self, term: str) -> Set[Tuple[str, str]]:
        """(table, column) pairs whose column name matches the term."""
        return set(self._column_meta.get(normalize(term), ()))

    def lookup_nodes(
        self, term: str, include_metadata: bool = True
    ) -> Set[RID]:
        """All graph nodes relevant to ``term``.

        Data postings always contribute; with ``include_metadata`` every
        tuple of a name-matching table, and every tuple with a non-null
        value in a name-matching column, contributes too.
        """
        nodes: Set[RID] = {posting.node for posting in self.lookup(term)}
        if not include_metadata or self._database is None:
            return nodes
        for table_name in self.matching_tables(term):
            table = self._database.table(table_name)
            nodes.update((table_name, rid) for rid in table.rids())
        for table_name, column_name in self.matching_columns(term):
            table = self._database.table(table_name)
            position = table.schema.column_position(column_name)
            for row in table.scan():
                if row.values[position] is not None:
                    nodes.add((table_name, row.rid))
        return nodes

    # -- introspection ------------------------------------------------------

    def vocabulary(self) -> List[str]:
        """Every indexed token, sorted (used by fuzzy matching)."""
        return sorted(self._postings)

    def document_frequency(self, term: str) -> int:
        """Number of distinct tuples containing ``term`` — the
        selectivity signal the bidirectional search uses."""
        return len({p.node for p in self._postings.get(normalize(term), ())})

    def __contains__(self, term: str) -> bool:
        return normalize(term) in self._postings

    def __len__(self) -> int:
        return len(self._postings)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"InvertedIndex({len(self._postings)} terms)"
