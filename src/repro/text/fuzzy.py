"""Approximate keyword matching (paper Sec. 7, implemented).

Two flavours the paper sketches as future work:

* *"some form of approximate matching"* — :func:`expand_fuzzy` maps a
  query term to all vocabulary tokens within a Damerau–Levenshtein
  distance budget, so ``chakraborti`` still finds ``chakrabarti``;
* *"concurrency approx(1988) to look for papers about concurrency
  published around 1988"* — :func:`numbers_near` matches numeric tokens
  within a window of a target value.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple


def damerau_levenshtein(left: str, right: str, cap: int = 10**9) -> int:
    """Edit distance with transpositions; early-exits above ``cap``.

    The restricted (optimal string alignment) variant — sufficient for
    typo tolerance and O(len(left)·len(right)).
    """
    if left == right:
        return 0
    if abs(len(left) - len(right)) > cap:
        return cap + 1
    previous2: List[int] = []
    previous = list(range(len(right) + 1))
    for i, left_char in enumerate(left, start=1):
        current = [i] + [0] * len(right)
        for j, right_char in enumerate(right, start=1):
            substitution_cost = 0 if left_char == right_char else 1
            current[j] = min(
                previous[j] + 1,          # deletion
                current[j - 1] + 1,       # insertion
                previous[j - 1] + substitution_cost,
            )
            if (
                i > 1
                and j > 1
                and left_char == right[j - 2]
                and left[i - 2] == right_char
            ):
                current[j] = min(current[j], previous2[j - 2] + 1)
        if min(current) > cap:
            return cap + 1
        previous2, previous = previous, current
    return previous[len(right)]


def default_distance_budget(term: str) -> int:
    """A sensible typo budget: 0 for short terms, 1 up to 8 chars, 2 above.

    Short terms explode combinatorially under fuzzy matching (every
    3-letter token is within distance 2 of hundreds of others), so the
    budget scales with length.
    """
    if len(term) <= 4:
        return 0
    if len(term) <= 8:
        return 1
    return 2


def expand_fuzzy(
    term: str,
    vocabulary: Iterable[str],
    max_distance: int = -1,
) -> List[Tuple[str, int]]:
    """Vocabulary tokens within edit distance of ``term``.

    Args:
        term: normalised query term.
        vocabulary: candidate tokens (normalised).
        max_distance: edit budget; ``-1`` selects
            :func:`default_distance_budget`.

    Returns:
        ``(token, distance)`` pairs sorted by distance then token; the
        exact term (distance 0) comes first when present.
    """
    budget = max_distance if max_distance >= 0 else default_distance_budget(term)
    matches: List[Tuple[str, int]] = []
    for token in vocabulary:
        if abs(len(token) - len(term)) > budget:
            continue
        distance = damerau_levenshtein(term, token, cap=budget)
        if distance <= budget:
            matches.append((token, distance))
    matches.sort(key=lambda pair: (pair[1], pair[0]))
    return matches


def numbers_near(
    target: int, vocabulary: Iterable[str], window: int = 2
) -> List[str]:
    """Numeric vocabulary tokens within ``window`` of ``target``.

    Implements the paper's ``approx(1988)`` example: with
    ``window=2``, ``approx(1988)`` matches tokens 1986..1990.
    """
    matches: List[str] = []
    for token in vocabulary:
        if not token.isdigit():
            continue
        value = int(token)
        if abs(value - target) <= window:
            matches.append(token)
    matches.sort(key=int)
    return matches
