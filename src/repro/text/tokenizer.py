"""Text normalisation and tokenisation.

Both the indexer and the query parser funnel through :func:`normalize` /
:func:`tokenize`, so a keyword matches a tuple exactly when some token of
the tuple normalises identically to the query term — the property the
inverted-index tests assert.

Normalisation is deliberately mild (case folding, punctuation splitting,
no stemming): BANKS matches *tokens appearing in any textual attribute*,
and the paper's examples ("sunita temporal", "soumen sunita") are literal
lowercase tokens.
"""

from __future__ import annotations

import re
from typing import Iterator, List

_TOKEN_RE = re.compile(r"[A-Za-z0-9]+")
_CAMEL_RE = re.compile(r"(?<=[a-z])(?=[A-Z])")


def normalize(term: str) -> str:
    """Canonical form of a single term: lowercase, stripped."""
    return term.strip().lower()


def tokenize(text: str) -> List[str]:
    """Alphanumeric tokens of ``text`` in normalised form.

    Splits camelCase boundaries as well as punctuation so identifiers
    like ``ChakrabartiSD98`` yield ``chakrabarti``, ``sd98`` — keeping
    id-valued columns searchable the way the paper's screenshots show.
    """
    tokens: List[str] = []
    for word in _TOKEN_RE.findall(text):
        lowered = word.lower()
        if lowered == word:
            # Fast path: no uppercase, so no camel boundary to split.
            tokens.append(word)
        else:
            for part in _split_camel(word):
                tokens.append(part.lower())
    return tokens


def _split_camel(word: str) -> Iterator[str]:
    """Split ``word`` at lowercase->uppercase boundaries.

    ``SoumenC`` -> ``Soumen``, ``C``; all-caps runs stay together
    (``DBLP`` -> ``DBLP``); single-character fragments are kept (they
    still normalise and index, e.g. middle initials).
    """
    return iter(_CAMEL_RE.split(word))


def tokenize_identifier(identifier: str) -> List[str]:
    """Tokens of a schema identifier (``AuthorName`` -> author, name).

    Used for metadata matching: a keyword ``author`` is relevant to every
    tuple of a relation named ``AUTHOR`` or with a column ``AuthorName``.
    Underscores and camelCase both split.
    """
    return tokenize(identifier.replace("_", " "))
