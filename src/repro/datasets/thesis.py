"""IIT-Bombay-style thesis database generator (paper Sec. 5 dataset 2).

Schema (inferred from the paper's Fig. 4 browsing session and the
Sec. 5.1 anecdotes)::

    department(dept_id PK, name)
    program(prog_id PK, name)
    faculty(fac_id PK, name, dept_id -> department)
    student(roll_no PK, name, dept_id -> department, prog_id -> program)
    thesis(thesis_id PK, title, roll_no -> student, advisor -> faculty)

Planted anecdotes (Sec. 5.1):

* ``computer engineering`` — the *Computer Science and Engineering*
  department matches both keywords and carries high prestige (every CSE
  student and faculty member references it), while several theses with
  both words in their title have almost no inlinks; the department must
  outrank them;
* ``sudarshan aditya`` — student B. Aditya's thesis is advised by
  faculty S. Sudarshan; the thesis tuple is the ideal information node.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.relational.database import Database, RID
from repro.relational.schema import Column, ForeignKey, TableSchema
from repro.relational.types import TEXT

_DEPARTMENTS = [
    ("CSE", "Computer Science and Engineering"),
    ("EE", "Electrical Engineering"),
    ("ME", "Mechanical Engineering"),
    ("CE", "Civil Engineering"),
    ("CHE", "Chemical Engineering"),
    ("AE", "Aerospace Engineering"),
    ("MM", "Metallurgical Engineering and Materials Science"),
    ("PH", "Physics"),
    ("MA", "Mathematics"),
]

_PROGRAMS = [("MTECH", "Master of Technology"), ("PHD", "Doctor of Philosophy")]

_FACULTY_FIRST = [
    "Anil", "Bhaskar", "Chitra", "Deepak", "Esha", "Farhad", "Gopal",
    "Hema", "Indrajit", "Jyoti", "Kiran", "Lakshmi", "Manoj", "Neela",
    "Om", "Pradeep", "Qamar", "Rekha", "Suresh", "Trupti", "Uday",
    "Vidya", "Waman", "Yashwant",
]

_STUDENT_FIRST = [
    "Abhay", "Bina", "Chetan", "Divya", "Eshan", "Falguni", "Gautam",
    "Harsha", "Ila", "Jatin", "Kavita", "Lalit", "Mira", "Nakul", "Onkar",
    "Pooja", "Rahul", "Seema", "Tanmay", "Usha", "Varun", "Zara",
]

_SURNAMES = [
    "Agarwal", "Bhat", "Chandra", "Deshpande", "Gokhale", "Hegde",
    "Inamdar", "Jadhav", "Kulkarni", "Limaye", "Mehta", "Naik", "Oak",
    "Pandit", "Rane", "Sane", "Tendulkar", "Upadhye", "Vaidya", "Wagh",
]

_THESIS_TOPICS = [
    "adaptive control of flexible structures",
    "finite element analysis of composite plates",
    "query optimization for deductive databases",
    "speech recognition using hidden markov models",
    "low power vlsi circuit synthesis",
    "catalytic cracking of heavy hydrocarbons",
    "seismic response of reinforced frames",
    "combinatorial scheduling for flexible manufacturing",
    "wavelet methods for image compression",
    "numerical simulation of turbulent jets",
    "protocol verification with temporal logic",
    "microstructure evolution in steel welding",
    "robust estimation for power system state",
    "multigrid solvers for elliptic problems",
    "information extraction from web documents",
]


@dataclass
class ThesisAnecdotes:
    """Ground-truth RIDs of the planted thesis-database substructures."""

    cse_department: Optional[RID] = None
    sudarshan: Optional[RID] = None
    aditya: Optional[RID] = None
    aditya_thesis: Optional[RID] = None
    computer_engineering_theses: List[RID] = field(default_factory=list)


def _schema(database: Database) -> None:
    database.create_table(
        TableSchema(
            "department",
            [Column("dept_id", TEXT, nullable=False),
             Column("name", TEXT, nullable=False)],
            primary_key=("dept_id",),
        )
    )
    database.create_table(
        TableSchema(
            "program",
            [Column("prog_id", TEXT, nullable=False),
             Column("name", TEXT, nullable=False)],
            primary_key=("prog_id",),
        )
    )
    database.create_table(
        TableSchema(
            "faculty",
            [Column("fac_id", TEXT, nullable=False),
             Column("name", TEXT, nullable=False),
             Column("dept_id", TEXT, nullable=False)],
            primary_key=("fac_id",),
            foreign_keys=[
                ForeignKey("faculty", ("dept_id",), "department", ("dept_id",)),
            ],
        )
    )
    database.create_table(
        TableSchema(
            "student",
            [Column("roll_no", TEXT, nullable=False),
             Column("name", TEXT, nullable=False),
             Column("dept_id", TEXT, nullable=False),
             Column("prog_id", TEXT, nullable=False)],
            primary_key=("roll_no",),
            foreign_keys=[
                ForeignKey("student", ("dept_id",), "department", ("dept_id",)),
                ForeignKey("student", ("prog_id",), "program", ("prog_id",)),
            ],
        )
    )
    database.create_table(
        TableSchema(
            "thesis",
            [Column("thesis_id", TEXT, nullable=False),
             Column("title", TEXT, nullable=False),
             Column("roll_no", TEXT, nullable=False),
             Column("advisor", TEXT, nullable=False)],
            primary_key=("thesis_id",),
            foreign_keys=[
                ForeignKey("thesis", ("roll_no",), "student", ("roll_no",)),
                ForeignKey("thesis", ("advisor",), "faculty", ("fac_id",)),
            ],
        )
    )


def generate_thesis_db(
    students_per_department: int = 40,
    faculty_per_department: int = 8,
    seed: int = 7,
    include_anecdotes: bool = True,
) -> Tuple[Database, ThesisAnecdotes]:
    """Generate the thesis database.

    Returns ``(database, anecdotes)``.
    """
    rng = random.Random(seed)
    database = Database("thesis")
    _schema(database)
    anecdotes = ThesisAnecdotes()

    for prog_id, prog_name in _PROGRAMS:
        database.insert("program", [prog_id, prog_name])

    dept_rids: Dict[str, RID] = {}
    for dept_id, dept_name in _DEPARTMENTS:
        dept_rids[dept_id] = database.insert("department", [dept_id, dept_name])
    anecdotes.cse_department = dept_rids["CSE"]

    faculty_of_dept: Dict[str, List[str]] = {d: [] for d, _ in _DEPARTMENTS}
    faculty_count = 0
    for dept_id, _ in _DEPARTMENTS:
        for _ in range(faculty_per_department):
            fac_id = f"F{faculty_count:04d}"
            faculty_count += 1
            name = (
                f"Prof. {rng.choice(_FACULTY_FIRST)} {rng.choice(_SURNAMES)}"
            )
            database.insert("faculty", [fac_id, name, dept_id])
            faculty_of_dept[dept_id].append(fac_id)

    if include_anecdotes:
        anecdotes.sudarshan = database.insert(
            "faculty", ["FSUD", "Prof. S. Sudarshan", "CSE"]
        )
        faculty_of_dept["CSE"].append("FSUD")

    student_count = 0
    thesis_count = 0

    def add_student(name: str, dept_id: str, prog_id: str) -> Tuple[str, RID]:
        nonlocal student_count
        roll = f"R{student_count:05d}"
        student_count += 1
        rid = database.insert("student", [roll, name, dept_id, prog_id])
        return roll, rid

    def add_thesis(title: str, roll: str, advisor: str) -> RID:
        nonlocal thesis_count
        thesis_id = f"T{thesis_count:05d}"
        thesis_count += 1
        return database.insert("thesis", [thesis_id, title, roll, advisor])

    if include_anecdotes:
        aditya_roll, anecdotes.aditya = add_student(
            "B. Aditya", "CSE", "MTECH"
        )
        anecdotes.aditya_thesis = add_thesis(
            "Keyword Search Interfaces For Relational Data",
            aditya_roll,
            "FSUD",
        )
        # Theses whose titles contain both "computer" and "engineering":
        # they compete with the CSE department for that query and must
        # lose on prestige.
        for number, (dept_id, title) in enumerate(
            [
                ("ME", "Computer Aided Engineering Of Gear Trains"),
                ("CE", "Computer Models In Earthquake Engineering"),
                ("EE", "Computer Methods For Power Engineering Networks"),
            ]
        ):
            roll, _ = add_student(
                f"Sam Holder{number}", dept_id, "MTECH"
            )
            advisor = rng.choice(faculty_of_dept[dept_id])
            anecdotes.computer_engineering_theses.append(
                add_thesis(title, roll, advisor)
            )

    used_names: set = set()
    for dept_id, _ in _DEPARTMENTS:
        for _ in range(students_per_department):
            while True:
                name = f"{rng.choice(_STUDENT_FIRST)} {rng.choice(_SURNAMES)}"
                if name not in used_names:
                    used_names.add(name)
                    break
            prog_id = rng.choice(_PROGRAMS)[0]
            roll, _rid = add_student(name, dept_id, prog_id)
            advisor = rng.choice(faculty_of_dept[dept_id])
            topic = rng.choice(_THESIS_TOPICS)
            title = " ".join(word.capitalize() for word in topic.split())
            add_thesis(title, roll, advisor)

    return database, anecdotes
