"""A DBLP-scale synthetic bibliography, streamed record by record.

The paper's headline experiment runs on a DBLP extraction of roughly
100K nodes and 300K edges; :func:`~repro.datasets.bibliography.
generate_bibliography` reproduces its *structure* (schema, anecdotes,
skew) at demo scale, but materialises the whole database in memory
before anyone can touch a row.  The ingest pipeline
(:mod:`repro.ingest`) needs the opposite shape: a **stream** of
records it can chunk, checkpoint and resume — so this module exposes
the generator as an iterator of ``(table, values)`` records in
foreign-key-safe order (every referenced row is emitted before any
row referencing it).

Design points, all load-bearing for ingest benchmarks:

* **Deterministic in ``(n_papers, seed, in_degree_cap)``** — two
  iterations yield byte-identical record sequences, which is what
  makes "skip the first N records" a correct resume cursor.
* **Zipfian citation skew** — a paper cites either a *hot* landmark
  paper (front-biased pick from a slowly growing landmark list) or a
  recent one (``u**4``-biased toward the newest), matching the
  paper's observation that citation prestige is heavily skewed.
* **Bounded in-degree** — per-paper citations-received are capped
  (default 48).  Eq. 1 re-weighs every edge into a node whose
  indegree changed, so an uncapped hub makes incremental ingest
  quadratic in the hub's degree; real DBLP in-degrees are heavy-tailed
  but finite, and the cap keeps the synthetic tail honest *and* the
  ingest benchmark O(records).

Every tuple becomes one graph node, so ``n_papers=19500`` yields a
graph of 100K+ nodes — the paper's scale — from about 105K records.
"""

from __future__ import annotations

import random
from typing import Any, Iterator, List, Tuple

from repro.datasets.bibliography import (
    _FIRST_NAMES,
    _LAST_NAMES,
    _TITLE_WORDS,
    _schema,
)
from repro.relational.database import Database

#: Queries with many real matches in any non-trivial synthetic
#: bibliography (title vocabulary words — multi-term heavy, like the
#: other demo query sets, so "top k" is well defined under prestige).
DEMO_QUERIES = (
    "mining discovery",
    "adaptive indexing",
    "incremental maintenance",
    "parallel partitioning",
    "materialized views",
    "queries optimization",
)


def synth_bibliography_base(name: str = "synth_bibliography") -> Database:
    """An empty database with the bibliography schema (author, paper,
    writes, cites) — the base an ingest job streams records into."""
    database = Database(name)
    _schema(database)
    return database


def synth_bibliography_records(
    n_papers: int,
    seed: int = 7,
    in_degree_cap: int = 48,
) -> Iterator[Tuple[str, List[Any]]]:
    """Stream the synthetic bibliography as ``(table, values)`` records.

    The order is foreign-key safe: an author precedes their first
    ``writes`` tuple, a paper precedes both its ``writes`` and every
    ``cites`` tuple naming it, and citations only point backward in
    paper order — so any prefix of the stream is a consistent
    database, which is exactly what lets the ingest pipeline commit
    chunk boundaries anywhere.

    Fully deterministic for a given ``(n_papers, seed,
    in_degree_cap)``: resume-by-skip depends on replaying the same
    sequence.
    """
    if n_papers < 0:
        raise ValueError(f"n_papers must be >= 0, got {n_papers}")
    if in_degree_cap < 1:
        raise ValueError(f"in_degree_cap must be >= 1, got {in_degree_cap}")
    rng = random.Random(seed)
    n_authors = 0
    in_degree: dict = {}
    hot: List[int] = []
    for i in range(n_papers):
        paper_id = f"S{i:06d}"
        team = set()
        size = rng.choices((1, 2, 3), (30, 50, 20))[0]
        for _ in range(size):
            if n_authors and rng.random() < 0.6:
                # Prolific authors: front-biased pick over the ids so
                # early authors accumulate Zipfian paper counts.
                team.add(int(n_authors * (rng.random() ** 3)))
            else:
                author_id = n_authors
                n_authors += 1
                first = _FIRST_NAMES[author_id % len(_FIRST_NAMES)]
                last = _LAST_NAMES[
                    (author_id // len(_FIRST_NAMES)) % len(_LAST_NAMES)
                ]
                yield (
                    "author",
                    [f"sa{author_id:06d}", f"{first} {last} {author_id}"],
                )
                team.add(author_id)
        title = " ".join(
            word.capitalize()
            for word in rng.sample(_TITLE_WORDS, rng.randint(3, 6))
        )
        yield ("paper", [paper_id, title])
        for author_id in sorted(team):
            yield ("writes", [f"sa{author_id:06d}", paper_id])
        if i:
            n_out = rng.choices(
                (0, 1, 2, 3, 5, 8), (15, 25, 25, 18, 12, 5)
            )[0]
            cited = set()
            for _ in range(n_out):
                if hot and rng.random() < 0.3:
                    j = hot[int(len(hot) * (rng.random() ** 3))]
                else:
                    j = i - 1 - int((i - 1) * (rng.random() ** 4))
                if j == i or j in cited:
                    continue
                if in_degree.get(j, 0) >= in_degree_cap:
                    continue
                cited.add(j)
                in_degree[j] = in_degree.get(j, 0) + 1
                yield ("cites", [paper_id, f"S{j:06d}"])
        if i % 89 == 0:
            hot.append(i)


def synth_bibliography(
    n_papers: int = 2000,
    seed: int = 7,
    in_degree_cap: int = 48,
) -> Tuple[Database, int]:
    """Materialise the whole stream into a database directly (no
    pipeline) — the parity reference an interrupted-and-resumed ingest
    is compared against.  Returns ``(database, record_count)``."""
    database = synth_bibliography_base()
    count = 0
    for table, values in synth_bibliography_records(
        n_papers, seed=seed, in_degree_cap=in_degree_cap
    ):
        database.insert(table, values)
        count += 1
    return database, count
