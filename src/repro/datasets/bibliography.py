"""DBLP-like bibliographic database generator (paper Fig. 1 schema).

Schema::

    author(author_id PK, name)
    paper(paper_id PK, title)
    writes(author_id -> author, paper_id -> paper)
    cites(citing -> paper, cited -> paper)

Structural properties mirrored from DBLP: Zipf-like paper counts per
author (a few very prolific authors), Zipf-like citation counts (a few
classics), 1–4 authors per paper.  On top of the random mass, the
generator plants the exact substructures behind the paper's Sec. 5.1
anecdotes; :class:`BibliographyAnecdotes` records their RIDs so the
evaluation workload can point at ground-truth ideal answers.

Planted anecdotes:

* ``soumen sunita`` — Soumen Chakrabarti, Sunita Sarawagi and Byron Dom
  co-author *Mining Surprising Patterns Using Temporal Description
  Length* (ChakrabartiSD98), and Soumen/Sunita co-author one more paper;
* ``mohan`` — C. Mohan is highly prolific; Mohan Ahuja and Mohan Kamat
  have fewer papers;
* ``transaction`` — Jim Gray's classic and the Gray & Reuter book are
  the two most-cited "transaction" items; several low-citation
  transaction papers also exist;
* ``seltzer sunita`` — Margo Seltzer and Sunita are *not* co-authors but
  both co-authored with the extremely prolific Michael Stonebraker (the
  log-scaling anecdote: his author->writes back edge is very heavy).
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.relational.database import Database, RID
from repro.relational.schema import Column, ForeignKey, TableSchema
from repro.relational.types import TEXT

_FIRST_NAMES = [
    "Alice", "Rajeev", "Wei", "Maria", "David", "Elena", "Hiro", "Fatima",
    "Carlos", "Ingrid", "Pavel", "Nadia", "Tomás", "Yuki", "Omar", "Greta",
    "Lars", "Priya", "Chen", "Amara", "Viktor", "Leila", "Marco", "Sofia",
    "Anders", "Ravi", "Mei", "Hanna", "Diego", "Olga", "Kenji", "Asha",
    "Peter", "Lucia", "Ivan", "Rosa", "Emil", "Tara", "Jorge", "Nina",
]

_LAST_NAMES = [
    "Albrecht", "Banerjee", "Costa", "Dimitrov", "Eriksson", "Fernandez",
    "Goldberg", "Haas", "Ivanov", "Jensen", "Kaufmann", "Lindqvist",
    "Moreno", "Nakamura", "Oliveira", "Petrov", "Quast", "Rossi",
    "Schmidt", "Takahashi", "Ullman2", "Varga", "Weber", "Xu", "Yamada",
    "Zhou", "Becker", "Carvalho", "Dutta", "Engel", "Fischer", "Garg",
    "Hoffmann", "Iyer", "Joshi", "Keller", "Lombardi", "Mishra", "Novak",
    "Okafor",
]

_TITLE_WORDS = [
    "adaptive", "aggregation", "algebra", "analysis", "buffering",
    "caching", "clustering", "concurrent", "cost", "cube", "decision",
    "declarative", "deductive", "dependencies", "design", "discovery",
    "distributed", "dynamic", "efficient", "estimation", "evaluation",
    "extensible", "federated", "histograms", "incremental", "indexing",
    "integration", "joins", "knowledge", "languages", "learning",
    "maintenance", "materialized", "mediators", "memory", "mining",
    "models", "multidimensional", "nested", "object", "optimization",
    "parallel", "partitioning", "performance", "pipelined", "processing",
    "provenance", "queries", "recursive", "relational", "replication",
    "sampling", "scalable", "scheduling", "semantics", "semistructured",
    "sequences", "spatial", "storage", "streams", "views", "warehousing",
    "workflow",
]


@dataclass
class BibliographyAnecdotes:
    """Ground-truth RIDs of the planted Sec. 5.1 substructures."""

    # soumen sunita
    soumen: Optional[RID] = None
    sunita: Optional[RID] = None
    byron: Optional[RID] = None
    chakrabarti_sd98: Optional[RID] = None
    soumen_sunita_second_paper: Optional[RID] = None
    # mohan
    c_mohan: Optional[RID] = None
    mohan_ahuja: Optional[RID] = None
    mohan_kamat: Optional[RID] = None
    # transaction
    gray: Optional[RID] = None
    reuter: Optional[RID] = None
    transaction_classic: Optional[RID] = None
    transaction_book: Optional[RID] = None
    minor_transaction_papers: List[RID] = field(default_factory=list)
    # seltzer sunita
    seltzer: Optional[RID] = None
    stonebraker: Optional[RID] = None
    stonebraker_seltzer_paper: Optional[RID] = None
    stonebraker_sunita_paper: Optional[RID] = None
    # sudarshan (metadata query)
    sudarshan: Optional[RID] = None
    # writes tuples for the Fig. 2 tree
    writes_by_paper: Dict[Tuple[RID, RID], RID] = field(default_factory=dict)


def _schema(database: Database) -> None:
    database.create_table(
        TableSchema(
            "author",
            [Column("author_id", TEXT, nullable=False),
             Column("name", TEXT, nullable=False)],
            primary_key=("author_id",),
        )
    )
    database.create_table(
        TableSchema(
            "paper",
            [Column("paper_id", TEXT, nullable=False),
             Column("title", TEXT, nullable=False)],
            primary_key=("paper_id",),
        )
    )
    database.create_table(
        TableSchema(
            "writes",
            [Column("author_id", TEXT, nullable=False),
             Column("paper_id", TEXT, nullable=False)],
            primary_key=("author_id", "paper_id"),
            foreign_keys=[
                ForeignKey("writes", ("author_id",), "author", ("author_id",)),
                ForeignKey("writes", ("paper_id",), "paper", ("paper_id",)),
            ],
        )
    )
    database.create_table(
        TableSchema(
            "cites",
            [Column("citing", TEXT, nullable=False),
             Column("cited", TEXT, nullable=False)],
            primary_key=("citing", "cited"),
            foreign_keys=[
                ForeignKey("cites", ("citing",), "paper", ("paper_id",)),
                ForeignKey("cites", ("cited",), "paper", ("paper_id",)),
            ],
        )
    )


class _Builder:
    """Insertion helpers with id bookkeeping."""

    def __init__(self, database: Database, rng: random.Random):
        self.database = database
        self.rng = rng
        self.author_rids: Dict[str, RID] = {}
        self.paper_rids: Dict[str, RID] = {}
        self.writes_rids: Dict[Tuple[str, str], RID] = {}
        self.cites_pairs: Set[Tuple[str, str]] = set()
        self.papers_of_author: Dict[str, List[str]] = {}

    def add_author(self, author_id: str, name: str) -> RID:
        rid = self.database.insert("author", [author_id, name])
        self.author_rids[author_id] = rid
        self.papers_of_author[author_id] = []
        return rid

    def add_paper(self, paper_id: str, title: str) -> RID:
        rid = self.database.insert("paper", [paper_id, title])
        self.paper_rids[paper_id] = rid
        return rid

    def add_writes(self, author_id: str, paper_id: str) -> RID:
        key = (author_id, paper_id)
        if key in self.writes_rids:
            return self.writes_rids[key]
        rid = self.database.insert("writes", [author_id, paper_id])
        self.writes_rids[key] = rid
        self.papers_of_author[author_id].append(paper_id)
        return rid

    def add_cites(self, citing: str, cited: str) -> Optional[RID]:
        if citing == cited or (citing, cited) in self.cites_pairs:
            return None
        self.cites_pairs.add((citing, cited))
        return self.database.insert("cites", [citing, cited])

    def random_title(self, words: int) -> str:
        picked = self.rng.sample(_TITLE_WORDS, words)
        return " ".join(word.capitalize() for word in picked)


def generate_bibliography(
    papers: int = 400,
    authors: int = 220,
    seed: int = 42,
    include_anecdotes: bool = True,
    citations_per_paper: float = 1.2,
) -> Tuple[Database, BibliographyAnecdotes]:
    """Generate the bibliographic database.

    Args:
        papers: number of *random* papers (anecdote papers are extra).
        authors: number of random authors (anecdote authors are extra).
        seed: RNG seed; everything is deterministic in it.
        include_anecdotes: plant the Sec. 5.1 substructures.
        citations_per_paper: mean outgoing citations per random paper.

    Returns:
        ``(database, anecdotes)``; ``anecdotes`` holds ground-truth RIDs
        (all ``None`` when ``include_anecdotes`` is false).
    """
    rng = random.Random(seed)
    database = Database("bibliography")
    _schema(database)
    builder = _Builder(database, rng)
    anecdotes = BibliographyAnecdotes()

    if include_anecdotes:
        _plant_anecdotes(builder, anecdotes)

    # -- random authors ------------------------------------------------------
    random_author_ids: List[str] = []
    used_names: Set[str] = set()
    while len(random_author_ids) < authors:
        first = rng.choice(_FIRST_NAMES)
        last = rng.choice(_LAST_NAMES)
        name = f"{first} {last}"
        if name in used_names:
            # The name pool holds ~1600 combinations; at larger scales
            # disambiguate with a numeral instead of rejecting (a bare
            # rejection loop would never terminate past the pool size).
            name = f"{first} {last} {len(random_author_ids)}"
        used_names.add(name)
        author_id = f"{first}{last}{len(random_author_ids)}"
        builder.add_author(author_id, name)
        random_author_ids.append(author_id)

    # Zipf-ish author productivity, flattened so that no *random* author
    # rivals the planted prolific ones (C. Mohan ~18 papers, Stonebraker
    # ~55): the top random author lands around 15 papers at the default
    # scale.
    author_weights = [
        1.0 / (rank + 20) for rank in range(len(random_author_ids))
    ]
    # Cumulative weights make each rng.choices call O(log n) instead of
    # O(n) — essential at benchmark scales.
    author_cum_weights = list(itertools.accumulate(author_weights))

    # -- random papers ------------------------------------------------------------
    random_paper_ids: List[str] = []
    for number in range(papers):
        paper_id = f"P{number:05d}"
        title = builder.random_title(rng.randint(3, 6))
        builder.add_paper(paper_id, title)
        random_paper_ids.append(paper_id)
        team_size = rng.choices((1, 2, 3, 4), weights=(20, 40, 30, 10))[0]
        team = _weighted_sample(
            rng, random_author_ids, author_cum_weights, team_size
        )
        for author_id in team:
            builder.add_writes(author_id, paper_id)

    if include_anecdotes:
        _attach_anecdote_mass(builder, anecdotes, random_author_ids, random_paper_ids)

    # -- citations: preferential attachment --------------------------------------
    all_paper_ids = list(builder.paper_rids)
    # Base attractiveness: 1 + already-assigned boost (classics get big boosts
    # during anecdote planting through explicit extra citations below).
    attractiveness = {paper_id: 1.0 for paper_id in all_paper_ids}
    if include_anecdotes and anecdotes.transaction_classic is not None:
        # The two Gray classics dominate citations (as in real life);
        # they also push the graph's maximum node weight well above the
        # planted prolific authors, which keeps node scores spread out.
        classic_id = database.row(anecdotes.transaction_classic)["paper_id"]
        book_id = database.row(anecdotes.transaction_book)["paper_id"]
        attractiveness[classic_id] = 250.0
        attractiveness[book_id] = 150.0

    target_citations = int(len(random_paper_ids) * citations_per_paper)
    cum_weights = list(
        itertools.accumulate(attractiveness[p] for p in all_paper_ids)
    )
    for _ in range(target_citations):
        citing = rng.choice(random_paper_ids)
        cited = rng.choices(all_paper_ids, cum_weights=cum_weights)[0]
        builder.add_cites(citing, cited)

    anecdotes.writes_by_paper = {
        (builder.author_rids[a], builder.paper_rids[p]): rid
        for (a, p), rid in builder.writes_rids.items()
    }
    return database, anecdotes


def _weighted_sample(
    rng: random.Random,
    population: Sequence[str],
    cum_weights: Sequence[float],
    count: int,
) -> List[str]:
    """Sample ``count`` distinct items with replacement-then-dedup."""
    chosen: Set[str] = set()
    guard = 0
    while len(chosen) < count and guard < 50 * count:
        chosen.add(rng.choices(population, cum_weights=cum_weights)[0])
        guard += 1
    return list(chosen)


def _plant_anecdotes(builder: _Builder, out: BibliographyAnecdotes) -> None:
    """Insert the Sec. 5.1 entities (before the random mass)."""
    db_paper_count = 0

    def planted_paper(title: str) -> str:
        nonlocal db_paper_count
        paper_id = f"A{db_paper_count:04d}"
        db_paper_count += 1
        builder.add_paper(paper_id, title)
        return paper_id

    # soumen sunita / byron — the Fig. 1(B) substructure.
    out.soumen = builder.add_author("SoumenC", "Soumen Chakrabarti")
    out.sunita = builder.add_author("SunitaS", "Sunita Sarawagi")
    out.byron = builder.add_author("ByronD", "Byron Dom")
    sd98 = "ChakrabartiSD98"
    builder.add_paper(
        sd98, "Mining Surprising Patterns Using Temporal Description Length"
    )
    out.chakrabarti_sd98 = builder.paper_rids[sd98]
    for author in ("SoumenC", "SunitaS", "ByronD"):
        builder.add_writes(author, sd98)
    second = planted_paper("Scalable Mining Of Sequential Rules")
    out.soumen_sunita_second_paper = builder.paper_rids[second]
    builder.add_writes("SoumenC", second)
    builder.add_writes("SunitaS", second)

    # mohan — prestige by writes-count.
    out.c_mohan = builder.add_author("CMohan", "C. Mohan")
    out.mohan_ahuja = builder.add_author("MohanA", "Mohan Ahuja")
    out.mohan_kamat = builder.add_author("MohanK", "Mohan Kamat")
    for number in range(18):
        paper_id = planted_paper(
            f"Recovery Method {number} For Write Ahead Logging"
        )
        builder.add_writes("CMohan", paper_id)
    for number in range(5):
        paper_id = planted_paper(f"Ordered Multicast Protocols Part {number}")
        builder.add_writes("MohanA", paper_id)
    for number in range(2):
        paper_id = planted_paper(f"Lock Manager Notes Volume {number}")
        builder.add_writes("MohanK", paper_id)

    # transaction — prestige by citations.
    out.gray = builder.add_author("JimGray", "Jim Gray")
    out.reuter = builder.add_author("AndreasR", "Andreas Reuter")
    classic = planted_paper("The Transaction Concept Virtues And Limitations")
    out.transaction_classic = builder.paper_rids[classic]
    builder.add_writes("JimGray", classic)
    book = planted_paper("Transaction Processing Concepts And Techniques")
    out.transaction_book = builder.paper_rids[book]
    builder.add_writes("JimGray", book)
    builder.add_writes("AndreasR", book)
    for number in range(4):
        minor = planted_paper(f"Nested Transaction Scheduling Study {number}")
        out.minor_transaction_papers.append(builder.paper_rids[minor])
        author_id = f"TxMinor{number}"
        builder.add_author(author_id, f"Taylor Minor{number}")
        builder.add_writes(author_id, minor)

    # seltzer sunita — common co-author Stonebraker, very prolific.
    out.seltzer = builder.add_author("MargoS", "Margo Seltzer")
    out.stonebraker = builder.add_author("MichaelSt", "Michael Stonebraker")
    with_seltzer = planted_paper("Logging Versus Soft Updates In File Systems")
    out.stonebraker_seltzer_paper = builder.paper_rids[with_seltzer]
    builder.add_writes("MargoS", with_seltzer)
    builder.add_writes("MichaelSt", with_seltzer)
    with_sunita = planted_paper("Integrating Mining With Object Stores")
    out.stonebraker_sunita_paper = builder.paper_rids[with_sunita]
    builder.add_writes("SunitaS", with_sunita)
    builder.add_writes("MichaelSt", with_sunita)
    for number in range(55):
        paper_id = planted_paper(f"Postgres Storage Notes Series {number}")
        builder.add_writes("MichaelSt", paper_id)

    # sudarshan — for the metadata query "author sudarshan".
    out.sudarshan = builder.add_author("SudarshanS", "S. Sudarshan")
    sudarshan_paper = planted_paper("Pipelining In Multi Query Optimization")
    builder.add_writes("SudarshanS", sudarshan_paper)


def _attach_anecdote_mass(
    builder: _Builder,
    anecdotes: BibliographyAnecdotes,
    random_author_ids: List[str],
    random_paper_ids: List[str],
) -> None:
    """Blend planted entities into the random mass so they are not
    isolated islands: random co-authors on planted papers and citation
    links both ways keep path structure realistic."""
    rng = builder.rng
    if not random_author_ids or not random_paper_ids:
        return
    # Give Stonebraker's and Mohan's papers occasional random co-authors.
    for author_id, paper_ids in list(builder.papers_of_author.items()):
        if author_id in ("MichaelSt", "CMohan"):
            for paper_id in paper_ids:
                if rng.random() < 0.30:
                    builder.add_writes(rng.choice(random_author_ids), paper_id)
    # One random paper each keeps the anecdote authors connected to the
    # rest of the graph without flooding the Seltzer/Sunita
    # neighbourhood with short junk paths.
    for author_id in ("SoumenC", "MargoS", "SudarshanS"):
        builder.add_writes(author_id, rng.choice(random_paper_ids))


#: Queries with real matches in the default dataset, used by the
#: serving and sharding benchmarks (multi-term heavy: single-keyword
#: queries over a prestige-flat table produce large tie groups whose
#: "top k" is not well defined for any incremental engine).
DEMO_QUERIES = (
    "soumen sunita",
    "transaction",
    "mining",
    "query optimization",
    "parallel database",
    "recovery",
    "soumen",
    "index concurrency",
    "temporal",
    "sunita mining",
    "distributed",
    "join",
)
