"""Deterministic synthetic datasets reproducing the paper's testbeds.

The paper evaluates on (a) a DBLP extraction (~100K nodes / 300K edges)
and (b) the IIT Bombay thesis database; neither is distributable, so
these generators produce structurally equivalent data at configurable
scale, seeded with the exact entities behind every anecdote in Sec. 5.1
(C. Mohan, Jim Gray's transaction classics, Soumen/Sunita/Byron and
ChakrabartiSD98, Stonebraker/Seltzer, the CSE department, Aditya's
thesis advised by Sudarshan).

All generators take a ``seed`` and are fully deterministic for a given
parameter set — every test and benchmark depends on that.
"""

from repro.datasets import bibliography as _bibliography
from repro.datasets import synth as _synth
from repro.datasets import tpcd as _tpcd
from repro.datasets.bibliography import (
    BibliographyAnecdotes,
    generate_bibliography,
)
from repro.datasets.synth import (
    synth_bibliography,
    synth_bibliography_base,
    synth_bibliography_records,
)
from repro.datasets.thesis import ThesisAnecdotes, generate_thesis_db
from repro.datasets.tpcd import TpcdAnecdotes, generate_tpcd
from repro.datasets.university import UniversityAnecdotes, generate_university

#: Benchmark query sets per demo dataset (generator vocabulary).
DEMO_QUERY_SETS = {
    "bibliography": _bibliography.DEMO_QUERIES,
    "tpcd": _tpcd.DEMO_QUERIES,
    "synth_bibliography": _synth.DEMO_QUERIES,
}

__all__ = [
    "BibliographyAnecdotes",
    "DEMO_QUERY_SETS",
    "ThesisAnecdotes",
    "TpcdAnecdotes",
    "UniversityAnecdotes",
    "generate_bibliography",
    "generate_thesis_db",
    "generate_tpcd",
    "generate_university",
    "synth_bibliography",
    "synth_bibliography_base",
    "synth_bibliography_records",
]
