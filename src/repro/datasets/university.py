"""University database with a deliberate hub (paper Sec. 2.1 discussion).

"Ignoring directionality would cause problems because of 'hubs' ... in
a university database a department with a large number of faculty and
students would act as a hub.  As a result, many nodes would be within a
short distance of many other nodes, reducing the effectiveness of
proximity-based scoring. ... If there are more students in a
department, the back edges would be assigned a higher weight, resulting
in lower proximity (due to the department) for each pair of students."

Schema::

    department(dept_id PK, name)
    course(course_id PK, title, dept_id -> department)
    student(student_id PK, name, dept_id -> department)
    registration(student_id -> student, course_id -> course)

The generator plants two students in the same *large* department who
also share a *small* course.  With indegree-proportional back edges the
shared-course connection wins (the meaningful answer); with uniform back
edges the department hub is just as close and pollutes the ranking —
the ablation ``benchmarks/bench_ablation_backedges.py`` measures exactly
this.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.relational.database import Database, RID
from repro.relational.schema import Column, ForeignKey, TableSchema
from repro.relational.types import TEXT


@dataclass
class UniversityAnecdotes:
    """RIDs of the planted hub-vs-course pair."""

    alice: Optional[RID] = None
    bob: Optional[RID] = None
    big_department: Optional[RID] = None
    shared_course: Optional[RID] = None


def generate_university(
    students: int = 120,
    courses: int = 15,
    seed: int = 3,
) -> Tuple[Database, UniversityAnecdotes]:
    """Generate the hub-demonstration database; returns ``(db, anecdotes)``.

    All ``students`` belong to one big department (the hub).  Courses
    have 2–10 registered students each; the planted pair shares one
    2-student course.
    """
    rng = random.Random(seed)
    database = Database("university")

    database.create_table(
        TableSchema(
            "department",
            [Column("dept_id", TEXT, nullable=False),
             Column("name", TEXT, nullable=False)],
            primary_key=("dept_id",),
        )
    )
    database.create_table(
        TableSchema(
            "course",
            [Column("course_id", TEXT, nullable=False),
             Column("title", TEXT, nullable=False),
             Column("dept_id", TEXT, nullable=False)],
            primary_key=("course_id",),
            foreign_keys=[
                ForeignKey("course", ("dept_id",), "department", ("dept_id",)),
            ],
        )
    )
    database.create_table(
        TableSchema(
            "student",
            [Column("student_id", TEXT, nullable=False),
             Column("name", TEXT, nullable=False),
             Column("dept_id", TEXT, nullable=False)],
            primary_key=("student_id",),
            foreign_keys=[
                ForeignKey("student", ("dept_id",), "department", ("dept_id",)),
            ],
        )
    )
    database.create_table(
        TableSchema(
            "registration",
            [Column("student_id", TEXT, nullable=False),
             Column("course_id", TEXT, nullable=False)],
            primary_key=("student_id", "course_id"),
            foreign_keys=[
                ForeignKey(
                    "registration", ("student_id",), "student", ("student_id",)
                ),
                ForeignKey(
                    "registration", ("course_id",), "course", ("course_id",)
                ),
            ],
        )
    )

    anecdotes = UniversityAnecdotes()
    anecdotes.big_department = database.insert(
        "department", ["BIGDEPT", "School of Everything"]
    )

    anecdotes.alice = database.insert(
        "student", ["SALICE", "Alice Hubward", "BIGDEPT"]
    )
    anecdotes.bob = database.insert(
        "student", ["SBOB", "Bob Hubward", "BIGDEPT"]
    )
    anecdotes.shared_course = database.insert(
        "course", ["CSHARED", "Seminar On Rare Topics", "BIGDEPT"]
    )
    database.insert("registration", ["SALICE", "CSHARED"])
    database.insert("registration", ["SBOB", "CSHARED"])

    student_ids: List[str] = []
    for number in range(students):
        student_id = f"S{number:05d}"
        database.insert(
            "student",
            [student_id, f"Student Number{number}", "BIGDEPT"],
        )
        student_ids.append(student_id)

    for number in range(courses):
        course_id = f"C{number:04d}"
        database.insert(
            "course", [course_id, f"Lecture Series {number}", "BIGDEPT"]
        )
        for student_id in rng.sample(student_ids, rng.randint(2, 10)):
            database.insert("registration", [student_id, course_id])

    return database, anecdotes
