"""A miniature TPC-D-style database (paper Sec. 2.1 prestige example).

"In a TPCD database storing information about parts, suppliers,
customers and orders, the orders information contains references to
parts, suppliers and customers.  As a result, if a query matches two
parts (or suppliers, or customers) the one with more orders would get a
higher prestige."

Schema::

    part(part_id PK, name)
    supplier(supp_id PK, name)
    customer(cust_id PK, name)
    orders(order_id PK, cust_id -> customer)
    lineitem(order_id -> orders, part_id -> part, supp_id -> supplier)

The generator plants two parts whose names share a keyword ("steel
bolt" vs "steel beam") with very different order volumes so the prestige
effect is directly testable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.relational.database import Database, RID
from repro.relational.schema import Column, ForeignKey, TableSchema
from repro.relational.types import TEXT

_MATERIALS = ["copper", "brass", "nylon", "rubber", "titanium", "oak", "glass"]
_SHAPES = ["washer", "valve", "gear", "flange", "rod", "panel", "spring"]


@dataclass
class TpcdAnecdotes:
    """RIDs of the planted prestige pair."""

    popular_steel_part: Optional[RID] = None
    unpopular_steel_part: Optional[RID] = None


def generate_tpcd(
    parts: int = 40,
    suppliers: int = 12,
    customers: int = 25,
    orders: int = 120,
    seed: int = 11,
) -> Tuple[Database, TpcdAnecdotes]:
    """Generate the mini TPC-D database; returns ``(db, anecdotes)``."""
    rng = random.Random(seed)
    database = Database("tpcd")

    database.create_table(
        TableSchema(
            "part",
            [Column("part_id", TEXT, nullable=False),
             Column("name", TEXT, nullable=False)],
            primary_key=("part_id",),
        )
    )
    database.create_table(
        TableSchema(
            "supplier",
            [Column("supp_id", TEXT, nullable=False),
             Column("name", TEXT, nullable=False)],
            primary_key=("supp_id",),
        )
    )
    database.create_table(
        TableSchema(
            "customer",
            [Column("cust_id", TEXT, nullable=False),
             Column("name", TEXT, nullable=False)],
            primary_key=("cust_id",),
        )
    )
    database.create_table(
        TableSchema(
            "orders",
            [Column("order_id", TEXT, nullable=False),
             Column("cust_id", TEXT, nullable=False)],
            primary_key=("order_id",),
            foreign_keys=[
                ForeignKey("orders", ("cust_id",), "customer", ("cust_id",)),
            ],
        )
    )
    database.create_table(
        TableSchema(
            "lineitem",
            [Column("line_id", TEXT, nullable=False),
             Column("order_id", TEXT, nullable=False),
             Column("part_id", TEXT, nullable=False),
             Column("supp_id", TEXT, nullable=False)],
            primary_key=("line_id",),
            foreign_keys=[
                ForeignKey("lineitem", ("order_id",), "orders", ("order_id",)),
                ForeignKey("lineitem", ("part_id",), "part", ("part_id",)),
                ForeignKey("lineitem", ("supp_id",), "supplier", ("supp_id",)),
            ],
        )
    )

    anecdotes = TpcdAnecdotes()
    anecdotes.popular_steel_part = database.insert("part", ["PSTEEL1", "steel bolt"])
    anecdotes.unpopular_steel_part = database.insert("part", ["PSTEEL2", "steel beam"])
    part_ids = ["PSTEEL1", "PSTEEL2"]
    for number in range(parts):
        part_id = f"P{number:04d}"
        name = f"{rng.choice(_MATERIALS)} {rng.choice(_SHAPES)}"
        database.insert("part", [part_id, name])
        part_ids.append(part_id)

    supplier_ids = []
    for number in range(suppliers):
        supp_id = f"S{number:03d}"
        database.insert("supplier", [supp_id, f"Supplier House {number}"])
        supplier_ids.append(supp_id)

    customer_ids = []
    for number in range(customers):
        cust_id = f"C{number:03d}"
        database.insert("customer", [cust_id, f"Customer Group {number}"])
        customer_ids.append(cust_id)

    line_count = 0
    for number in range(orders):
        order_id = f"O{number:05d}"
        database.insert("orders", [order_id, rng.choice(customer_ids)])
        for _ in range(rng.randint(1, 4)):
            # The popular steel part shows up in ~25% of lines; the
            # unpopular one almost never.
            roll = rng.random()
            if roll < 0.25:
                part_id = "PSTEEL1"
            elif roll < 0.27:
                part_id = "PSTEEL2"
            else:
                part_id = rng.choice(part_ids[2:])
            database.insert(
                "lineitem",
                [f"L{line_count:06d}", order_id, part_id,
                 rng.choice(supplier_ids)],
            )
            line_count += 1

    return database, anecdotes


#: Queries with real matches in the default dataset (generator
#: vocabulary), used by the sharding benchmark.
DEMO_QUERIES = (
    "steel",
    "steel bolt",
    "copper washer",
    "titanium",
    "brass valve",
    "rubber spring",
    "oak panel",
    "glass flange",
)
